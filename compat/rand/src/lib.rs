//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no network access and no
//! cached registry, so the real `rand` crate cannot be fetched. This crate
//! implements the (small) slice of its API the workspace actually uses —
//! [`SeedableRng`], [`RngCore`], the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generators — on top of xoshiro256++, a fast,
//! high-quality, fully deterministic PRNG.
//!
//! The streams differ from the real `StdRng` (ChaCha12); every consumer in
//! this workspace only relies on *determinism per seed*, never on the
//! exact stream, so this is behaviour-preserving for the test suite and
//! the experiment protocol.

#![forbid(unsafe_code)]

/// A low-level generator of raw random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it through
    /// SplitMix64 exactly once per seed word (the real crate does the
    /// same expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public-domain constants from Vigna).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types drawable uniformly from a half-open or inclusive range.
///
/// Mirrors the real crate's `SampleUniform` so that integer-literal
/// ranges unify with the type demanded by the call site (e.g. a slice
/// index forces `usize`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Bounds are pre-validated.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                // Lemire multiply-shift: uniform enough for spans far below
                // 2^64, deterministic, and branch-free.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform draw from `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the real crate's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators of the real crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ core shared by both named generators.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of the generator.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Xoshiro256 { s }
        }

        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Deterministic stand-in for the real `StdRng`.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// Deterministic stand-in for the real `SmallRng`.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(0..7usize);
            assert!(v < 7);
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&f));
            let u = rng.gen_range(0..=0usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "draws never reached both tails");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
