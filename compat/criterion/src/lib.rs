//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This crate keeps the workspace's `harness = false` bench
//! targets compiling and running: it measures each benchmark's median
//! wall-clock time over a configurable number of samples and prints a
//! plain-text line per benchmark. There are no plots, no statistics
//! beyond the median, and no baseline comparisons.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque benchmark-suite context handed to each `criterion_group!`
/// target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sampling
/// configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload; accepted for API parity and
    /// echoed in the report line.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Times `f` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let median = run_samples(self.sample_size, |b| f(b, input));
        report(&self.name, &id.0, median);
        self
    }

    /// Times `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, |b| f(b));
        report(&self.name, &id.0, median);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn report(group: &str, id: &str, median: Duration) {
    println!("{group}/{id}: median {median:?} per iteration batch");
}

/// Timing context passed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one batch of calls to `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier: a function name plus a parameter label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id rendered as the bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Workload descriptor accepted by [`BenchmarkGroup::throughput`].
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// An identity function the optimiser cannot see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
