//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This crate re-implements the slice of the API this
//! workspace's property tests use: the [`proptest!`] macro, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], `prop_oneof!`, `Just`, the `prop_assert*` family,
//! and `prop_assume!`.
//!
//! Inputs are sampled deterministically (seeded per test by the test's
//! module path and name), so failures reproduce across runs. Shrinking is
//! not implemented: a failing case reports the full generated input
//! instead of a minimised one.

#![forbid(unsafe_code)]

/// Test-runner configuration and case-level error plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is re-drawn.
        Reject(String),
    }

    /// Result type the generated case closures return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic source all strategies draw from.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded from a stable string (the test's full name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    trait StrategyObj<V> {
        fn generate_obj(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn StrategyObj<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_obj(rng)
        }
    }

    /// Uniform choice among alternatives (built by `prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let arm = rng.gen_range(0..self.0.len());
            self.0[arm].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public
/// API surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "gave up after {attempts} attempts ({accepted} accepted): \
                         prop_assume! rejects too much input",
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let __case_desc = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&::std::format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let __outcome: $crate::test_runner::TestCaseResult =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property failed after {accepted} passing case(s): {msg}\n\
                                 input: {__case_desc}",
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Rejects the current input; the runner draws a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 0u32..10, v in crate::collection::vec(0i64..=5, 1..8)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| (0..=5).contains(&e)));
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
            }),
            flag in any::<bool>(),
            tagged in prop_oneof![Just(0u8), 1u8..3],
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&e| e < n));
            prop_assert!(tagged < 3);
            prop_assume!(flag || !flag);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..6);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
