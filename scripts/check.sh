#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
#   scripts/check.sh                # tier-1 gates only
#   scripts/check.sh --audit        # also run the debug-audit (oracle) gates
#   scripts/check.sh --bench-smoke  # also run the quick benchmark gate:
#                                   # oracle recounts every reported cut and
#                                   # the run fails on a >2x secs_per_run
#                                   # regression (or a changed best_cut at
#                                   # matching run counts) vs the committed
#                                   # BENCH_prop.json
#   scripts/check.sh --serve        # also run the daemon smoke gate: build
#                                   # the prop-serve loopback benchmark,
#                                   # drive it under a 30s budget, and fail
#                                   # on any contained worker panic in the
#                                   # daemon's output
#   scripts/check.sh --ml           # also run the multilevel smoke gate:
#                                   # one ml-only quick benchmark pass whose
#                                   # cuts the oracle recounts, plus the
#                                   # ml CLI path at intra worker counts 1
#                                   # and 2, which must print identical
#                                   # results
#   scripts/check.sh --par          # also run the intra-run determinism
#                                   # gate: ml at --threads 1 vs --threads 2
#                                   # must agree on the result line AND the
#                                   # full node assignment (diffed file)
#   scripts/check.sh --flow         # also run the flow refinement gate:
#                                   # the Dinic-vs-reference proptests, the
#                                   # flow crate's own tests, and a CLI
#                                   # bench asserting cut(ml --ml-flow) <=
#                                   # cut(ml) on every suite circuit
#   scripts/check.sh --kway         # also run the recursive k-way gate:
#                                   # the k-way oracle + e2e test file, a
#                                   # CLI k=4 sweep over the suite whose
#                                   # parts/weights are sanity-checked and
#                                   # whose budgeted rerun must respect the
#                                   # caps, and a daemon round-trip whose
#                                   # k=4 submit twice in a row must be
#                                   # bit-identical (cut + connectivity +
#                                   # part_weights + assignment_hash)
#   scripts/check.sh --cluster      # also run the cluster gate: two worker
#                                   # daemons plus a coordinator, a golem3
#                                   # seed-sweep batch with one worker
#                                   # SIGKILLed mid-batch, and the final
#                                   # (cut, run_cuts, assignment_hash) must
#                                   # be bit-identical to the same sweep run
#                                   # sequentially on one daemon
#   scripts/check.sh --io           # also run the .hgb snapshot gate:
#                                   # round-trip + adversarial loader
#                                   # fuzzing tests, convert/stats/partition
#                                   # on .hgb through the CLI, the >=10x
#                                   # loader benchmark (golem tier), one
#                                   # million-node ml run through the CLI
#                                   # and through the daemon's circuit
#                                   # store, and submit-by-circuit-id vs
#                                   # inline bit-identity
set -euo pipefail
cd "$(dirname "$0")/.."

audit=0
bench_smoke=0
serve=0
ml=0
par=0
flow=0
io=0
cluster=0
kway=0
for arg in "$@"; do
  case "$arg" in
    --audit) audit=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --serve) serve=1 ;;
    --ml) ml=1 ;;
    --par) par=1 ;;
    --flow) flow=1 ;;
    --io) io=1 ;;
    --cluster) cluster=1 ;;
    --kway) kway=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

if [[ "$audit" -eq 1 ]]; then
  # Audited pass: every engine reports into the thread-local auditor slot
  # and the oracle auditors recheck each move against from-scratch
  # recomputation (see DESIGN.md §9).
  cargo test -q --features debug-audit
  cargo test -q -p prop-verify --features debug-audit
  cargo clippy -p prop-verify --features debug-audit -- -D warnings
  cargo clippy --workspace --features debug-audit -- -D warnings
fi

if [[ "$bench_smoke" -eq 1 ]]; then
  # Benchmark smoke gate: --quick keeps it to a few seconds; --compare
  # makes bench_snapshot a read-only regression check instead of a
  # snapshot writer. Quick mode runs fewer best-of iterations than the
  # committed rows, so only the >2x timing regression arm of the gate
  # applies; full-run best_cut equality is re-pinned whenever the
  # snapshot itself is regenerated.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --compare BENCH_prop.json
fi

if [[ "$serve" -eq 1 ]]; then
  # Daemon smoke gate: an in-process loopback daemon serves the quick
  # benchmark (overhead + throughput, bit-identity asserted inside) under
  # a 30-second budget. bench_serve already exits non-zero on any
  # divergence; on top of that, any contained worker panic in the output
  # fails the gate even though the daemon survived it.
  cargo build --release -q -p prop-experiments --bin bench_serve
  serve_log="$(mktemp)"
  trap 'rm -f "$serve_log"' EXIT
  timeout 30s ./target/release/bench_serve --quick --jobs 8 2>&1 | tee "$serve_log"
  if grep -qi "panicked" "$serve_log"; then
    echo "check.sh: worker panic detected in the serve smoke log" >&2
    exit 1
  fi
fi

if [[ "$ml" -eq 1 ]]; then
  # Multilevel smoke gate. First an ml-only quick benchmark pass: the
  # oracle recounts every reported cut, and --compare trips on a >2x
  # secs_per_run regression against the committed ML rows.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --method ML --compare BENCH_prop.json
  # Then the CLI path. For ml, --threads N engages the deterministic
  # intra-parallel V-cycle with N workers (it is a different algorithm
  # than the sequential engine, so --threads 1 — not the flag's absence —
  # is the comparison baseline): worker counts 1 and 2 must print the
  # identical result line.
  ml_dir="$(mktemp -d)"
  trap 'rm -rf "$ml_dir"' EXIT
  ./target/release/prop generate --circuit struct --out "$ml_dir/struct.hgr" >/dev/null
  one_line="$(./target/release/prop partition "$ml_dir/struct.hgr" --method ml --runs 4 --threads 1)"
  two_line="$(./target/release/prop partition "$ml_dir/struct.hgr" --method ml --runs 4 --threads 2)"
  echo "$one_line"
  if [[ "$one_line" != "$two_line" ]]; then
    echo "check.sh: ml CLI diverged across intra worker counts" >&2
    echo "  threads=1: $one_line" >&2
    echo "  threads=2: $two_line" >&2
    exit 1
  fi
fi

if [[ "$par" -eq 1 ]]; then
  # Intra-run determinism gate: the ml engine at 1 vs 2 intra workers on
  # a generated circuit must agree on the printed cut line and on every
  # node's side (the --assign files are diffed byte-for-byte, a stronger
  # check than the cut alone).
  par_dir="$(mktemp -d)"
  trap 'rm -rf "$par_dir"' EXIT
  ./target/release/prop generate --circuit struct --out "$par_dir/struct.hgr" >/dev/null
  t1_out="$(./target/release/prop partition "$par_dir/struct.hgr" --method ml --runs 5 \
    --threads 1 --assign "$par_dir/assign_t1.txt")"
  t2_out="$(./target/release/prop partition "$par_dir/struct.hgr" --method ml --runs 5 \
    --threads 2 --assign "$par_dir/assign_t2.txt")"
  t1_line="${t1_out%%$'\n'*}"
  t2_line="${t2_out%%$'\n'*}"
  echo "$t1_line"
  if [[ "$t1_line" != "$t2_line" ]]; then
    echo "check.sh: intra-parallel ml cut diverged across worker counts" >&2
    echo "  threads=1: $t1_line" >&2
    echo "  threads=2: $t2_line" >&2
    exit 1
  fi
  if ! diff -q "$par_dir/assign_t1.txt" "$par_dir/assign_t2.txt" >/dev/null; then
    echo "check.sh: intra-parallel ml assignment diverged across worker counts" >&2
    diff "$par_dir/assign_t1.txt" "$par_dir/assign_t2.txt" | head -n 5 >&2
    exit 1
  fi
  echo "check.sh: intra-parallel determinism gate passed (cut + assignment identical)"
fi

if [[ "$flow" -eq 1 ]]; then
  # Flow refinement gate. The kernel first: the flow crate's unit and
  # adversarial tests, then the differential proptests (Dinic vs the
  # naive Edmonds-Karp reference, plus the independent certificate
  # checker) in prop-verify.
  cargo test -q -p prop-flow
  cargo test -q -p prop-verify --test proptest_flow
  # Then the quality contract end-to-end through the CLI: on every suite
  # circuit, the flow-enabled ml engine must cut no more than the plain
  # ml engine at the same seed and run count.
  flow_dir="$(mktemp -d)"
  trap 'rm -rf "$flow_dir"' EXIT
  for circuit in balu struct p2; do
    ./target/release/prop generate --circuit "$circuit" --out "$flow_dir/$circuit.hgr" >/dev/null
    base_line="$(./target/release/prop partition "$flow_dir/$circuit.hgr" --method ml --runs 4)"
    flow_line="$(./target/release/prop partition "$flow_dir/$circuit.hgr" --method ml --runs 4 --ml-flow)"
    base_cut="$(sed -n 's/.*cut=\([0-9.]*\).*/\1/p' <<<"$base_line")"
    flow_cut="$(sed -n 's/.*cut=\([0-9.]*\).*/\1/p' <<<"$flow_line")"
    if [[ -z "$base_cut" || -z "$flow_cut" ]]; then
      echo "check.sh: could not parse a cut from the ml result lines" >&2
      echo "  ml:        $base_line" >&2
      echo "  ml+flow:   $flow_line" >&2
      exit 1
    fi
    if ! awk -v f="$flow_cut" -v b="$base_cut" 'BEGIN { exit !(f <= b) }'; then
      echo "check.sh: flow refinement worsened $circuit: cut $flow_cut > $base_cut" >&2
      exit 1
    fi
    echo "check.sh: $circuit ml=$base_cut ml+flow=$flow_cut"
  done
  echo "check.sh: flow gate passed (kernel proptests + cut(ml+flow) <= cut(ml) on the suite)"
fi

if [[ "$io" -eq 1 ]]; then
  # .hgb snapshot gate. The loader's test surface first: canonical
  # round-trips (including mmap-vs-buffered identity and the cut recount
  # oracle) and the adversarial fuzzer (truncations, corrupt headers,
  # section-table attacks, payload bit flips — typed errors, no panics).
  cargo test -q --test formats_roundtrip
  cargo test -q -p prop-netlist --test hgb_adversarial

  io_dir="$(mktemp -d)"
  trap 'rm -rf "$io_dir"' EXIT
  # The CLI surface: convert text -> snapshot, O(header) stats, and a
  # partition run that must print the identical result line from either
  # representation of the same circuit.
  for circuit in balu struct p2; do
    ./target/release/prop generate --circuit "$circuit" --out "$io_dir/$circuit.hgr" >/dev/null
    ./target/release/prop convert "$io_dir/$circuit.hgr" "$io_dir/$circuit.hgb" >/dev/null
    ./target/release/prop stats "$io_dir/$circuit.hgb" >/dev/null
    text_line="$(./target/release/prop partition "$io_dir/$circuit.hgr" --method prop --runs 3)"
    hgb_line="$(./target/release/prop partition "$io_dir/$circuit.hgb" --method prop --runs 3)"
    if [[ "$text_line" != "$hgb_line" ]]; then
      echo "check.sh: $circuit partitions differently from .hgr vs .hgb" >&2
      echo "  hgr: $text_line" >&2
      echo "  hgb: $hgb_line" >&2
      exit 1
    fi
    echo "check.sh: $circuit .hgr == .hgb ($hgb_line)"
  done

  # The performance contract: on the golem tier the mmap load (open +
  # structural parse + deep validation, zero-copy view ready) must beat
  # text parse+build by >=10x; the binary enforces the floor and exits
  # non-zero on a violation. Run from the scratch dir so the committed
  # BENCH_prop.json is not rewritten by the gate.
  cargo build --release -q -p prop-experiments --bin bench_snapshot
  bench="$PWD/target/release/bench_snapshot"
  (cd "$io_dir" && "$bench" --io --large)

  # Million-node end-to-end, CLI first: generate golem4 straight to a
  # snapshot (no 50 MB text intermediate) and run the multilevel engine.
  ./target/release/prop generate --circuit golem4 --out "$io_dir/golem4.hgb" >/dev/null
  golem_cli="$(./target/release/prop partition "$io_dir/golem4.hgb" --method ml --runs 1)"
  echo "check.sh: golem4 CLI $golem_cli"

  # ... then through the daemon's circuit store: a --by-path upload (the
  # 49 MB snapshot never crosses the wire), an O(header) listing, and the
  # same million-node ml job resolved by circuit id.
  io_addr="127.0.0.1:7177"
  ./target/release/prop serve --addr "$io_addr" --workers 1 --queue-cap 8 \
    --store-dir "$io_dir/store" > "$io_dir/serve.log" 2>&1 &
  io_serve_pid=$!
  # From here the trap must also reap the daemon, or an early exit
  # orphans it (and its inherited stdout keeps the caller's pipe open).
  trap 'kill "$io_serve_pid" 2>/dev/null || true; rm -rf "$io_dir"' EXIT
  for _ in $(seq 1 50); do
    ./target/release/prop ctl ping --addr "$io_addr" >/dev/null 2>&1 && break
    sleep 0.2
  done
  ./target/release/prop upload "$io_dir/golem4.hgb" --id golem4 --by-path --addr "$io_addr"
  ./target/release/prop ctl circuits --addr "$io_addr"
  golem_daemon="$(./target/release/prop submit --circuit-id golem4 --engine ml --runs 1 \
    --addr "$io_addr")"
  echo "check.sh: golem4 daemon $golem_daemon"
  if [[ "$golem_daemon" != *'"status":"completed"'* ]]; then
    echo "check.sh: golem4 job did not complete through the daemon" >&2
    exit 1
  fi

  # Bit-identity: a job submitted by circuit id must match the same job
  # submitted inline — cut, full per-run cut trajectory, and the
  # assignment hash (a circuit small enough for the inline request cap).
  ./target/release/prop upload "$io_dir/struct.hgb" --id struct --addr "$io_addr"
  inline="$(./target/release/prop submit "$io_dir/struct.hgr" --engine prop --runs 4 \
    --addr "$io_addr")"
  stored="$(./target/release/prop submit --circuit-id struct --engine prop --runs 4 \
    --addr "$io_addr")"
  extract() { sed -n "s/.*\"$2\":\($3\).*/\1/p" <<<"$1"; }
  for field_pat in 'cut [0-9.eE+-]*' 'run_cuts \[[^]]*\]' 'assignment_hash "[0-9a-f]*"'; do
    field="${field_pat%% *}"
    pat="${field_pat#* }"
    inline_v="$(extract "$inline" "$field" "$pat")"
    stored_v="$(extract "$stored" "$field" "$pat")"
    if [[ -z "$inline_v" || "$inline_v" != "$stored_v" ]]; then
      echo "check.sh: submit-by-id diverged from inline submit on $field" >&2
      echo "  inline: $inline" >&2
      echo "  stored: $stored" >&2
      exit 1
    fi
  done
  echo "check.sh: submit --circuit-id is bit-identical to inline (cut + run_cuts + assignment_hash)"
  ./target/release/prop ctl evict --circuit struct --addr "$io_addr" >/dev/null
  ./target/release/prop ctl shutdown --addr "$io_addr" >/dev/null
  wait "$io_serve_pid"
  echo "check.sh: io gate passed (round-trip + fuzz + 10x loader + million-node CLI/daemon)"
fi

if [[ "$kway" -eq 1 ]]; then
  # Recursive k-way gate. The oracle-first test surface: the verify
  # crate's k-way oracles, then the full e2e file (oracle exactness for
  # k in {2,3,4,8}, budget respect, thread-count bit-identity,
  # cancellation totality, typed infeasibility).
  cargo test -q -p prop-verify kway
  cargo test -q --test kway

  kway_dir="$(mktemp -d)"
  trap 'rm -rf "$kway_dir"' EXIT
  # The CLI surface: a uniform k=4 sweep over the suite. The result line
  # must report k=4, four part sizes, and the budgeted rerun (every cap
  # at 30% of the node count, feasible but tight) must keep every part
  # weight inside its budget.
  for circuit in balu struct p2; do
    ./target/release/prop generate --circuit "$circuit" --out "$kway_dir/$circuit.hgr" >/dev/null
    line="$(./target/release/prop partition "$kway_dir/$circuit.hgr" --method ml --k 4 --runs 2)"
    echo "check.sh: $circuit $line"
    if [[ "$line" != *"k=4"* || "$line" != *"connectivity="* ]]; then
      echo "check.sh: malformed k-way result line for $circuit: $line" >&2
      exit 1
    fi
    parts="$(sed -n 's|.*parts=\([0-9/]*\).*|\1|p' <<<"$line")"
    if [[ "$(tr '/' '\n' <<<"$parts" | wc -l)" -ne 4 ]]; then
      echo "check.sh: expected 4 parts for $circuit, got parts=$parts" >&2
      exit 1
    fi
    nodes="$(./target/release/prop stats "$kway_dir/$circuit.hgr" | sed -n 's/^n=\([0-9]*\).*/\1/p')"
    cap="$(awk -v n="$nodes" 'BEGIN { printf "%.1f", n * 0.3 }')"
    budget_line="$(./target/release/prop partition "$kway_dir/$circuit.hgr" --method ml --k 4       --runs 2 --budgets "$cap,$cap,$cap,$cap")"
    weights="$(sed -n 's/.*weights=\([0-9.,]*\).*/\1/p' <<<"$budget_line")"
    if ! awk -v w="$weights" -v c="$cap" 'BEGIN {
        n = split(w, a, ","); if (n != 4) exit 1;
        for (i = 1; i <= n; i++) if (a[i] > c + 1e-9) exit 1; }'; then
      echo "check.sh: budgeted k-way violated its caps on $circuit" >&2
      echo "  $budget_line (cap $cap)" >&2
      exit 1
    fi
    echo "check.sh: $circuit budgeted weights=$weights inside cap=$cap"
  done

  # The daemon surface: the same k=4 job submitted twice over the wire
  # must be bit-identical in every k-way result field.
  kway_addr="127.0.0.1:7377"
  ./target/release/prop serve --addr "$kway_addr" --workers 2 --queue-cap 8     > "$kway_dir/serve.log" 2>&1 &
  kway_serve_pid=$!
  trap 'kill "$kway_serve_pid" 2>/dev/null || true; rm -rf "$kway_dir"' EXIT
  for _ in $(seq 1 50); do
    ./target/release/prop ctl ping --addr "$kway_addr" >/dev/null 2>&1 && break
    sleep 0.2
  done
  first="$(./target/release/prop submit "$kway_dir/struct.hgr" --engine ml --runs 2 --k 4     --addr "$kway_addr")"
  second="$(./target/release/prop submit "$kway_dir/struct.hgr" --engine ml --runs 2 --k 4     --addr "$kway_addr")"
  extract() { sed -n "s/.*\"$2\":\($3\).*/\1/p" <<<"$1"; }
  for field_pat in 'cut [0-9.eE+-]*' 'connectivity [0-9.eE+-]*' 'k [0-9]*'                    'part_weights \[[^]]*\]' 'assignment_hash "[0-9a-f]*"'; do
    field="${field_pat%% *}"
    pat="${field_pat#* }"
    first_v="$(extract "$first" "$field" "$pat")"
    second_v="$(extract "$second" "$field" "$pat")"
    if [[ -z "$first_v" || "$first_v" != "$second_v" ]]; then
      echo "check.sh: repeated k-way submits diverged on $field" >&2
      echo "  first:  $first" >&2
      echo "  second: $second" >&2
      exit 1
    fi
  done
  echo "check.sh: daemon k-way submit is deterministic (cut + connectivity + part_weights + hash)"
  ./target/release/prop ctl shutdown --addr "$kway_addr" >/dev/null
  wait "$kway_serve_pid" 2>/dev/null || true
  echo "check.sh: kway gate passed (oracles + e2e + CLI budgets + daemon round-trip)"
fi

if [[ "$cluster" -eq 1 ]]; then
  # Cluster gate: two worker daemons plus a coordinator sharding a golem3
  # seed sweep across them, with one worker SIGKILLed mid-batch. The
  # coordinator must reschedule the lost worker's sub-jobs onto the
  # survivor and still produce a result bit-identical to the same sweep
  # run sequentially as one daemon job — cut, full per-run cut
  # trajectory, and assignment hash.
  cluster_dir="$(mktemp -d)"
  w1_addr="127.0.0.1:7277"
  w2_addr="127.0.0.1:7278"
  co_addr="127.0.0.1:7279"
  ./target/release/prop serve --addr "$w1_addr" --workers 1 --queue-cap 16 \
    --store-dir "$cluster_dir/w1" > "$cluster_dir/w1.log" 2>&1 &
  w1_pid=$!
  ./target/release/prop serve --addr "$w2_addr" --workers 1 --queue-cap 16 \
    --store-dir "$cluster_dir/w2" > "$cluster_dir/w2.log" 2>&1 &
  w2_pid=$!
  ./target/release/prop serve --addr "$co_addr" --workers 1 --queue-cap 16 \
    --store-dir "$cluster_dir/co" --coordinator "$w1_addr,$w2_addr" \
    --heartbeat-ms 50 --retries 10 > "$cluster_dir/co.log" 2>&1 &
  co_pid=$!
  # The trap must reap every daemon we spawned, or an early exit orphans
  # them and their ports stay bound for the next run.
  trap 'kill "$w1_pid" "$w2_pid" "$co_pid" 2>/dev/null || true; rm -rf "$cluster_dir"' EXIT
  for addr in "$w1_addr" "$w2_addr" "$co_addr"; do
    for _ in $(seq 1 50); do
      ./target/release/prop ctl ping --addr "$addr" >/dev/null 2>&1 && break
      sleep 0.2
    done
  done

  ./target/release/prop generate --circuit golem3 --out "$cluster_dir/golem3.hgb" >/dev/null
  ./target/release/prop upload "$cluster_dir/golem3.hgb" --id golem3 --by-path --addr "$co_addr"

  # An 8-run fm seed sweep in single-run chunks: enough sub-jobs that
  # both workers hold work when worker 2 dies ~1.5s in.
  ./target/release/prop batch --circuit-id golem3 --engines fm --runs 8 --seed 7 \
    --chunk 1 --addr "$co_addr" > "$cluster_dir/batch.log" 2>&1 &
  batch_pid=$!
  sleep 1.5
  kill -9 "$w2_pid"
  echo "check.sh: SIGKILLed worker 2 mid-batch"
  if ! wait "$batch_pid"; then
    echo "check.sh: cluster batch failed after the worker kill" >&2
    cat "$cluster_dir/batch.log" >&2
    exit 1
  fi
  done_line="$(tail -n 1 "$cluster_dir/batch.log")"
  if [[ "$done_line" != *'"status":"completed"'* ]]; then
    echo "check.sh: cluster batch did not complete: $done_line" >&2
    exit 1
  fi
  echo "check.sh: batch done $(sed -n 's/.*\("rescheduled":[0-9]*\).*/\1/p' <<<"$done_line")"

  # The sequential reference: the identical sweep as one plain daemon job
  # on the coordinator (it executes submits locally like any daemon).
  seq_line="$(./target/release/prop submit --circuit-id golem3 --engine fm --runs 8 \
    --seed 7 --addr "$co_addr")"
  extract() { sed -n "s/.*\"$2\":\($3\).*/\1/p" <<<"$1"; }
  for field_pat in 'cut [0-9.eE+-]*' 'run_cuts \[[^]]*\]' 'assignment_hash "[0-9a-f]*"'; do
    field="${field_pat%% *}"
    pat="${field_pat#* }"
    batch_v="$(extract "$done_line" "$field" "$pat")"
    seq_v="$(extract "$seq_line" "$field" "$pat")"
    if [[ -z "$batch_v" || "$batch_v" != "$seq_v" ]]; then
      echo "check.sh: cluster batch diverged from the sequential sweep on $field" >&2
      echo "  batch:      $done_line" >&2
      echo "  sequential: $seq_line" >&2
      exit 1
    fi
  done
  echo "check.sh: batch result is bit-identical to the sequential sweep (cut + run_cuts + assignment_hash)"
  ./target/release/prop ctl shutdown --addr "$co_addr" >/dev/null
  ./target/release/prop ctl shutdown --addr "$w1_addr" >/dev/null
  wait "$co_pid" "$w1_pid" 2>/dev/null || true
  echo "check.sh: cluster gate passed (2 workers, mid-batch SIGKILL, deterministic merge)"
fi

gates="build+test+clippy"
[[ "$audit" -eq 1 ]] && gates="$gates audit"
[[ "$bench_smoke" -eq 1 ]] && gates="$gates bench-smoke"
[[ "$serve" -eq 1 ]] && gates="$gates serve"
[[ "$ml" -eq 1 ]] && gates="$gates ml"
[[ "$par" -eq 1 ]] && gates="$gates par"
[[ "$flow" -eq 1 ]] && gates="$gates flow"
[[ "$io" -eq 1 ]] && gates="$gates io"
[[ "$cluster" -eq 1 ]] && gates="$gates cluster"
[[ "$kway" -eq 1 ]] && gates="$gates kway"
echo "check.sh: all gates passed ($gates)"
