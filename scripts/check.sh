#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
#   scripts/check.sh                # tier-1 gates only
#   scripts/check.sh --audit        # also run the debug-audit (oracle) gates
#   scripts/check.sh --bench-smoke  # also run the quick benchmark gate:
#                                   # oracle recounts every reported cut and
#                                   # the run fails on a >2x secs_per_run
#                                   # regression (or a changed best_cut at
#                                   # matching run counts) vs the committed
#                                   # BENCH_prop.json
#   scripts/check.sh --serve        # also run the daemon smoke gate: build
#                                   # the prop-serve loopback benchmark,
#                                   # drive it under a 30s budget, and fail
#                                   # on any contained worker panic in the
#                                   # daemon's output
#   scripts/check.sh --ml           # also run the multilevel smoke gate:
#                                   # one ml-only quick benchmark pass whose
#                                   # cuts the oracle recounts, plus the
#                                   # ml CLI path at intra worker counts 1
#                                   # and 2, which must print identical
#                                   # results
#   scripts/check.sh --par          # also run the intra-run determinism
#                                   # gate: ml at --threads 1 vs --threads 2
#                                   # must agree on the result line AND the
#                                   # full node assignment (diffed file)
#   scripts/check.sh --flow         # also run the flow refinement gate:
#                                   # the Dinic-vs-reference proptests, the
#                                   # flow crate's own tests, and a CLI
#                                   # bench asserting cut(ml --ml-flow) <=
#                                   # cut(ml) on every suite circuit
set -euo pipefail
cd "$(dirname "$0")/.."

audit=0
bench_smoke=0
serve=0
ml=0
par=0
flow=0
for arg in "$@"; do
  case "$arg" in
    --audit) audit=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --serve) serve=1 ;;
    --ml) ml=1 ;;
    --par) par=1 ;;
    --flow) flow=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

if [[ "$audit" -eq 1 ]]; then
  # Audited pass: every engine reports into the thread-local auditor slot
  # and the oracle auditors recheck each move against from-scratch
  # recomputation (see DESIGN.md §9).
  cargo test -q --features debug-audit
  cargo test -q -p prop-verify --features debug-audit
  cargo clippy -p prop-verify --features debug-audit -- -D warnings
  cargo clippy --workspace --features debug-audit -- -D warnings
fi

if [[ "$bench_smoke" -eq 1 ]]; then
  # Benchmark smoke gate: --quick keeps it to a few seconds; --compare
  # makes bench_snapshot a read-only regression check instead of a
  # snapshot writer. Quick mode runs fewer best-of iterations than the
  # committed rows, so only the >2x timing regression arm of the gate
  # applies; full-run best_cut equality is re-pinned whenever the
  # snapshot itself is regenerated.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --compare BENCH_prop.json
fi

if [[ "$serve" -eq 1 ]]; then
  # Daemon smoke gate: an in-process loopback daemon serves the quick
  # benchmark (overhead + throughput, bit-identity asserted inside) under
  # a 30-second budget. bench_serve already exits non-zero on any
  # divergence; on top of that, any contained worker panic in the output
  # fails the gate even though the daemon survived it.
  cargo build --release -q -p prop-experiments --bin bench_serve
  serve_log="$(mktemp)"
  trap 'rm -f "$serve_log"' EXIT
  timeout 30s ./target/release/bench_serve --quick --jobs 8 2>&1 | tee "$serve_log"
  if grep -qi "panicked" "$serve_log"; then
    echo "check.sh: worker panic detected in the serve smoke log" >&2
    exit 1
  fi
fi

if [[ "$ml" -eq 1 ]]; then
  # Multilevel smoke gate. First an ml-only quick benchmark pass: the
  # oracle recounts every reported cut, and --compare trips on a >2x
  # secs_per_run regression against the committed ML rows.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --method ML --compare BENCH_prop.json
  # Then the CLI path. For ml, --threads N engages the deterministic
  # intra-parallel V-cycle with N workers (it is a different algorithm
  # than the sequential engine, so --threads 1 — not the flag's absence —
  # is the comparison baseline): worker counts 1 and 2 must print the
  # identical result line.
  ml_dir="$(mktemp -d)"
  trap 'rm -rf "$ml_dir"' EXIT
  ./target/release/prop generate --circuit struct --out "$ml_dir/struct.hgr" >/dev/null
  one_line="$(./target/release/prop partition "$ml_dir/struct.hgr" --method ml --runs 4 --threads 1)"
  two_line="$(./target/release/prop partition "$ml_dir/struct.hgr" --method ml --runs 4 --threads 2)"
  echo "$one_line"
  if [[ "$one_line" != "$two_line" ]]; then
    echo "check.sh: ml CLI diverged across intra worker counts" >&2
    echo "  threads=1: $one_line" >&2
    echo "  threads=2: $two_line" >&2
    exit 1
  fi
fi

if [[ "$par" -eq 1 ]]; then
  # Intra-run determinism gate: the ml engine at 1 vs 2 intra workers on
  # a generated circuit must agree on the printed cut line and on every
  # node's side (the --assign files are diffed byte-for-byte, a stronger
  # check than the cut alone).
  par_dir="$(mktemp -d)"
  trap 'rm -rf "$par_dir"' EXIT
  ./target/release/prop generate --circuit struct --out "$par_dir/struct.hgr" >/dev/null
  t1_out="$(./target/release/prop partition "$par_dir/struct.hgr" --method ml --runs 5 \
    --threads 1 --assign "$par_dir/assign_t1.txt")"
  t2_out="$(./target/release/prop partition "$par_dir/struct.hgr" --method ml --runs 5 \
    --threads 2 --assign "$par_dir/assign_t2.txt")"
  t1_line="${t1_out%%$'\n'*}"
  t2_line="${t2_out%%$'\n'*}"
  echo "$t1_line"
  if [[ "$t1_line" != "$t2_line" ]]; then
    echo "check.sh: intra-parallel ml cut diverged across worker counts" >&2
    echo "  threads=1: $t1_line" >&2
    echo "  threads=2: $t2_line" >&2
    exit 1
  fi
  if ! diff -q "$par_dir/assign_t1.txt" "$par_dir/assign_t2.txt" >/dev/null; then
    echo "check.sh: intra-parallel ml assignment diverged across worker counts" >&2
    diff "$par_dir/assign_t1.txt" "$par_dir/assign_t2.txt" | head -n 5 >&2
    exit 1
  fi
  echo "check.sh: intra-parallel determinism gate passed (cut + assignment identical)"
fi

if [[ "$flow" -eq 1 ]]; then
  # Flow refinement gate. The kernel first: the flow crate's unit and
  # adversarial tests, then the differential proptests (Dinic vs the
  # naive Edmonds-Karp reference, plus the independent certificate
  # checker) in prop-verify.
  cargo test -q -p prop-flow
  cargo test -q -p prop-verify --test proptest_flow
  # Then the quality contract end-to-end through the CLI: on every suite
  # circuit, the flow-enabled ml engine must cut no more than the plain
  # ml engine at the same seed and run count.
  flow_dir="$(mktemp -d)"
  trap 'rm -rf "$flow_dir"' EXIT
  for circuit in balu struct p2; do
    ./target/release/prop generate --circuit "$circuit" --out "$flow_dir/$circuit.hgr" >/dev/null
    base_line="$(./target/release/prop partition "$flow_dir/$circuit.hgr" --method ml --runs 4)"
    flow_line="$(./target/release/prop partition "$flow_dir/$circuit.hgr" --method ml --runs 4 --ml-flow)"
    base_cut="$(sed -n 's/.*cut=\([0-9.]*\).*/\1/p' <<<"$base_line")"
    flow_cut="$(sed -n 's/.*cut=\([0-9.]*\).*/\1/p' <<<"$flow_line")"
    if [[ -z "$base_cut" || -z "$flow_cut" ]]; then
      echo "check.sh: could not parse a cut from the ml result lines" >&2
      echo "  ml:        $base_line" >&2
      echo "  ml+flow:   $flow_line" >&2
      exit 1
    fi
    if ! awk -v f="$flow_cut" -v b="$base_cut" 'BEGIN { exit !(f <= b) }'; then
      echo "check.sh: flow refinement worsened $circuit: cut $flow_cut > $base_cut" >&2
      exit 1
    fi
    echo "check.sh: $circuit ml=$base_cut ml+flow=$flow_cut"
  done
  echo "check.sh: flow gate passed (kernel proptests + cut(ml+flow) <= cut(ml) on the suite)"
fi

gates="build+test+clippy"
[[ "$audit" -eq 1 ]] && gates="$gates audit"
[[ "$bench_smoke" -eq 1 ]] && gates="$gates bench-smoke"
[[ "$serve" -eq 1 ]] && gates="$gates serve"
[[ "$ml" -eq 1 ]] && gates="$gates ml"
[[ "$par" -eq 1 ]] && gates="$gates par"
[[ "$flow" -eq 1 ]] && gates="$gates flow"
echo "check.sh: all gates passed ($gates)"
