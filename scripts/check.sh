#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
#   scripts/check.sh                # tier-1 gates only
#   scripts/check.sh --audit        # also run the debug-audit (oracle) gates
#   scripts/check.sh --bench-smoke  # also run the quick benchmark gate:
#                                   # oracle recounts every reported cut and
#                                   # the run fails on a >2x secs_per_run
#                                   # regression (or a changed best_cut at
#                                   # matching run counts) vs the committed
#                                   # BENCH_prop.json
set -euo pipefail
cd "$(dirname "$0")/.."

audit=0
bench_smoke=0
for arg in "$@"; do
  case "$arg" in
    --audit) audit=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

if [[ "$audit" -eq 1 ]]; then
  # Audited pass: every engine reports into the thread-local auditor slot
  # and the oracle auditors recheck each move against from-scratch
  # recomputation (see DESIGN.md §9).
  cargo test -q --features debug-audit
  cargo test -q -p prop-verify --features debug-audit
  cargo clippy -p prop-verify --features debug-audit -- -D warnings
  cargo clippy --workspace --features debug-audit -- -D warnings
fi

if [[ "$bench_smoke" -eq 1 ]]; then
  # Benchmark smoke gate: --quick keeps it to a few seconds; --compare
  # makes bench_snapshot a read-only regression check instead of a
  # snapshot writer. Quick mode runs fewer best-of iterations than the
  # committed rows, so only the >2x timing regression arm of the gate
  # applies; full-run best_cut equality is re-pinned whenever the
  # snapshot itself is regenerated.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --compare BENCH_prop.json
fi

echo "check.sh: all gates passed"
