#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
#   scripts/check.sh                # tier-1 gates only
#   scripts/check.sh --audit        # also run the debug-audit (oracle) gates
#   scripts/check.sh --bench-smoke  # also run the quick benchmark gate:
#                                   # oracle recounts every reported cut and
#                                   # the run fails on a >2x secs_per_run
#                                   # regression (or a changed best_cut at
#                                   # matching run counts) vs the committed
#                                   # BENCH_prop.json
#   scripts/check.sh --serve        # also run the daemon smoke gate: build
#                                   # the prop-serve loopback benchmark,
#                                   # drive it under a 30s budget, and fail
#                                   # on any contained worker panic in the
#                                   # daemon's output
#   scripts/check.sh --ml           # also run the multilevel smoke gate:
#                                   # one ml-only quick benchmark pass whose
#                                   # cuts the oracle recounts, plus the
#                                   # ml-vs-flat CLI path on a generated
#                                   # circuit through both thread policies
set -euo pipefail
cd "$(dirname "$0")/.."

audit=0
bench_smoke=0
serve=0
ml=0
for arg in "$@"; do
  case "$arg" in
    --audit) audit=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --serve) serve=1 ;;
    --ml) ml=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

if [[ "$audit" -eq 1 ]]; then
  # Audited pass: every engine reports into the thread-local auditor slot
  # and the oracle auditors recheck each move against from-scratch
  # recomputation (see DESIGN.md §9).
  cargo test -q --features debug-audit
  cargo test -q -p prop-verify --features debug-audit
  cargo clippy -p prop-verify --features debug-audit -- -D warnings
  cargo clippy --workspace --features debug-audit -- -D warnings
fi

if [[ "$bench_smoke" -eq 1 ]]; then
  # Benchmark smoke gate: --quick keeps it to a few seconds; --compare
  # makes bench_snapshot a read-only regression check instead of a
  # snapshot writer. Quick mode runs fewer best-of iterations than the
  # committed rows, so only the >2x timing regression arm of the gate
  # applies; full-run best_cut equality is re-pinned whenever the
  # snapshot itself is regenerated.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --compare BENCH_prop.json
fi

if [[ "$serve" -eq 1 ]]; then
  # Daemon smoke gate: an in-process loopback daemon serves the quick
  # benchmark (overhead + throughput, bit-identity asserted inside) under
  # a 30-second budget. bench_serve already exits non-zero on any
  # divergence; on top of that, any contained worker panic in the output
  # fails the gate even though the daemon survived it.
  cargo build --release -q -p prop-experiments --bin bench_serve
  serve_log="$(mktemp)"
  trap 'rm -f "$serve_log"' EXIT
  timeout 30s ./target/release/bench_serve --quick --jobs 8 2>&1 | tee "$serve_log"
  if grep -qi "panicked" "$serve_log"; then
    echo "check.sh: worker panic detected in the serve smoke log" >&2
    exit 1
  fi
fi

if [[ "$ml" -eq 1 ]]; then
  # Multilevel smoke gate. First an ml-only quick benchmark pass: the
  # oracle recounts every reported cut, and --compare trips on a >2x
  # secs_per_run regression against the committed ML rows.
  cargo run --release -q -p prop-experiments --bin bench_snapshot -- \
    --quick --method ML --compare BENCH_prop.json
  # Then the CLI path: the ml method through both thread policies must
  # print the identical result line.
  ml_dir="$(mktemp -d)"
  trap 'rm -rf "$ml_dir"' EXIT
  ./target/release/prop generate --circuit struct --out "$ml_dir/struct.hgr" >/dev/null
  seq_line="$(./target/release/prop partition "$ml_dir/struct.hgr" --method ml --runs 4)"
  par_line="$(./target/release/prop partition "$ml_dir/struct.hgr" --method ml --runs 4 --threads 2)"
  echo "$seq_line"
  if [[ "$seq_line" != "$par_line" ]]; then
    echo "check.sh: ml CLI diverged across thread policies" >&2
    echo "  sequential: $seq_line" >&2
    echo "  threads=2:  $par_line" >&2
    exit 1
  fi
fi

echo "check.sh: all gates passed"
