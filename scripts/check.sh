#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
#   scripts/check.sh          # tier-1 gates only
#   scripts/check.sh --audit  # also run the debug-audit (oracle) gates
set -euo pipefail
cd "$(dirname "$0")/.."

audit=0
for arg in "$@"; do
  case "$arg" in
    --audit) audit=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

if [[ "$audit" -eq 1 ]]; then
  # Audited pass: every engine reports into the thread-local auditor slot
  # and the oracle auditors recheck each move against from-scratch
  # recomputation (see DESIGN.md §9).
  cargo test -q --features debug-audit
  cargo test -q -p prop-verify --features debug-audit
  cargo clippy -p prop-verify --features debug-audit -- -D warnings
  cargo clippy --workspace --features debug-audit -- -D warnings
fi

echo "check.sh: all gates passed"
