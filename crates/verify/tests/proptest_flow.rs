//! Property tests pitting the Dinic kernel against the naive reference.
//!
//! Networks use small integer capacities so both solvers do exact
//! floating-point arithmetic (sums and differences of small integers)
//! and their max-flow values must agree *bitwise*, not just within a
//! tolerance. Every Dinic answer must also survive the independent
//! certificate checker on both extreme min cuts.

use proptest::prelude::*;
use prop_flow::FlowNetwork;
use prop_verify::{check_flow_certificate, reference_max_flow};

/// A random directed network: node count and a list of arcs with
/// integer capacities (self-loops allowed — they must change nothing).
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (2usize..=12).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0u8..=10);
        (Just(n), proptest::collection::vec(edge, 0..40))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dinic and Edmonds–Karp agree exactly on random small networks,
    /// and the Dinic answer's certificate checks out for both extreme
    /// minimum cuts.
    #[test]
    fn dinic_matches_reference(network in arb_network()) {
        let (n, arcs) = network;
        let edges: Vec<(usize, usize, f64)> = arcs
            .iter()
            .map(|&(u, v, c)| (u, v, f64::from(c)))
            .collect();
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let (s, t) = (0, n - 1);
        let flow = net.max_flow(s, t).expect("not cancelled");
        let expected = reference_max_flow(n, &edges, s, t);
        prop_assert_eq!(flow.value, expected);

        let small = net.min_cut_source_side(s);
        check_flow_certificate(&net.edges(), s, t, flow.value, &small)
            .map_err(|e| TestCaseError::Fail(format!("source-side cut: {e}")))?;
        net.check_min_cut(s, t, flow.value, &small)
            .map_err(|e| TestCaseError::Fail(format!("kernel self-check: {e}")))?;
        let large = net.min_cut_sink_side_complement(t);
        check_flow_certificate(&net.edges(), s, t, flow.value, &large)
            .map_err(|e| TestCaseError::Fail(format!("sink-side cut: {e}")))?;
        // The extreme cuts bracket the min-cut lattice.
        for v in 0..n {
            prop_assert!(!small[v] || large[v]);
        }
    }

    /// Max-flow is invariant under arc order: shuffling the insertion
    /// order of the same arc multiset cannot change the value.
    #[test]
    fn flow_value_is_arc_order_invariant(
        network in arb_network(),
        rot in 0usize..40,
    ) {
        let (n, arcs) = network;
        let build = |list: &[(usize, usize, u8)]| {
            let mut net = FlowNetwork::new(n);
            for &(u, v, c) in list {
                net.add_edge(u, v, f64::from(c));
            }
            net.max_flow(0, n - 1).expect("not cancelled").value
        };
        let mut rotated = arcs.clone();
        if !rotated.is_empty() {
            let shift = rot % rotated.len();
            rotated.rotate_left(shift);
        }
        prop_assert_eq!(build(&arcs), build(&rotated));
    }
}
