//! A from-scratch mirror of the PROP engine.
//!
//! [`ReferenceProp`] implements the exact pass semantics of `prop_core`'s
//! incremental PROP engine — the Fig.-2 schedule, the §3.2 probability
//! map, the §3.4 neighbor + top-k refresh, the `(gain, recency, id)`
//! selection order, the prefix commit — but with none of its machinery:
//! no AVL trees (selection is a linear scan), no incremental cut state
//! (immediate gains come from direct pin counts), no prefix tracker (a
//! naive scan), no epoch marks (a fresh visited vector per move).
//!
//! Floating-point evaluation *order* is mirrored deliberately, including
//! the engine's divide-by-`p(u)` gain form and its ratio-based product
//! refresh, so a correct engine matches this reference **bit-for-bit**:
//! identical move sequences, identical gain tables at every refresh,
//! identical committed prefixes, identical final partitions. Any drift —
//! a tree mis-ordering, a stale gain, a wrong delta, a rollback slip —
//! shows up as a hard mismatch in the differential tests rather than a
//! statistical quality regression.

use crate::oracle;
use prop_core::{
    BalanceConstraint, Bipartition, GainInit, ImproveStats, PartitionError, Partitioner,
    PassTrace, PropConfig, Side, SideWeights,
};
use prop_dstruct::OrderedF64;
use prop_netlist::{Hypergraph, NetId, NodeId};

/// Selection key, ordered exactly like the engine's AVL key: gain first,
/// then the recency stamp (most recently re-gained wins — bucket LIFO),
/// then the node id.
type Key = (OrderedF64, u64, u32);

/// The from-scratch PROP mirror. See the module docs.
///
/// ```
/// use prop_core::{BalanceConstraint, Partitioner, PropConfig};
/// use prop_netlist::generate::{generate, GeneratorConfig};
/// use prop_verify::ReferenceProp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(40, 44, 150).with_seed(7))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let result = ReferenceProp::new(PropConfig::default()).run_seeded(&graph, balance, 1)?;
/// assert!(result.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct ReferenceProp {
    config: PropConfig,
}

/// Everything one reference pass recorded, for cross-engine comparison.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ReferencePassRecord {
    /// Gain table at the end of the refinement phase (pre-move).
    pub refinement_gains: Vec<f64>,
    /// Probabilities at the end of the refinement phase.
    pub refinement_probabilities: Vec<f64>,
    /// Every tentatively moved node, in move order.
    pub moves: Vec<usize>,
    /// The exact immediate gain of each tentative move.
    pub immediate_gains: Vec<f64>,
    /// Length of the committed prefix.
    pub committed_moves: usize,
    /// Gain of the committed prefix.
    pub committed_gain: f64,
    /// Cut cost (recomputed from scratch) after the commit.
    pub end_cut: f64,
}

impl ReferenceProp {
    /// Creates the mirror for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, like `Prop::new`.
    pub fn new(config: PropConfig) -> Self {
        config.validate().expect("invalid PROP configuration");
        ReferenceProp { config }
    }

    /// Like `Prop::improve_traced`: improves in place, returning one
    /// [`PassTrace`] per pass with identical contents.
    pub fn improve_traced(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> (ImproveStats, Vec<PassTrace>) {
        let (stats, traces, _) = self.improve_recorded(graph, partition, balance);
        (stats, traces)
    }

    /// Improves in place, additionally returning the full per-pass record
    /// (gain tables, move lists, commits) for bit-level comparison against
    /// an audited engine run.
    pub fn improve_recorded(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> (ImproveStats, Vec<PassTrace>, Vec<ReferencePassRecord>) {
        let mut state = RefState::new(graph);
        let mut traces = Vec::new();
        let mut records = Vec::new();
        while traces.len() < self.config.max_passes {
            let (committed, trace, record) =
                run_reference_pass(graph, partition, balance, &self.config, &mut state);
            traces.push(trace);
            records.push(record);
            if committed <= 0.0 {
                break;
            }
        }
        let stats = ImproveStats {
            passes: traces.len(),
            cut_cost: oracle::naive_cut(graph, partition),
        };
        (stats, traces, records)
    }
}

impl Default for ReferenceProp {
    fn default() -> Self {
        ReferenceProp::new(PropConfig::default())
    }
}

impl Partitioner for ReferenceProp {
    fn name(&self) -> &str {
        "PROP-oracle"
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        self.improve_traced(graph, partition, balance).0
    }
}

/// Runs a single reference pass; exposed so tests can exercise one pass
/// in isolation.
///
/// # Errors
///
/// Returns [`PartitionError::EmptyGraph`] for a node-less graph.
pub fn reference_pass(
    graph: &Hypergraph,
    partition: &mut Bipartition,
    balance: BalanceConstraint,
    config: &PropConfig,
) -> Result<ReferencePassRecord, PartitionError> {
    if graph.num_nodes() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    let mut state = RefState::new(graph);
    let (_, _, record) = run_reference_pass(graph, partition, balance, config, &mut state);
    Ok(record)
}

/// Cross-pass mirror state: probabilities, gains, products, and the
/// recency-stamp counter (which, like the engine's, never resets within
/// one improve call).
struct RefState {
    p: Vec<f64>,
    gain: Vec<f64>,
    locked: Vec<bool>,
    prod: Vec<[f64; 2]>,
    locked_cnt: Vec<[u32; 2]>,
    stamp: Vec<u64>,
    next_stamp: u64,
}

impl RefState {
    fn new(graph: &Hypergraph) -> Self {
        RefState {
            p: vec![0.0; graph.num_nodes()],
            gain: vec![0.0; graph.num_nodes()],
            locked: vec![false; graph.num_nodes()],
            prod: vec![[1.0; 2]; graph.num_nets()],
            locked_cnt: vec![[0; 2]; graph.num_nets()],
            stamp: vec![0; graph.num_nodes()],
            next_stamp: 0,
        }
    }

    fn key_of(&self, v: usize) -> Key {
        (OrderedF64::new(self.gain[v]), self.stamp[v], v as u32)
    }

    /// Recomputes one net's products and locked counts exactly (pins in
    /// CSR order, like the engine's per-net recomputation).
    fn recompute_net(&mut self, graph: &Hypergraph, partition: &Bipartition, net: NetId) {
        let mut prod = [1.0f64; 2];
        let mut cnt = [0u32; 2];
        for &x in graph.pins_of(net) {
            let s = partition.side(x).index();
            if self.locked[x.index()] {
                cnt[s] += 1;
            } else {
                prod[s] *= self.p[x.index()];
            }
        }
        self.prod[net.index()] = prod;
        self.locked_cnt[net.index()] = cnt;
    }

    fn rebuild_products(&mut self, graph: &Hypergraph, partition: &Bipartition) {
        for net in graph.nets() {
            self.recompute_net(graph, partition, net);
        }
    }

    /// The engine's gain arithmetic: same-side product divided by `p(u)`,
    /// clamped; cut-ness from direct pin counts.
    fn compute_gain(&self, graph: &Hypergraph, partition: &Bipartition, u: NodeId) -> f64 {
        let s = partition.side(u);
        let (si, oi) = (s.index(), s.other().index());
        let pu = self.p[u.index()];
        let mut g = 0.0;
        for &net in graph.nets_of(u) {
            let ni = net.index();
            let c = graph.net_weight(net);
            let same = if self.locked_cnt[ni][si] > 0 {
                0.0
            } else {
                (self.prod[ni][si] / pu).clamp(0.0, 1.0)
            };
            if oracle::naive_pins_on(graph, partition, net)[oi] > 0 {
                let other = if self.locked_cnt[ni][oi] > 0 {
                    0.0
                } else {
                    self.prod[ni][oi].clamp(0.0, 1.0)
                };
                g += c * (same - other);
            } else {
                g -= c * (1.0 - same);
            }
        }
        g
    }

    fn recompute_all_gains(&mut self, graph: &Hypergraph, partition: &Bipartition) {
        for v in graph.nodes() {
            if !self.locked[v.index()] {
                self.gain[v.index()] = self.compute_gain(graph, partition, v);
            }
        }
    }

    /// Maps gains to fresh probabilities; `true` when any changed.
    fn refresh_probabilities(&mut self, config: &PropConfig) -> bool {
        let mut changed = false;
        for v in 0..self.p.len() {
            let np = config.probability_of(self.gain[v]);
            if np != self.p[v] {
                self.p[v] = np;
                changed = true;
            }
        }
        changed
    }

    /// The §3.4 single-node refresh: new gain (re-stamped only on change,
    /// like a tree reposition), then the new probability pushed into the
    /// node's nets through the engine's ratio update.
    fn refresh_node(
        &mut self,
        graph: &Hypergraph,
        partition: &Bipartition,
        config: &PropConfig,
        x: NodeId,
    ) {
        let new_gain = self.compute_gain(graph, partition, x);
        if new_gain != self.gain[x.index()] {
            self.gain[x.index()] = new_gain;
            self.next_stamp += 1;
            self.stamp[x.index()] = self.next_stamp;
        }
        let new_p = config.probability_of(new_gain);
        let old_p = self.p[x.index()];
        if new_p != old_p {
            self.p[x.index()] = new_p;
            let ratio = new_p / old_p;
            let si = partition.side(x).index();
            for &net in graph.nets_of(x) {
                self.prod[net.index()][si] *= ratio;
            }
        }
    }

    /// Unlocked nodes of `side` in descending key order — the linear-scan
    /// stand-in for the engine's AVL `iter_desc`.
    fn ranked(&self, partition: &Bipartition, side: Side) -> Vec<usize> {
        let mut nodes: Vec<usize> = (0..self.p.len())
            .filter(|&v| !self.locked[v] && partition.side(NodeId::new(v)) == side)
            .collect();
        nodes.sort_by_key(|&v| std::cmp::Reverse(self.key_of(v)));
        nodes
    }
}

/// One pass of Fig. 2, steps 3–10, mirrored naively.
fn run_reference_pass(
    graph: &Hypergraph,
    partition: &mut Bipartition,
    balance: BalanceConstraint,
    config: &PropConfig,
    state: &mut RefState,
) -> (f64, PassTrace, ReferencePassRecord) {
    let n = graph.num_nodes();
    let mut record = ReferencePassRecord::default();
    if n == 0 {
        return (0.0, PassTrace::default(), record);
    }
    state.locked.iter_mut().for_each(|l| *l = false);
    let mut side_weights = SideWeights::new(graph, partition);

    // Step 3: seeding.
    match config.init {
        GainInit::Uniform => state.p.iter_mut().for_each(|p| *p = config.p_init),
        GainInit::Deterministic => {
            for v in graph.nodes() {
                state.p[v.index()] =
                    config.probability_of(oracle::naive_fm_gain(graph, partition, v));
            }
        }
    }
    // Step 4: alternate gain/probability refinement to the same fixed
    // point the engine reaches.
    state.rebuild_products(graph, partition);
    state.recompute_all_gains(graph, partition);
    for _ in 0..config.refine_iterations {
        if !state.refresh_probabilities(config) {
            break;
        }
        state.rebuild_products(graph, partition);
        state.recompute_all_gains(graph, partition);
    }
    record.refinement_gains = state.gain.clone();
    record.refinement_probabilities = state.p.clone();

    // The engine refills its trees here, stamping every node in id order.
    for v in 0..n {
        state.next_stamp += 1;
        state.stamp[v] = state.next_stamp;
    }

    // Steps 5–8: the move phase.
    let mut immediate_gains: Vec<f64> = Vec::new();
    let mut feasible: Vec<bool> = Vec::new();
    let mut moves: Vec<NodeId> = Vec::new();
    while let Some(u) = select_reference_move(graph, partition, balance, &side_weights, state, config)
    {
        let from = partition.side(u);
        let immediate = immediate_gain_and_flip(graph, partition, u);
        side_weights.apply_move(from, graph.node_weight(u));
        state.locked[u.index()] = true;
        state.p[u.index()] = 0.0;
        for &net in graph.nets_of(u) {
            state.recompute_net(graph, partition, net);
        }
        immediate_gains.push(immediate);
        feasible.push(balance.is_feasible(
            [partition.count(Side::A), partition.count(Side::B)],
            side_weights.as_array(),
        ));
        moves.push(u);

        // Neighbor refresh in net/pin CSR order, each neighbor once.
        let mut visited = vec![false; n];
        visited[u.index()] = true;
        for &net in graph.nets_of(u) {
            for &x in graph.pins_of(net) {
                if !state.locked[x.index()] && !visited[x.index()] {
                    visited[x.index()] = true;
                    state.refresh_node(graph, partition, config, x);
                }
            }
        }
        // Top-k refresh per side, candidates snapshotted before refreshing.
        if config.top_k_refresh > 0 {
            for si in 0..2 {
                let top: Vec<usize> = state
                    .ranked(partition, Side::from_index(si))
                    .into_iter()
                    .take(config.top_k_refresh)
                    .collect();
                for v in top {
                    if !visited[v] {
                        visited[v] = true;
                        state.refresh_node(graph, partition, config, NodeId::new(v));
                    }
                }
            }
        }
    }

    // Steps 9–10: commit the best feasible prefix, roll the rest back.
    let best = oracle::best_prefix_naive(&immediate_gains, &feasible);
    let commit = best.map_or(0, |(m, _)| m);
    for &u in moves[commit..].iter().rev() {
        partition.flip(u);
    }
    let committed_gain = best.map_or(0.0, |(_, g)| g);

    let mut running = 0.0f64;
    let mut drawdown = 0.0f64;
    for &g in &immediate_gains[..commit] {
        running += g;
        drawdown = drawdown.min(running);
    }
    let trace = PassTrace {
        tentative_moves: moves.len(),
        committed_moves: commit,
        committed_gain,
        max_drawdown: drawdown,
    };
    record.moves = moves.iter().map(|u| u.index()).collect();
    record.immediate_gains = immediate_gains;
    record.committed_moves = commit;
    record.committed_gain = committed_gain;
    record.end_cut = oracle::naive_cut(graph, partition);
    (committed_gain, trace, record)
}

/// Step 6, mirrored: the best key over both sides whose move the balance
/// allows, with the same per-side blocking rules and the same
/// `balance_probe_depth` cap on the weighted scan.
fn select_reference_move(
    graph: &Hypergraph,
    partition: &Bipartition,
    balance: BalanceConstraint,
    side_weights: &SideWeights,
    state: &RefState,
    config: &PropConfig,
) -> Option<NodeId> {
    let counts = [partition.count(Side::A), partition.count(Side::B)];
    let weights = side_weights.as_array();
    let mut best: Option<Key> = None;
    for si in 0..2 {
        let side = Side::from_index(si);
        let ranked = state.ranked(partition, side);
        if !balance.is_weighted() {
            if !balance.allows_move(side, counts[0], counts[1]) {
                continue;
            }
            if let Some(&v) = ranked.first() {
                let key = state.key_of(v);
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                }
            }
            continue;
        }
        let probe_limit = config.balance_probe_depth.unwrap_or(usize::MAX);
        for (probed, &v) in ranked.iter().enumerate() {
            if probed >= probe_limit {
                break;
            }
            if balance.allows_node_move(side, counts, weights, graph.node_weight(NodeId::new(v)))
            {
                let key = state.key_of(v);
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                }
                break;
            }
        }
    }
    best.map(|(_, _, id)| NodeId::new(id as usize))
}

/// Flips `u`, returning the exact immediate gain, accumulated over
/// `nets_of(u)` in order like `CutState::apply_move` — the floats agree
/// bit-for-bit.
fn immediate_gain_and_flip(graph: &Hypergraph, partition: &mut Bipartition, u: NodeId) -> f64 {
    let from = partition.side(u);
    let to = from.other();
    let mut gain = 0.0;
    for &net in graph.nets_of(u) {
        let mut counts = oracle::naive_pins_on(graph, partition, net);
        let was_cut = counts[0] > 0 && counts[1] > 0;
        counts[from.index()] -= 1;
        counts[to.index()] += 1;
        let is_cut = counts[0] > 0 && counts[1] > 0;
        match (was_cut, is_cut) {
            (true, false) => gain += graph.net_weight(net),
            (false, true) => gain -= graph.net_weight(net),
            _ => {}
        }
    }
    partition.flip(u);
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;

    #[test]
    fn finds_the_obvious_bridge_cut() {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(1.0, [i, j]).unwrap();
                b.add_net(1.0, [i + 4, j + 4]).unwrap();
            }
        }
        b.add_net(1.0, [3, 4]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::bisection(8);
        let res = ReferenceProp::default().run_multi(&g, balance, 4, 0).unwrap();
        assert_eq!(res.cut_cost, 1.0);
        assert!(res.partition.is_balanced(balance));
    }

    #[test]
    fn never_worsens_and_reports_consistent_cut() {
        let g = generate(&GeneratorConfig::new(40, 44, 150).with_seed(11)).unwrap();
        let balance = BalanceConstraint::bisection(40);
        for seed in 0..3 {
            let res = ReferenceProp::default().run_seeded(&g, balance, seed).unwrap();
            assert_eq!(res.cut_cost, oracle::naive_cut(&g, &res.partition));
            assert!(res.partition.is_balanced(balance));
        }
    }

    #[test]
    fn empty_pass_is_rejected() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        let mut p = Bipartition::from_sides(vec![]);
        let err = reference_pass(&g, &mut p, BalanceConstraint::bisection(0), &PropConfig::default());
        assert_eq!(err.unwrap_err(), PartitionError::EmptyGraph);
    }

    #[test]
    fn record_shapes_are_consistent() {
        let g = generate(&GeneratorConfig::new(24, 30, 90).with_seed(5)).unwrap();
        let mut p = Bipartition::from_sides(
            (0..24)
                .map(|i| if i % 2 == 0 { Side::A } else { Side::B })
                .collect(),
        );
        let record =
            reference_pass(&g, &mut p, BalanceConstraint::bisection(24), &PropConfig::default())
                .unwrap();
        assert_eq!(record.refinement_gains.len(), 24);
        assert_eq!(record.moves.len(), record.immediate_gains.len());
        assert!(record.committed_moves <= record.moves.len());
        assert_eq!(record.end_cut, oracle::naive_cut(&g, &p));
    }
}
