//! Differential-oracle verification for the PROP suite.
//!
//! The engines in `prop-core` and `prop-fm` maintain everything
//! incrementally: per-net probability products, delta-updated gain
//! containers, incremental cut costs, running side weights. This crate is
//! the counterweight — slow, obvious reimplementations that recompute the
//! same quantities from scratch, plus the plumbing to compare the two on
//! every move:
//!
//! * [`oracle`] — pure functions recomputing cut cost, FM gains, PROP
//!   products/gains (Eqns. 2–6), side weights, and the best move prefix
//!   by direct evaluation.
//! * [`flow`] — a naive Edmonds–Karp max-flow reference and an
//!   independent certificate checker for the Dinic kernel in
//!   `prop-flow` (capacity, conservation, cut capacity = flow value).
//! * [`kway`] — from-scratch k-way oracles for the recursive driver:
//!   both cut objectives (hyperedge cut and connectivity λ−1), per-part
//!   weight recounts, and budget-feasibility checks over a flat
//!   `node → part` assignment.
//! * [`OracleAuditor`] — an implementation of `prop_core::audit::Auditor`
//!   that checks every hook record an engine emits against those oracles
//!   and panics on the first violation. [`RecordingAuditor`] logs
//!   executions instead, for cross-engine diffing.
//! * [`ReferenceProp`] — a from-scratch mirror of the PROP engine with
//!   the same floating-point evaluation order but none of the incremental
//!   machinery; a correct engine matches it bit-for-bit, move for move.
//!
//! The oracles and the reference engine need no features. Installing an
//! auditor into a live engine requires building with `--features
//! debug-audit`, which compiles the emission sites into `prop-core` and
//! `prop-fm` (they cost nothing otherwise: the hooks are `#[cfg]`-gated
//! out of release builds).
//!
//! ```
//! use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
//! use prop_netlist::generate::{generate, GeneratorConfig};
//! use prop_verify::ReferenceProp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::new(32, 36, 120).with_seed(9))?;
//! let balance = BalanceConstraint::bisection(graph.num_nodes());
//! let fast = Prop::new(PropConfig::default()).run_seeded(&graph, balance, 0)?;
//! let slow = ReferenceProp::new(PropConfig::default()).run_seeded(&graph, balance, 0)?;
//! assert_eq!(fast.partition, slow.partition);
//! assert_eq!(fast.cut_cost, slow.cut_cost);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod flow;
pub mod kway;
pub mod oracle;
mod reference;

pub use audit::{AuditStats, OracleAuditor, PassLog, RecordingAuditor, AUDIT_TOLERANCE};
pub use flow::{check_flow_certificate, reference_max_flow, FLOW_TOLERANCE};
pub use reference::{reference_pass, ReferencePassRecord, ReferenceProp};

#[cfg(feature = "debug-audit")]
pub use audit::audited;
