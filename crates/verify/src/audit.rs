//! Auditor implementations for the `prop_core::audit` hook points.
//!
//! [`OracleAuditor`] checks every record an engine emits against the
//! naive oracles of [`crate::oracle`] and panics with a descriptive
//! message on the first violation — gain tables that drifted from the
//! Eqns. 2–6 recomputation, a locked node that moved, a double move, an
//! incremental cut that disagrees with a recount, a prefix commit that a
//! naive scan would have chosen differently, or a rollback that failed to
//! restore the pre-pass state.
//!
//! [`RecordingAuditor`] makes no checks: it logs each pass's move
//! sequence, gain tables, and commit so differential tests can compare
//! two engines' executions bit-for-bit.
//!
//! Both are plain [`Auditor`] implementations and compile without any
//! feature; installing them into the engines' thread-local hook slot
//! requires the `debug-audit` feature (see `prop_core::audit::AuditScope`).

use crate::oracle;
use prop_core::audit::{Auditor, MoveRecord, PassBegin, PassRecord, RefinementRecord};
use prop_core::{probabilistic_gains, Side};
use std::cell::RefCell;
use std::rc::Rc;

/// Tolerance for comparisons against incrementally maintained floats
/// (cut costs, delta-updated FM gains, mid-pass probabilistic gains).
/// From-scratch quantities (refinement-end gain tables, prefix sums) are
/// compared exactly.
pub const AUDIT_TOLERANCE: f64 = 1e-9;

/// Counters of what an [`OracleAuditor`] actually observed, shared out
/// through [`OracleAuditor::new`] so tests can assert the hooks fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AuditStats {
    /// Passes begun.
    pub passes: usize,
    /// Refinement records checked (PROP only).
    pub refinements: usize,
    /// Moves checked.
    pub moves: usize,
    /// Pass commits checked.
    pub commits: usize,
}

/// The invariant-checking auditor. See the module docs.
#[derive(Default)]
pub struct OracleAuditor {
    stats: Rc<RefCell<AuditStats>>,
    /// Side of every node when the current pass began.
    begin_sides: Vec<Side>,
    /// Naive cut when the current pass began.
    begin_cut: f64,
    /// Naive cut after the last audited move.
    prev_cut: f64,
    /// Nodes moved so far in the current pass.
    moved: Vec<bool>,
}

impl OracleAuditor {
    /// Creates an auditor plus a shared handle to its counters.
    pub fn new() -> (Self, Rc<RefCell<AuditStats>>) {
        let auditor = OracleAuditor::default();
        let stats = auditor.stats.clone();
        (auditor, stats)
    }
}

impl Auditor for OracleAuditor {
    fn begin_pass(&mut self, r: &PassBegin<'_>) {
        let n = r.graph.num_nodes();
        self.begin_sides = (0..n)
            .map(|v| r.partition.side(prop_netlist::NodeId::new(v)))
            .collect();
        self.begin_cut = oracle::naive_cut(r.graph, r.partition);
        self.prev_cut = self.begin_cut;
        self.moved = vec![false; n];
        assert!(
            (r.cut.cut_cost() - self.begin_cut).abs() <= AUDIT_TOLERANCE,
            "[{}] pass-start incremental cut {} != recount {}",
            r.engine,
            r.cut.cut_cost(),
            self.begin_cut
        );
        self.stats.borrow_mut().passes += 1;
    }

    fn after_refinement(&mut self, r: &RefinementRecord<'_>) {
        let n = r.graph.num_nodes();
        assert_eq!(r.gains.len(), n, "[{}] gain table length", r.engine);
        assert_eq!(r.probabilities.len(), n, "[{}] probability length", r.engine);
        assert!(
            r.locked.iter().all(|&l| !l),
            "[{}] nodes locked before the move phase",
            r.engine
        );
        for (v, &p) in r.probabilities.iter().enumerate() {
            assert!(
                p > 0.0 && p <= 1.0,
                "[{}] refinement probability of node {v} is {p}, outside (0, 1]",
                r.engine
            );
        }
        // The engine rebuilt its products from scratch just before this
        // point, so the engine-arithmetic oracle must agree bit-for-bit.
        let mirror =
            oracle::engine_prop_gains(r.graph, r.partition, r.probabilities, r.locked);
        for (v, (&engine, &expect)) in r.gains.iter().zip(&mirror).enumerate() {
            assert!(
                engine == expect,
                "[{}] refinement gain of node {v}: engine {engine} != from-scratch {expect} \
                 (bit-exact expected)",
                r.engine
            );
        }
        // And the independent Eqn. 3-4 formulation to tolerance.
        let independent = probabilistic_gains(r.graph, r.partition, r.probabilities, r.locked);
        for (v, (&engine, &expect)) in r.gains.iter().zip(&independent).enumerate() {
            assert!(
                (engine - expect).abs() <= AUDIT_TOLERANCE,
                "[{}] refinement gain of node {v}: engine {engine} vs independent oracle \
                 {expect}",
                r.engine
            );
        }
        self.stats.borrow_mut().refinements += 1;
    }

    fn after_move(&mut self, r: &MoveRecord<'_>) {
        let e = r.engine;
        let u = r.moved.index();
        assert!(!self.moved[u], "[{e}] node {u} moved twice in one pass");
        self.moved[u] = true;
        assert!(r.locked[u], "[{e}] moved node {u} not locked");
        assert_eq!(
            r.partition.side(r.moved),
            self.begin_sides[u].other(),
            "[{e}] node {u} is not on the opposite of its pass-start side"
        );
        // Locked set is exactly the moved set.
        for (v, &l) in r.locked.iter().enumerate() {
            assert_eq!(
                l, self.moved[v],
                "[{e}] lock flag of node {v} disagrees with the audited move set"
            );
        }
        // Incremental cut and immediate gain against a recount.
        let cut = oracle::naive_cut(r.graph, r.partition);
        assert!(
            (r.cut.cut_cost() - cut).abs() <= AUDIT_TOLERANCE,
            "[{e}] incremental cut {} != recount {cut} after moving {u}",
            r.cut.cut_cost()
        );
        assert!(
            (self.prev_cut - cut - r.immediate_gain).abs() <= AUDIT_TOLERANCE,
            "[{e}] immediate gain {} of node {u} != cut delta {}",
            r.immediate_gain,
            self.prev_cut - cut
        );
        self.prev_cut = cut;
        // Running side weights against a recount.
        let weights = oracle::naive_side_weights(r.graph, r.partition);
        for (s, (&w, &expect)) in r.side_weights.iter().zip(&weights).enumerate() {
            assert!(
                (w - expect).abs() <= AUDIT_TOLERANCE,
                "[{e}] side-{s} weight {w} != recount {expect}"
            );
        }
        // Probabilities: locked nodes carry 0, live ones stay in (0, 1].
        if let Some(p) = r.probabilities {
            for (v, &l) in r.locked.iter().enumerate() {
                if l {
                    assert_eq!(p[v], 0.0, "[{e}] locked node {v} has probability {}", p[v]);
                } else {
                    assert!(
                        p[v] > 0.0 && p[v] <= 1.0,
                        "[{e}] live node {v} has probability {}",
                        p[v]
                    );
                }
            }
        }
        // Gain-container contents. For PROP (`fresh` present), per-move
        // gain exactness is *not* an invariant — the §3.4 refresh sweep
        // is sequential, so nodes refreshed early can be stale again by
        // the end of the move. What must hold instead: the moved node was
        // part of the sweep, and the per-net products agree with a
        // from-scratch rebuild from the current probabilities (the moved
        // node's nets are recomputed exactly; refreshes use a drift-free
        // ratio update). Mid-pass gain exactness is what the bit-for-bit
        // `ReferenceProp` differential pins down.
        match (r.fresh, r.probabilities, r.products) {
            (Some((marks, epoch)), Some(p), Some(nets)) => {
                assert_eq!(
                    marks[u], epoch,
                    "[{e}] moved node {u} missing from its own refresh sweep"
                );
                let rebuilt = oracle::net_products(r.graph, r.partition, p, r.locked);
                for (net, (hot, expect)) in nets.iter().zip(&rebuilt.prod).enumerate() {
                    assert_eq!(
                        hot.locked, rebuilt.locked[net],
                        "[{e}] locked pin counts of net {net} after moving {u}"
                    );
                    let pins = oracle::naive_pins_on(
                        r.graph,
                        r.partition,
                        prop_netlist::NetId::new(net),
                    );
                    assert_eq!(
                        hot.pins, pins,
                        "[{e}] pin counts of net {net} after moving {u}"
                    );
                    for (s, (&engine, &rebuild)) in hot.prod.iter().zip(expect).enumerate() {
                        assert!(
                            (engine - rebuild).abs() <= AUDIT_TOLERANCE,
                            "[{e}] product of net {net} side {s} after moving {u}: engine \
                             {engine} vs rebuild {rebuild}"
                        );
                    }
                }
            }
            _ => {
                // FM semantics: every unlocked gain is delta-maintained
                // exactly; compare all of them to the Eqn.-1 recount.
                let fm = oracle::naive_fm_gains(r.graph, r.partition);
                for (v, (&engine, &expect)) in r.gains.iter().zip(&fm).enumerate() {
                    if r.locked[v] {
                        continue;
                    }
                    assert!(
                        (engine - expect).abs() <= AUDIT_TOLERANCE,
                        "[{e}] delta-maintained gain of node {v} after moving {u}: engine \
                         {engine} vs oracle {expect}"
                    );
                }
            }
        }
        self.stats.borrow_mut().moves += 1;
    }

    fn after_pass(&mut self, r: &PassRecord<'_>) {
        let e = r.engine;
        let n = r.graph.num_nodes();
        assert_eq!(r.moves.len(), r.immediate_gains.len(), "[{e}] ragged pass record");
        assert_eq!(r.moves.len(), r.feasible.len(), "[{e}] ragged pass record");
        // The commit must be exactly what a naive max-prefix scan selects.
        let best = oracle::best_prefix_naive(r.immediate_gains, r.feasible);
        let (moves, gain) = best.unwrap_or((0, 0.0));
        assert_eq!(
            r.committed_moves, moves,
            "[{e}] committed prefix length {} != naive scan {moves}",
            r.committed_moves
        );
        assert!(
            r.committed_gain == gain,
            "[{e}] committed gain {} != naive scan {gain} (bit-exact expected)",
            r.committed_gain
        );
        // Rollback restores exactly the pre-pass state plus the committed
        // prefix of moves.
        let mut expected = std::mem::take(&mut self.begin_sides);
        for &u in &r.moves[..r.committed_moves] {
            expected[u.index()] = expected[u.index()].other();
        }
        for (v, &want) in expected.iter().enumerate() {
            assert_eq!(
                r.partition.side(prop_netlist::NodeId::new(v)),
                want,
                "[{e}] node {v} on the wrong side after rollback \
                 (committed {} of {} moves)",
                r.committed_moves,
                r.moves.len()
            );
        }
        self.begin_sides = expected;
        // Post-commit cut consistency and total-gain accounting.
        let cut = oracle::naive_cut(r.graph, r.partition);
        assert!(
            (r.cut.cut_cost() - cut).abs() <= AUDIT_TOLERANCE,
            "[{e}] post-pass incremental cut {} != recount {cut}",
            r.cut.cut_cost()
        );
        assert!(
            (self.begin_cut - cut - r.committed_gain).abs() <= AUDIT_TOLERANCE,
            "[{e}] committed gain {} != pass cut delta {}",
            r.committed_gain,
            self.begin_cut - cut
        );
        // Balance invariant: a committed prefix ends feasible; an empty
        // commit restores the (feasible or not) pre-pass state exactly.
        if r.committed_moves > 0 {
            assert!(
                r.feasible[r.committed_moves - 1],
                "[{e}] committed an infeasible prefix"
            );
            assert!(
                oracle::naive_is_feasible(r.graph, r.partition, r.balance),
                "[{e}] post-commit partition violates the balance constraint"
            );
        }
        // No phantom moves: every recorded move is a distinct real node.
        let mut seen = vec![false; n];
        for &u in r.moves {
            assert!(!seen[u.index()], "[{e}] node {u} recorded twice");
            seen[u.index()] = true;
        }
        self.stats.borrow_mut().commits += 1;
    }
}

/// One engine pass as seen through the hooks, for cross-engine diffing.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PassLog {
    /// Engine display name.
    pub engine: String,
    /// Gain table at the end of refinement (PROP only).
    pub refinement_gains: Option<Vec<f64>>,
    /// Probabilities at the end of refinement (PROP only).
    pub refinement_probabilities: Option<Vec<f64>>,
    /// Tentatively moved nodes, in order.
    pub moves: Vec<usize>,
    /// Immediate gain of each tentative move.
    pub immediate_gains: Vec<f64>,
    /// Committed prefix length.
    pub committed_moves: usize,
    /// Committed prefix gain.
    pub committed_gain: f64,
    /// Incremental cut cost after the commit.
    pub end_cut: f64,
}

/// A check-free auditor that logs every pass into a shared vector.
#[derive(Default)]
pub struct RecordingAuditor {
    log: Rc<RefCell<Vec<PassLog>>>,
    current: PassLog,
}

impl RecordingAuditor {
    /// Creates a recorder plus the shared handle its passes append to.
    pub fn new() -> (Self, Rc<RefCell<Vec<PassLog>>>) {
        let recorder = RecordingAuditor::default();
        let log = recorder.log.clone();
        (recorder, log)
    }
}

impl Auditor for RecordingAuditor {
    fn begin_pass(&mut self, r: &PassBegin<'_>) {
        self.current = PassLog {
            engine: r.engine.to_string(),
            ..PassLog::default()
        };
    }

    fn after_refinement(&mut self, r: &RefinementRecord<'_>) {
        self.current.refinement_gains = Some(r.gains.to_vec());
        self.current.refinement_probabilities = Some(r.probabilities.to_vec());
    }

    fn after_move(&mut self, r: &MoveRecord<'_>) {
        self.current.moves.push(r.moved.index());
        self.current.immediate_gains.push(r.immediate_gain);
    }

    fn after_pass(&mut self, r: &PassRecord<'_>) {
        self.current.committed_moves = r.committed_moves;
        self.current.committed_gain = r.committed_gain;
        self.current.end_cut = r.cut.cut_cost();
        self.log.borrow_mut().push(std::mem::take(&mut self.current));
    }
}

/// Runs `f` with `auditor` installed in the engines' thread-local hook
/// slot, restoring the previous auditor afterwards (panic-safe).
#[cfg(feature = "debug-audit")]
pub fn audited<T>(auditor: Box<dyn Auditor>, f: impl FnOnce() -> T) -> T {
    let _scope = prop_core::audit::AuditScope::new(auditor);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::{BalanceConstraint, Bipartition, CutState};
    use prop_netlist::HypergraphBuilder;

    fn tiny() -> (prop_netlist::Hypergraph, Bipartition) {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        (g, p)
    }

    #[test]
    fn oracle_auditor_counts_hooks() {
        let (g, p) = tiny();
        let cut = CutState::new(&g, &p);
        let (mut auditor, stats) = OracleAuditor::new();
        auditor.begin_pass(&PassBegin {
            engine: "test",
            graph: &g,
            partition: &p,
            cut: &cut,
            balance: BalanceConstraint::bisection(4),
        });
        assert_eq!(stats.borrow().passes, 1);
        assert_eq!(stats.borrow().moves, 0);
    }

    #[test]
    #[should_panic(expected = "incremental cut")]
    fn oracle_auditor_rejects_inconsistent_cut() {
        let (g, p) = tiny();
        // A cut state computed for a *different* partition.
        let wrong = Bipartition::from_sides(vec![Side::A, Side::B, Side::A, Side::B]);
        let cut = CutState::new(&g, &wrong);
        let (mut auditor, _) = OracleAuditor::new();
        auditor.begin_pass(&PassBegin {
            engine: "test",
            graph: &g,
            partition: &p,
            cut: &cut,
            balance: BalanceConstraint::bisection(4),
        });
    }

    #[test]
    fn recording_auditor_captures_a_pass() {
        let (g, p) = tiny();
        let cut = CutState::new(&g, &p);
        let (mut rec, log) = RecordingAuditor::new();
        rec.begin_pass(&PassBegin {
            engine: "test",
            graph: &g,
            partition: &p,
            cut: &cut,
            balance: BalanceConstraint::bisection(4),
        });
        rec.after_pass(&PassRecord {
            engine: "test",
            graph: &g,
            partition: &p,
            cut: &cut,
            balance: BalanceConstraint::bisection(4),
            moves: &[],
            immediate_gains: &[],
            feasible: &[],
            committed_moves: 0,
            committed_gain: 0.0,
        });
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].engine, "test");
        assert_eq!(log[0].committed_moves, 0);
        assert!(log[0].refinement_gains.is_none());
    }
}
