//! Naive from-scratch oracles.
//!
//! Every function here recomputes a quantity the engines maintain
//! incrementally — cut cost, FM gains, PROP products and gains, side
//! weights, best prefix — by direct evaluation over the whole hypergraph.
//! They are deliberately slow (no shared state, no reuse across calls) and
//! deliberately mirror the engines' floating-point *evaluation order*, so
//! that comparisons can be bit-exact wherever the engine itself computes
//! from scratch (pass start, refinement end) and tolerance-based where the
//! engine's incremental updates legitimately reorder arithmetic.

use prop_core::{BalanceConstraint, Bipartition, Side};
use prop_netlist::{Hypergraph, NetId, NodeId};

/// Pins of `net` on each side, counted directly.
pub fn naive_pins_on(graph: &Hypergraph, partition: &Bipartition, net: NetId) -> [u32; 2] {
    let mut cnt = [0u32; 2];
    for &x in graph.pins_of(net) {
        cnt[partition.side(x).index()] += 1;
    }
    cnt
}

/// Cut cost recomputed from scratch: the sum of weights of nets with pins
/// on both sides, accumulated in net order (the same order
/// `CutState::new` uses, so the two agree bit-for-bit).
pub fn naive_cut(graph: &Hypergraph, partition: &Bipartition) -> f64 {
    let mut cost = 0.0;
    for net in graph.nets() {
        let [a, b] = naive_pins_on(graph, partition, net);
        if a > 0 && b > 0 {
            cost += graph.net_weight(net);
        }
    }
    cost
}

/// The Eqn.-1 FM gain of one node, from direct pin counts. Accumulates
/// over `nets_of(node)` in order — the same order as
/// `CutState::move_gain` — so a fresh incremental state agrees exactly.
pub fn naive_fm_gain(graph: &Hypergraph, partition: &Bipartition, node: NodeId) -> f64 {
    let from = partition.side(node);
    let to = from.other();
    let mut gain = 0.0;
    for &net in graph.nets_of(node) {
        let cnt = naive_pins_on(graph, partition, net);
        let on_from = cnt[from.index()];
        let on_to = cnt[to.index()];
        if on_from == 1 && on_to > 0 {
            gain += graph.net_weight(net);
        } else if on_to == 0 && on_from > 1 {
            gain -= graph.net_weight(net);
        }
    }
    gain
}

/// The Eqn.-1 FM gains of all nodes.
pub fn naive_fm_gains(graph: &Hypergraph, partition: &Bipartition) -> Vec<f64> {
    graph
        .nodes()
        .map(|v| naive_fm_gain(graph, partition, v))
        .collect()
}

/// Per-side node weights recomputed from scratch in node order (the order
/// `SideWeights::new` uses).
pub fn naive_side_weights(graph: &Hypergraph, partition: &Bipartition) -> [f64; 2] {
    let mut w = [0.0; 2];
    for v in graph.nodes() {
        w[partition.side(v).index()] += graph.node_weight(v);
    }
    w
}

/// Per-net unlocked probability products and locked pin counts, computed
/// exactly as the PROP engine's per-net recomputation does: pins in CSR
/// order, locked pins counted, unlocked pins multiplied.
pub struct NetProducts {
    /// `prod[net][side]` — product of `p(x)` over unlocked pins.
    pub prod: Vec<[f64; 2]>,
    /// `locked[net][side]` — number of locked pins.
    pub locked: Vec<[u32; 2]>,
}

/// Builds [`NetProducts`] from scratch.
pub fn net_products(
    graph: &Hypergraph,
    partition: &Bipartition,
    probs: &[f64],
    locked: &[bool],
) -> NetProducts {
    let mut out = NetProducts {
        prod: vec![[1.0; 2]; graph.num_nets()],
        locked: vec![[0; 2]; graph.num_nets()],
    };
    for net in graph.nets() {
        let mut prod = [1.0f64; 2];
        let mut cnt = [0u32; 2];
        for &x in graph.pins_of(net) {
            let s = partition.side(x).index();
            if locked[x.index()] {
                cnt[s] += 1;
            } else {
                prod[s] *= probs[x.index()];
            }
        }
        out.prod[net.index()] = prod;
        out.locked[net.index()] = cnt;
    }
    out
}

/// PROP probabilistic gains evaluated with the *engine's* arithmetic: the
/// same-side product divided by `p(u)` and clamped, rather than the
/// multiply-excluding-`u` form of [`prop_core::probabilistic_gains`].
///
/// Wherever the engine has just rebuilt its products from scratch (pass
/// start and every refinement sweep), its gain table matches this function
/// bit-for-bit; `prop_core::probabilistic_gains` is the independent
/// formulation and matches both to ~1e-9.
///
/// Locked nodes get gain 0 (the engine never recomputes them).
pub fn engine_prop_gains(
    graph: &Hypergraph,
    partition: &Bipartition,
    probs: &[f64],
    locked: &[bool],
) -> Vec<f64> {
    let products = net_products(graph, partition, probs, locked);
    let mut gains = vec![0.0; graph.num_nodes()];
    for u in graph.nodes() {
        if locked[u.index()] {
            continue;
        }
        let s = partition.side(u);
        let (si, oi) = (s.index(), s.other().index());
        let pu = probs[u.index()];
        let mut g = 0.0;
        for &net in graph.nets_of(u) {
            let ni = net.index();
            let c = graph.net_weight(net);
            let same = if products.locked[ni][si] > 0 {
                0.0
            } else {
                (products.prod[ni][si] / pu).clamp(0.0, 1.0)
            };
            let other_pins = naive_pins_on(graph, partition, net)[oi];
            if other_pins > 0 {
                let other = if products.locked[ni][oi] > 0 {
                    0.0
                } else {
                    products.prod[ni][oi].clamp(0.0, 1.0)
                };
                g += c * (same - other);
            } else {
                g -= c * (1.0 - same);
            }
        }
        gains[u.index()] = g;
    }
    gains
}

/// The best strictly positive, feasible prefix of a move sequence — a
/// direct scan with the same semantics (and summation order, hence the
/// same floats) as `PrefixTracker::best`: among equal cumulative gains the
/// shortest prefix wins, infeasible end states are skipped, and `None`
/// means no feasible prefix improves the cut.
pub fn best_prefix_naive(gains: &[f64], feasible: &[bool]) -> Option<(usize, f64)> {
    assert_eq!(gains.len(), feasible.len(), "ragged prefix inputs");
    let mut sum = 0.0;
    let mut best: Option<(usize, f64)> = None;
    for (i, (&g, &ok)) in gains.iter().zip(feasible).enumerate() {
        sum += g;
        if !ok {
            continue;
        }
        let better = match best {
            None => sum > 0.0,
            Some((_, bg)) => sum > bg,
        };
        if better {
            best = Some((i + 1, sum));
        }
    }
    best
}

/// Whether `partition` satisfies `balance` under naively recomputed
/// counts and weights.
pub fn naive_is_feasible(
    graph: &Hypergraph,
    partition: &Bipartition,
    balance: BalanceConstraint,
) -> bool {
    balance.is_feasible(
        [partition.count(Side::A), partition.count(Side::B)],
        naive_side_weights(graph, partition),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::{cut_cost, CutState, SideWeights};
    use prop_netlist::HypergraphBuilder;

    fn graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.add_net(2.0, [2, 3]).unwrap();
        b.add_net(0.5, [0, 3, 4]).unwrap();
        b.add_net(1.0, [4]).unwrap();
        b.build().unwrap()
    }

    fn partition() -> Bipartition {
        Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B, Side::A])
    }

    #[test]
    fn naive_cut_matches_incremental() {
        let g = graph();
        let p = partition();
        assert_eq!(naive_cut(&g, &p), cut_cost(&g, &p));
    }

    #[test]
    fn naive_fm_gains_match_cut_state() {
        let g = graph();
        let p = partition();
        let cut = CutState::new(&g, &p);
        for v in g.nodes() {
            assert_eq!(naive_fm_gain(&g, &p, v), cut.move_gain(&g, &p, v), "{v}");
        }
        assert_eq!(naive_fm_gains(&g, &p).len(), 5);
    }

    #[test]
    fn naive_side_weights_match() {
        let g = graph();
        let p = partition();
        assert_eq!(naive_side_weights(&g, &p), SideWeights::new(&g, &p).as_array());
    }

    #[test]
    fn engine_gains_close_to_core_oracle() {
        let g = graph();
        let p = partition();
        let probs = vec![0.7, 0.8, 0.9, 0.6, 0.5];
        let locked = vec![false; 5];
        let a = engine_prop_gains(&g, &p, &probs, &locked);
        let b = prop_core::probabilistic_gains(&g, &p, &probs, &locked);
        for v in 0..5 {
            assert!((a[v] - b[v]).abs() < 1e-9, "node {v}: {} vs {}", a[v], b[v]);
        }
    }

    #[test]
    fn engine_gains_respect_locks() {
        let g = graph();
        let p = partition();
        let probs = vec![0.7, 0.8, 0.0, 0.6, 0.5];
        let locked = vec![false, false, true, false, false];
        let a = engine_prop_gains(&g, &p, &probs, &locked);
        assert_eq!(a[2], 0.0);
        let b = prop_core::probabilistic_gains(&g, &p, &probs, &locked);
        for v in 0..5 {
            assert!((a[v] - b[v]).abs() < 1e-9, "node {v}");
        }
    }

    #[test]
    fn best_prefix_matches_tracker_semantics() {
        assert_eq!(best_prefix_naive(&[], &[]), None);
        assert_eq!(best_prefix_naive(&[-1.0], &[true]), None);
        assert_eq!(best_prefix_naive(&[1.0, -1.0], &[true, true]), Some((1, 1.0)));
        // Infeasible peak is skipped.
        assert_eq!(
            best_prefix_naive(&[5.0, -1.0], &[false, true]),
            Some((2, 4.0))
        );
        // Shortest among equal sums.
        assert_eq!(
            best_prefix_naive(&[2.0, 0.0, 0.0], &[true, true, true]),
            Some((1, 2.0))
        );
    }
}
