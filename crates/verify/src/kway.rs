//! Naive from-scratch k-way oracles.
//!
//! The recursive k-way driver in `prop-core` assembles its result —
//! assignment, per-part weights, and cut under two objectives — from
//! incremental bookkeeping spread across a recursion tree. These oracles
//! recompute each quantity by direct evaluation over the whole
//! hypergraph and a flat `node → part` assignment, with no knowledge of
//! how the assignment was produced. The driver's acceptance criterion is
//! bit-for-bit agreement with them.
//!
//! Weight sums accumulate in node order and cut sums in net order — the
//! same orders the driver uses — so agreement is exact equality, not
//! tolerance-based.

use prop_netlist::Hypergraph;

/// Tolerance for budget-feasibility comparisons, mirroring the
/// `WEIGHT_EPS` slack of `prop_core::BalanceConstraint`: weight sums on
/// both sides of the comparison are built from the same inputs, so only
/// accumulated rounding — not real imbalance — can separate them.
pub const KWAY_WEIGHT_EPS: f64 = 1e-9;

/// The number of distinct parts among the pins of one net (its
/// connectivity λ), counted directly. Nets with no pins have λ = 0.
fn net_lambda(graph: &Hypergraph, assignment: &[u32], net: prop_netlist::NetId, k: u32) -> u32 {
    let mut seen = vec![false; k as usize];
    let mut lambda = 0;
    for &x in graph.pins_of(net) {
        let part = assignment[x.index()];
        if !seen[part as usize] {
            seen[part as usize] = true;
            lambda += 1;
        }
    }
    lambda
}

/// Hyperedge-cut objective recomputed from scratch: the sum of weights
/// of nets whose pins touch two or more parts, accumulated in net order.
/// For `k = 2` this is exactly the bipartition cut of
/// [`crate::oracle::naive_cut`].
///
/// # Panics
///
/// Panics if any assignment entry is `>= k` or the assignment length
/// differs from the node count.
pub fn kway_cut(graph: &Hypergraph, assignment: &[u32], k: u32) -> f64 {
    check_assignment(graph, assignment, k);
    let mut cost = 0.0;
    for net in graph.nets() {
        if net_lambda(graph, assignment, net, k) >= 2 {
            cost += graph.net_weight(net);
        }
    }
    cost
}

/// Connectivity (λ − 1) objective recomputed from scratch: the sum over
/// nets of `(λ(net) − 1) · w(net)` where λ is the number of distinct
/// parts the net touches, accumulated in net order. For `k = 2` the two
/// objectives coincide.
///
/// # Panics
///
/// Panics if any assignment entry is `>= k` or the assignment length
/// differs from the node count.
pub fn kway_connectivity(graph: &Hypergraph, assignment: &[u32], k: u32) -> f64 {
    check_assignment(graph, assignment, k);
    let mut cost = 0.0;
    for net in graph.nets() {
        let lambda = net_lambda(graph, assignment, net, k);
        if lambda >= 2 {
            cost += f64::from(lambda - 1) * graph.net_weight(net);
        }
    }
    cost
}

/// Per-part node weights recomputed from scratch in node order (the
/// order the driver's assembly pass uses, so sums agree bit-for-bit).
///
/// # Panics
///
/// Panics if any assignment entry is `>= k` or the assignment length
/// differs from the node count.
pub fn part_weights(graph: &Hypergraph, assignment: &[u32], k: u32) -> Vec<f64> {
    check_assignment(graph, assignment, k);
    let mut weights = vec![0.0; k as usize];
    for v in graph.nodes() {
        weights[assignment[v.index()] as usize] += graph.node_weight(v);
    }
    weights
}

/// Whether every part's weight is within its budget, up to
/// [`KWAY_WEIGHT_EPS`]. Lengths must match; a weight vector of the wrong
/// arity is never feasible.
pub fn check_budgets(weights: &[f64], budgets: &[f64]) -> bool {
    weights.len() == budgets.len()
        && weights
            .iter()
            .zip(budgets)
            .all(|(w, b)| *w <= b + KWAY_WEIGHT_EPS)
}

fn check_assignment(graph: &Hypergraph, assignment: &[u32], k: u32) {
    assert_eq!(
        assignment.len(),
        graph.num_nodes(),
        "assignment length must equal the node count"
    );
    assert!(
        assignment.iter().all(|&p| p < k),
        "every node must be assigned a part < k"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::HypergraphBuilder;

    /// Six nodes in three parts of two: parts {0,1}, {2,3}, {4,5}.
    ///
    /// Nets (unit weight unless noted):
    ///   n0 = {0,1}      internal to part 0     λ=1
    ///   n1 = {2,3,4}    parts 1,2              λ=2
    ///   n2 = {0,2,4}    parts 0,1,2            λ=3
    ///   n3 = {4,5}      internal to part 2     λ=1
    ///   n4 = {1,3} w=2.5  parts 0,1            λ=2
    ///
    /// Hand-computed: net-cut = 1 + 1 + 2.5 = 4.5;
    /// λ−1 = 1·1 + 2·1 + 1·2.5 = 5.5.
    fn three_part_example() -> (prop_netlist::Hypergraph, Vec<u32>) {
        let mut b = HypergraphBuilder::new(6);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [2, 3, 4]).unwrap();
        b.add_net(1.0, [0, 2, 4]).unwrap();
        b.add_net(1.0, [4, 5]).unwrap();
        b.add_net(2.5, [1, 3]).unwrap();
        (b.build().unwrap(), vec![0, 0, 1, 1, 2, 2])
    }

    #[test]
    fn hand_computed_three_part_cuts() {
        let (g, assignment) = three_part_example();
        assert_eq!(kway_cut(&g, &assignment, 3), 4.5);
        assert_eq!(kway_connectivity(&g, &assignment, 3), 5.5);
    }

    #[test]
    fn objectives_coincide_for_two_parts() {
        let (g, _) = three_part_example();
        let two_way = vec![0, 0, 0, 1, 1, 1];
        // Nets crossing {0,1,2}|{3,4,5}: n1 (2,3,4), n2 (0,2,4), n3 is
        // internal to B, n4 (1,3). Cut = 1 + 1 + 2.5 = 4.5.
        assert_eq!(kway_cut(&g, &two_way, 2), 4.5);
        assert_eq!(kway_connectivity(&g, &two_way, 2), 4.5);
        // And both match the bipartition oracle on the same split.
        let sides: Vec<prop_core::Side> = two_way
            .iter()
            .map(|&p| if p == 0 { prop_core::Side::A } else { prop_core::Side::B })
            .collect();
        let bip = prop_core::Bipartition::from_sides(sides);
        assert_eq!(kway_cut(&g, &two_way, 2), crate::oracle::naive_cut(&g, &bip));
    }

    #[test]
    fn connectivity_dominates_net_cut() {
        let (g, assignment) = three_part_example();
        // λ−1 ≥ net-cut always (each cut net contributes ≥ 1 · w).
        assert!(kway_connectivity(&g, &assignment, 3) >= kway_cut(&g, &assignment, 3));
        // One part per node: every multi-pin net is maximally cut.
        let spread = vec![0, 1, 2, 3, 4, 5];
        assert_eq!(kway_cut(&g, &spread, 6), 6.5);
        assert_eq!(kway_connectivity(&g, &spread, 6), 1.0 + 2.0 + 2.0 + 1.0 + 2.5);
    }

    #[test]
    fn single_part_has_no_cut() {
        let (g, _) = three_part_example();
        let all_zero = vec![0; 6];
        assert_eq!(kway_cut(&g, &all_zero, 1), 0.0);
        assert_eq!(kway_connectivity(&g, &all_zero, 1), 0.0);
        assert_eq!(part_weights(&g, &all_zero, 1), vec![6.0]);
    }

    #[test]
    fn part_weights_recount_weighted_nodes() {
        let mut b = HypergraphBuilder::new(4);
        b.set_node_weights(vec![1.5, 2.0, 0.5, 3.0]).unwrap();
        b.add_net(1.0, [0, 1, 2, 3]).unwrap();
        let g = b.build().unwrap();
        let assignment = vec![0, 2, 0, 1];
        assert_eq!(part_weights(&g, &assignment, 3), vec![2.0, 3.0, 2.0]);
        // An empty part keeps weight zero.
        assert_eq!(part_weights(&g, &assignment, 4), vec![2.0, 3.0, 2.0, 0.0]);
    }

    #[test]
    fn budget_check_is_per_part_with_epsilon() {
        assert!(check_budgets(&[2.0, 3.0], &[2.0, 3.0]));
        assert!(check_budgets(&[2.0 + 1e-12, 3.0], &[2.0, 3.0]));
        assert!(!check_budgets(&[2.1, 3.0], &[2.0, 3.0]));
        // Arity mismatches are never feasible.
        assert!(!check_budgets(&[1.0], &[2.0, 3.0]));
        assert!(check_budgets(&[], &[]));
    }
}
