//! Reference max-flow oracle and the flow-certificate checker.
//!
//! The Dinic kernel in `prop-flow` is fast and incremental in spirit
//! (level graphs, blocking flows, residual reuse across rounds); this
//! module is the counterweight in the crate's usual style:
//!
//! * [`reference_max_flow`] — a naive Edmonds–Karp solver (repeated BFS
//!   for *any* shortest augmenting path, one unit of bookkeeping per
//!   edge) that shares no code with the kernel.
//! * [`check_flow_certificate`] — an independent auditor for the
//!   (flow, cut) pair a solver returns, working only from the flat edge
//!   list: capacity bounds, flow conservation, and cut capacity equal to
//!   the claimed value. By weak duality, a pair passing all three is
//!   simultaneously a maximum flow and a minimum cut.

use prop_flow::FlowEdge;

/// Relative/absolute tolerance for the certificate checks. Net weights
/// are integral in every circuit format the suite reads, so real runs
/// are exact; the tolerance only guards synthetic fractional capacities.
pub const FLOW_TOLERANCE: f64 = 1e-6;

/// Computes the max-flow value from `source` to `sink` by Edmonds–Karp:
/// breadth-first search for the shortest augmenting path in the residual
/// graph, repeated until none exists.
///
/// `edges` are directed `(from, to, capacity)` arcs over nodes
/// `0..num_nodes`; parallel arcs and `f64::INFINITY` capacities are
/// allowed (an infinite arc simply never saturates). Runs in
/// `O(V * E^2)` — fine for the test-sized networks it exists to check.
///
/// # Panics
///
/// Panics if an endpoint is out of range or a capacity is negative.
pub fn reference_max_flow(
    num_nodes: usize,
    edges: &[(usize, usize, f64)],
    source: usize,
    sink: usize,
) -> f64 {
    assert!(source < num_nodes && sink < num_nodes, "terminal out of range");
    // Residual arcs as skew pairs: arc 2i = forward, 2i+1 = reverse.
    let mut to = Vec::with_capacity(edges.len() * 2);
    let mut cap = Vec::with_capacity(edges.len() * 2);
    let mut adj = vec![Vec::new(); num_nodes];
    for &(u, v, c) in edges {
        assert!(u < num_nodes && v < num_nodes, "edge endpoint out of range");
        assert!(c >= 0.0, "negative capacity");
        adj[u].push(to.len());
        to.push(v);
        cap.push(c);
        adj[v].push(to.len());
        to.push(u);
        cap.push(0.0);
    }
    if source == sink {
        return 0.0;
    }
    let mut value = 0.0;
    loop {
        // BFS for a shortest augmenting path, remembering the arc used
        // to reach each node.
        let mut pred: Vec<Option<usize>> = vec![None; num_nodes];
        let mut queue = std::collections::VecDeque::from([source]);
        let mut reached_sink = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in &adj[u] {
                let v = to[e];
                if cap[e] > 0.0 && pred[v].is_none() && v != source {
                    pred[v] = Some(e);
                    if v == sink {
                        reached_sink = true;
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !reached_sink {
            return value;
        }
        // Bottleneck along the predecessor chain, then push it.
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != source {
            let e = pred[v].expect("predecessor chain broken");
            bottleneck = bottleneck.min(cap[e]);
            v = to[e ^ 1];
        }
        let mut v = sink;
        while v != source {
            let e = pred[v].expect("predecessor chain broken");
            cap[e] -= bottleneck;
            cap[e ^ 1] += bottleneck;
            v = to[e ^ 1];
        }
        value += bottleneck;
    }
}

/// Checks a solver's (flow, min-cut) certificate from its flat edge
/// list, independently of the solver's own internal validation.
///
/// `source_side[v]` marks the nodes on the source side of the claimed
/// cut. The three conditions verified — each within [`FLOW_TOLERANCE`]
/// scaled by the claimed value — are:
///
/// 1. **Capacity**: `0 <= flow <= capacity` on every edge.
/// 2. **Conservation**: every node except the terminals has equal
///    inflow and outflow; the source's net outflow and the sink's net
///    inflow both equal `value`.
/// 3. **Cut**: the total capacity of edges leaving the source side
///    equals `value`, and no such edge is infinite.
///
/// Any flow satisfying (1)+(2) has value at most any cut's capacity, so
/// (3) proves both optimal at once.
pub fn check_flow_certificate(
    edges: &[FlowEdge],
    source: usize,
    sink: usize,
    value: f64,
    source_side: &[bool],
) -> Result<(), String> {
    let tol = FLOW_TOLERANCE * value.abs().max(1.0);
    if !source_side.get(source).copied().unwrap_or(false) {
        return Err("source is not on the source side".into());
    }
    if source_side.get(sink).copied().unwrap_or(false) {
        return Err("sink is on the source side".into());
    }
    let mut excess = vec![0.0f64; source_side.len()];
    let mut cut_capacity = 0.0f64;
    for (i, e) in edges.iter().enumerate() {
        if e.from >= source_side.len() || e.to >= source_side.len() {
            return Err(format!("edge {i} endpoint out of range"));
        }
        if e.flow < -tol {
            return Err(format!("edge {i} carries negative flow {}", e.flow));
        }
        if e.flow > e.capacity + tol {
            return Err(format!(
                "edge {i} over capacity: flow {} > capacity {}",
                e.flow, e.capacity
            ));
        }
        excess[e.from] -= e.flow;
        excess[e.to] += e.flow;
        if source_side[e.from] && !source_side[e.to] {
            if e.capacity.is_infinite() {
                return Err(format!("infinite edge {i} crosses the claimed cut"));
            }
            cut_capacity += e.capacity;
        }
    }
    for (v, &x) in excess.iter().enumerate() {
        let expected = if v == source {
            -value
        } else if v == sink {
            value
        } else {
            0.0
        };
        if (x - expected).abs() > tol {
            return Err(format!(
                "conservation violated at node {v}: excess {x}, expected {expected}"
            ));
        }
    }
    if (cut_capacity - value).abs() > tol {
        return Err(format!(
            "cut capacity {cut_capacity} does not equal flow value {value}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_flow::FlowNetwork;

    fn diamond() -> Vec<(usize, usize, f64)> {
        vec![(0, 1, 3.0), (1, 3, 3.0), (0, 2, 5.0), (2, 3, 5.0)]
    }

    #[test]
    fn reference_solves_the_diamond() {
        assert_eq!(reference_max_flow(4, &diamond(), 0, 3), 8.0);
    }

    #[test]
    fn reference_handles_disconnection_and_degenerate_terminals() {
        assert_eq!(reference_max_flow(3, &[(0, 1, 4.0)], 0, 2), 0.0);
        assert_eq!(reference_max_flow(3, &diamond()[..1].to_vec(), 0, 0), 0.0);
    }

    #[test]
    fn reference_reroutes_through_residual_arcs() {
        // The classic zig-zag: greedy down the middle must be undone.
        let edges = vec![
            (0, 1, 1.0),
            (0, 2, 1.0),
            (1, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
        ];
        assert_eq!(reference_max_flow(4, &edges, 0, 3), 2.0);
    }

    #[test]
    fn certificate_accepts_the_dinic_answer() {
        let mut net = FlowNetwork::new(4);
        for (u, v, c) in diamond() {
            net.add_edge(u, v, c);
        }
        let flow = net.max_flow(0, 3).unwrap();
        let side = net.min_cut_source_side(0);
        check_flow_certificate(&net.edges(), 0, 3, flow.value, &side).unwrap();
    }

    #[test]
    fn certificate_rejects_wrong_value_and_wrong_cut() {
        let mut net = FlowNetwork::new(4);
        for (u, v, c) in diamond() {
            net.add_edge(u, v, c);
        }
        let flow = net.max_flow(0, 3).unwrap();
        let side = net.min_cut_source_side(0);
        let edges = net.edges();
        assert!(check_flow_certificate(&edges, 0, 3, flow.value + 1.0, &side).is_err());
        let mut bad_side = side.clone();
        bad_side[3] = true; // sink crosses over
        assert!(check_flow_certificate(&edges, 0, 3, flow.value, &bad_side).is_err());
        assert!(check_flow_certificate(&edges, 3, 0, flow.value, &side).is_err());
    }

    #[test]
    fn certificate_rejects_infinite_cut_edges() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, f64::INFINITY);
        let flow = net.max_flow(0, 2).unwrap();
        assert_eq!(flow.value, 2.0);
        // The honest cut {0} severs the finite arc...
        check_flow_certificate(&net.edges(), 0, 2, 2.0, &[true, false, false]).unwrap();
        // ...but claiming {0, 1} puts the infinite arc in the cut.
        let err = check_flow_certificate(&net.edges(), 0, 2, 2.0, &[true, true, false]);
        assert!(err.unwrap_err().contains("infinite"));
    }
}
