//! An arena-allocated AVL tree with set semantics.
//!
//! The DAC-96 paper stores nodes "according to their gains, in a balanced
//! binary AVL tree" (§3.5), giving Θ(log n) per update and Θ(log n) to find
//! the best node to move. This is that structure: keys are inserted at most
//! once, traversal in descending order supports the balance-feasibility
//! scan, and all rebalancing follows the classic height-balanced rules.

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<K> {
    key: K,
    left: u32,
    right: u32,
    height: u8,
}

/// A height-balanced (AVL) binary search tree over unique keys.
///
/// ```
/// use prop_dstruct::AvlTree;
///
/// let mut t = AvlTree::new();
/// assert!(t.insert((3, 'a')));
/// assert!(t.insert((1, 'b')));
/// assert!(!t.insert((3, 'a'))); // duplicate
/// assert_eq!(t.max(), Some(&(3, 'a')));
/// assert!(t.remove(&(3, 'a')));
/// assert_eq!(t.max(), Some(&(1, 'b')));
/// ```
#[derive(Clone, Debug)]
pub struct AvlTree<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord> Default for AvlTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> AvlTree<K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        AvlTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Creates an empty tree with capacity for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        AvlTree {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of stored keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree stores no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all keys, retaining allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    fn height(&self, idx: u32) -> i32 {
        if idx == NIL {
            0
        } else {
            i32::from(self.nodes[idx as usize].height)
        }
    }

    fn fix_height(&mut self, idx: u32) {
        let h = 1 + self
            .height(self.nodes[idx as usize].left)
            .max(self.height(self.nodes[idx as usize].right));
        self.nodes[idx as usize].height = u8::try_from(h).expect("tree height exceeds u8");
    }

    fn balance_factor(&self, idx: u32) -> i32 {
        let n = &self.nodes[idx as usize];
        self.height(n.left) - self.height(n.right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.nodes[y as usize].left;
        let t2 = self.nodes[x as usize].right;
        self.nodes[x as usize].right = y;
        self.nodes[y as usize].left = t2;
        self.fix_height(y);
        self.fix_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.nodes[x as usize].right;
        let t2 = self.nodes[y as usize].left;
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].right = t2;
        self.fix_height(x);
        self.fix_height(y);
        y
    }

    fn rebalance(&mut self, idx: u32) -> u32 {
        self.fix_height(idx);
        let bf = self.balance_factor(idx);
        if bf > 1 {
            if self.balance_factor(self.nodes[idx as usize].left) < 0 {
                let l = self.nodes[idx as usize].left;
                self.nodes[idx as usize].left = self.rotate_left(l);
            }
            self.rotate_right(idx)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[idx as usize].right) > 0 {
                let r = self.nodes[idx as usize].right;
                self.nodes[idx as usize].right = self.rotate_right(r);
            }
            self.rotate_left(idx)
        } else {
            idx
        }
    }

    fn alloc(&mut self, key: K) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                key,
                left: NIL,
                right: NIL,
                height: 1,
            };
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("tree size exceeds u32::MAX");
            self.nodes.push(Node {
                key,
                left: NIL,
                right: NIL,
                height: 1,
            });
            idx
        }
    }

    /// Inserts `key`; returns `false` (leaving the tree unchanged) if an
    /// equal key is already present.
    pub fn insert(&mut self, key: K) -> bool {
        let (root, inserted) = self.insert_at(self.root, key);
        self.root = root;
        if inserted {
            self.len += 1;
        }
        inserted
    }

    fn insert_at(&mut self, idx: u32, key: K) -> (u32, bool) {
        if idx == NIL {
            return (self.alloc(key), true);
        }
        use std::cmp::Ordering::*;
        let inserted = match key.cmp(&self.nodes[idx as usize].key) {
            Less => {
                let (l, ins) = self.insert_at(self.nodes[idx as usize].left, key);
                self.nodes[idx as usize].left = l;
                ins
            }
            Greater => {
                let (r, ins) = self.insert_at(self.nodes[idx as usize].right, key);
                self.nodes[idx as usize].right = r;
                ins
            }
            Equal => return (idx, false),
        };
        if inserted {
            (self.rebalance(idx), true)
        } else {
            (idx, false)
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&mut self, key: &K) -> bool {
        let (root, removed) = self.remove_at(self.root, key);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, idx: u32, key: &K) -> (u32, bool) {
        if idx == NIL {
            return (NIL, false);
        }
        use std::cmp::Ordering::*;
        match key.cmp(&self.nodes[idx as usize].key) {
            Less => {
                let (l, rem) = self.remove_at(self.nodes[idx as usize].left, key);
                self.nodes[idx as usize].left = l;
                if rem {
                    (self.rebalance(idx), true)
                } else {
                    (idx, false)
                }
            }
            Greater => {
                let (r, rem) = self.remove_at(self.nodes[idx as usize].right, key);
                self.nodes[idx as usize].right = r;
                if rem {
                    (self.rebalance(idx), true)
                } else {
                    (idx, false)
                }
            }
            Equal => {
                let node = &self.nodes[idx as usize];
                let (left, right) = (node.left, node.right);
                let replacement = if left == NIL {
                    self.free.push(idx);
                    right
                } else if right == NIL {
                    self.free.push(idx);
                    left
                } else {
                    // Two children: pull up the in-order successor.
                    let (new_right, succ) = self.detach_min(right);
                    self.nodes[succ as usize].left = left;
                    self.nodes[succ as usize].right = new_right;
                    self.free.push(idx);
                    self.rebalance(succ)
                };
                (replacement, true)
            }
        }
    }

    /// Detaches the minimum node of the subtree at `idx`, returning the new
    /// subtree root and the detached node index.
    fn detach_min(&mut self, idx: u32) -> (u32, u32) {
        if self.nodes[idx as usize].left == NIL {
            return (self.nodes[idx as usize].right, idx);
        }
        let (new_left, min) = self.detach_min(self.nodes[idx as usize].left);
        self.nodes[idx as usize].left = new_left;
        (self.rebalance(idx), min)
    }

    /// Returns `true` if `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        let mut idx = self.root;
        while idx != NIL {
            use std::cmp::Ordering::*;
            match key.cmp(&self.nodes[idx as usize].key) {
                Less => idx = self.nodes[idx as usize].left,
                Greater => idx = self.nodes[idx as usize].right,
                Equal => return true,
            }
        }
        false
    }

    /// The largest stored key.
    pub fn max(&self) -> Option<&K> {
        let mut idx = self.root;
        if idx == NIL {
            return None;
        }
        while self.nodes[idx as usize].right != NIL {
            idx = self.nodes[idx as usize].right;
        }
        Some(&self.nodes[idx as usize].key)
    }

    /// The smallest stored key.
    pub fn min(&self) -> Option<&K> {
        let mut idx = self.root;
        if idx == NIL {
            return None;
        }
        while self.nodes[idx as usize].left != NIL {
            idx = self.nodes[idx as usize].left;
        }
        Some(&self.nodes[idx as usize].key)
    }

    /// In-order (ascending) iterator over the keys.
    pub fn iter(&self) -> Iter<'_, K> {
        let mut it = Iter {
            tree: self,
            stack: Vec::new(),
        };
        it.push_left(self.root);
        it
    }

    /// Reverse in-order (descending) iterator over the keys. This is the
    /// feasibility-scan order: best gain first.
    pub fn iter_desc(&self) -> IterDesc<'_, K> {
        let mut it = IterDesc {
            tree: self,
            stack: Vec::new(),
        };
        it.push_right(self.root);
        it
    }

    /// Validates AVL invariants (test support): returns the tree height or
    /// panics on a violation.
    #[doc(hidden)]
    pub fn validate(&self) -> usize
    where
        K: std::fmt::Debug,
    {
        fn walk<K: Ord + std::fmt::Debug>(tree: &AvlTree<K>, idx: u32) -> (i32, usize) {
            if idx == NIL {
                return (0, 0);
            }
            let node = &tree.nodes[idx as usize];
            let (lh, lc) = walk(tree, node.left);
            let (rh, rc) = walk(tree, node.right);
            assert!((lh - rh).abs() <= 1, "unbalanced at {:?}", node.key);
            assert_eq!(i32::from(node.height), 1 + lh.max(rh), "stale height");
            if node.left != NIL {
                assert!(tree.nodes[node.left as usize].key < node.key, "bst order");
            }
            if node.right != NIL {
                assert!(tree.nodes[node.right as usize].key > node.key, "bst order");
            }
            (1 + lh.max(rh), 1 + lc + rc)
        }
        let (h, count) = walk(self, self.root);
        assert_eq!(count, self.len, "len out of sync");
        h as usize
    }
}

/// Ascending iterator over an [`AvlTree`]. Created by [`AvlTree::iter`].
#[derive(Debug)]
pub struct Iter<'a, K> {
    tree: &'a AvlTree<K>,
    stack: Vec<u32>,
}

impl<'a, K: Ord> Iter<'a, K> {
    fn push_left(&mut self, mut idx: u32) {
        while idx != NIL {
            self.stack.push(idx);
            idx = self.tree.nodes[idx as usize].left;
        }
    }
}

impl<'a, K: Ord> Iterator for Iter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        let idx = self.stack.pop()?;
        let node = &self.tree.nodes[idx as usize];
        self.push_left(node.right);
        Some(&node.key)
    }
}

/// Descending iterator over an [`AvlTree`]. Created by
/// [`AvlTree::iter_desc`].
#[derive(Debug)]
pub struct IterDesc<'a, K> {
    tree: &'a AvlTree<K>,
    stack: Vec<u32>,
}

impl<'a, K: Ord> IterDesc<'a, K> {
    fn push_right(&mut self, mut idx: u32) {
        while idx != NIL {
            self.stack.push(idx);
            idx = self.tree.nodes[idx as usize].right;
        }
    }
}

impl<'a, K: Ord> Iterator for IterDesc<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        let idx = self.stack.pop()?;
        let node = &self.tree.nodes[idx as usize];
        self.push_right(node.left);
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn insert_and_order() {
        let mut t = AvlTree::new();
        for k in [5, 1, 9, 3, 7, 2, 8] {
            assert!(t.insert(k));
        }
        assert!(!t.insert(5));
        assert_eq!(t.len(), 7);
        let asc: Vec<i32> = t.iter().copied().collect();
        assert_eq!(asc, vec![1, 2, 3, 5, 7, 8, 9]);
        let desc: Vec<i32> = t.iter_desc().copied().collect();
        assert_eq!(desc, vec![9, 8, 7, 5, 3, 2, 1]);
        assert_eq!(t.max(), Some(&9));
        assert_eq!(t.min(), Some(&1));
        t.validate();
    }

    #[test]
    fn remove_all_patterns() {
        let mut t = AvlTree::new();
        for k in 0..32 {
            t.insert(k);
        }
        // Leaf, one-child, and two-child removals.
        for k in [31, 0, 16, 8, 24, 15] {
            assert!(t.remove(&k));
            t.validate();
        }
        assert!(!t.remove(&16));
        assert_eq!(t.len(), 26);
        assert!(!t.contains(&16));
        assert!(t.contains(&17));
    }

    #[test]
    fn sequential_insert_stays_logarithmic() {
        let mut t = AvlTree::new();
        for k in 0..1024 {
            t.insert(k);
        }
        let h = t.validate();
        // AVL height bound: < 1.44 log2(n + 2).
        assert!(h <= 15, "height {h} too large for 1024 keys");
    }

    #[test]
    fn empty_tree_queries() {
        let t: AvlTree<i32> = AvlTree::new();
        assert!(t.is_empty());
        assert_eq!(t.max(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.iter_desc().count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = AvlTree::with_capacity(8);
        t.insert(1);
        t.insert(2);
        t.clear();
        assert!(t.is_empty());
        assert!(t.insert(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tuple_keys_order_lexicographically() {
        // The partitioners key trees by (gain, node) pairs.
        let mut t = AvlTree::new();
        t.insert((2, 10));
        t.insert((2, 3));
        t.insert((5, 1));
        assert_eq!(t.max(), Some(&(5, 1)));
        t.remove(&(5, 1));
        assert_eq!(t.max(), Some(&(2, 10)));
    }

    #[test]
    fn randomized_against_btreeset() {
        let mut rng = StdRng::seed_from_u64(987);
        let mut t = AvlTree::new();
        let mut model = BTreeSet::new();
        for step in 0..20_000 {
            let k = rng.gen_range(0..256u32);
            if rng.gen_bool(0.55) {
                assert_eq!(t.insert(k), model.insert(k));
            } else {
                assert_eq!(t.remove(&k), model.remove(&k));
            }
            if step % 1000 == 0 {
                t.validate();
                assert_eq!(t.max(), model.iter().next_back());
                assert_eq!(t.min(), model.iter().next());
                let mine: Vec<u32> = t.iter().copied().collect();
                let theirs: Vec<u32> = model.iter().copied().collect();
                assert_eq!(mine, theirs);
            }
        }
        t.validate();
        let mine: Vec<u32> = t.iter_desc().copied().collect();
        let theirs: Vec<u32> = model.iter().rev().copied().collect();
        assert_eq!(mine, theirs);
    }
}
