//! A totally ordered wrapper for finite `f64` values.

use std::cmp::Ordering;
use std::fmt;

/// A finite `f64` with a total order, usable as a search-tree key.
///
/// Construction rejects NaN (and by policy any non-finite value), so the
/// `Ord` implementation is sound. Gains in this suite are always finite:
/// they are sums of products of probabilities in `[0, 1]` scaled by finite
/// net weights.
///
/// ```
/// use prop_dstruct::OrderedF64;
///
/// let a = OrderedF64::new(1.5);
/// let b = OrderedF64::new(-0.25);
/// assert!(a > b);
/// assert_eq!(a.get(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite — a gain computation bug
    /// upstream, which must not be silently ordered.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "gain value {value} is not finite");
        OrderedF64(value)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite-only invariant makes partial_cmp total.
        self.0.partial_cmp(&other.0).expect("finite by construction")
    }
}

impl From<OrderedF64> for f64 {
    #[inline]
    fn from(v: OrderedF64) -> f64 {
        v.get()
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let mut v = vec![
            OrderedF64::new(0.5),
            OrderedF64::new(-3.0),
            OrderedF64::new(2.0),
            OrderedF64::new(0.0),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(raw, vec![-3.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(OrderedF64::new(-0.0), OrderedF64::new(0.0));
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn nan_rejected() {
        let _ = OrderedF64::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn infinity_rejected() {
        let _ = OrderedF64::new(f64::INFINITY);
    }

    #[test]
    fn display_matches_f64() {
        assert_eq!(OrderedF64::new(1.25).to_string(), "1.25");
    }
}
