//! Indexed max-heap: an ordered gain store with *eager* deletion.
//!
//! The lazy-deletion heap ([`crate::LazyMaxHeap`]) makes repositioning a
//! node cheap by leaving the superseded entry behind as garbage — a good
//! trade as long as every query path is a pop that happens to sweep the
//! garbage out. It breaks down the moment a hot query wants to *read*
//! the top of the order without popping (PROP's §3.4 top-k refresh runs
//! per move): dead entries then pile up exactly where the read happens,
//! and either the read wades through them or the caller pays `2k`
//! full-depth sifts per move to pop-and-restore.
//!
//! This heap removes the garbage instead of skipping it. A position map
//! (`id → slot`) makes every entry addressable, so supersession is a
//! single in-place key change followed by one sift, and removal is a
//! swap-with-last plus one sift. Every entry is live by construction,
//! which is what makes [`descend`] — a read-only best-first walk over
//! the array — cheap enough to serve both the top-k refresh and the
//! balance-feasibility probe of move selection.
//!
//! ```
//! use prop_dstruct::IndexedMaxHeap;
//!
//! let mut h = IndexedMaxHeap::with_ids(3);
//! h.insert(0, 5);
//! h.insert(1, 9);
//! h.update(1, 7); // one sift, no garbage left behind
//! assert_eq!(h.peek(), Some((7, 1)));
//! assert_eq!(h.remove(1), Some(7));
//! assert_eq!(h.peek(), Some((5, 0)));
//! ```
//!
//! [`descend`]: IndexedMaxHeap::descend

const NONE: u32 = u32::MAX;

/// A binary max-heap over `Copy + Ord` keys, addressable by a dense
/// `usize` id, with eager removal. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct IndexedMaxHeap<K> {
    /// `(key, id)` pairs in heap order.
    entries: Vec<(K, u32)>,
    /// `id → index into entries`, or [`NONE`].
    pos: Vec<u32>,
    /// Reusable index frontier for [`IndexedMaxHeap::descend`].
    frontier: Vec<usize>,
}

impl<K: Copy + Ord> IndexedMaxHeap<K> {
    /// Creates an empty heap addressable by ids `0..n`.
    pub fn with_ids(n: usize) -> Self {
        IndexedMaxHeap {
            entries: Vec::with_capacity(n),
            pos: vec![NONE; n],
            frontier: Vec::new(),
        }
    }

    /// Number of stored entries (all of them live).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry, retaining the allocations.
    pub fn clear(&mut self) {
        for &(_, id) in &self.entries {
            self.pos[id as usize] = NONE;
        }
        self.entries.clear();
    }

    /// Returns `true` when `id` currently has an entry.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.pos.get(id).is_some_and(|&p| p != NONE)
    }

    /// The stored key of `id`, if present.
    pub fn key_of(&self, id: usize) -> Option<K> {
        match self.pos.get(id) {
            Some(&p) if p != NONE => Some(self.entries[p as usize].0),
            _ => None,
        }
    }

    /// Inserts a new entry for `id`. The id must not already be present
    /// (debug-asserted) and must be below the `with_ids` bound.
    pub fn insert(&mut self, id: usize, key: K) {
        debug_assert!(!self.contains(id), "insert of an id already present");
        let i = self.entries.len();
        self.entries.push((key, id as u32));
        self.pos[id] = i as u32;
        self.sift_up(i);
    }

    /// Replaces the key of a present `id` (debug-asserted) and restores
    /// heap order with a single sift in whichever direction the new key
    /// moved.
    pub fn update(&mut self, id: usize, key: K) {
        let i = self.pos[id] as usize;
        debug_assert!(self.pos[id] != NONE, "update of an id not present");
        let old = self.entries[i].0;
        self.entries[i].0 = key;
        if key > old {
            self.sift_up(i);
        } else if key < old {
            self.sift_down(i);
        }
    }

    /// Removes `id`'s entry and returns its key; `None` when absent.
    pub fn remove(&mut self, id: usize) -> Option<K> {
        let p = *self.pos.get(id)?;
        if p == NONE {
            return None;
        }
        let i = p as usize;
        let key = self.entries[i].0;
        self.pos[id] = NONE;
        let last = self.entries.len() - 1;
        if i != last {
            self.entries.swap(i, last);
            self.pos[self.entries[i].1 as usize] = i as u32;
        }
        self.entries.pop();
        if i < self.entries.len() {
            self.sift_up(i);
            self.sift_down(i);
        }
        Some(key)
    }

    /// The maximum entry as `(key, id)`, without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(K, usize)> {
        self.entries.first().map(|&(k, id)| (k, id as usize))
    }

    /// Visits entries in exact descending key order, read-only, for as
    /// long as `visit` returns `true`. Works a max-first frontier of
    /// array indices down from the root: when an index surfaces, its key
    /// is the largest among everything not yet visited (children are
    /// never larger than parents), so no sorting or mutation is needed.
    /// Visiting `k` entries costs O(k²) frontier scans over at most
    /// `k + 1` candidates — for the small `k` of a top-k refresh or a
    /// feasibility probe this is far cheaper than popping and restoring.
    pub fn descend(&mut self, mut visit: impl FnMut(K, usize) -> bool) {
        self.frontier.clear();
        if self.entries.is_empty() {
            return;
        }
        self.frontier.push(0);
        while !self.frontier.is_empty() {
            let mut best = 0;
            for i in 1..self.frontier.len() {
                if self.entries[self.frontier[i]].0 > self.entries[self.frontier[best]].0 {
                    best = i;
                }
            }
            let idx = self.frontier.swap_remove(best);
            let (key, id) = self.entries[idx];
            if !visit(key, id as usize) {
                return;
            }
            for child in [2 * idx + 1, 2 * idx + 2] {
                if child < self.entries.len() {
                    self.frontier.push(child);
                }
            }
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].0 <= self.entries[parent].0 {
                break;
            }
            self.swap_slots(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < len && self.entries[l].0 > self.entries[largest].0 {
                largest = l;
            }
            if r < len && self.entries[r].0 > self.entries[largest].0 {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.swap_slots(i, largest);
            i = largest;
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.entries.swap(a, b);
        self.pos[self.entries[a].1 as usize] = a as u32;
        self.pos[self.entries[b].1 as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn insert_peek_remove_roundtrip() {
        let mut h = IndexedMaxHeap::with_ids(8);
        for (id, k) in [(0, 3), (1, 9), (2, 1), (3, 7)] {
            h.insert(id, k);
        }
        assert_eq!(h.len(), 4);
        assert!(h.contains(1));
        assert_eq!(h.key_of(1), Some(9));
        assert_eq!(h.peek(), Some((9, 1)));
        assert_eq!(h.remove(1), Some(9));
        assert_eq!(h.peek(), Some((7, 3)));
        assert_eq!(h.remove(1), None);
        assert!(!h.contains(1));
        assert_eq!(h.key_of(1), None);
    }

    #[test]
    fn update_moves_both_directions() {
        let mut h = IndexedMaxHeap::with_ids(4);
        for (id, k) in [(0, 10), (1, 20), (2, 30), (3, 40)] {
            h.insert(id, k);
        }
        h.update(3, 5); // shrink the max: sifts down
        assert_eq!(h.peek(), Some((30, 2)));
        h.update(0, 99); // grow a leaf: sifts up
        assert_eq!(h.peek(), Some((99, 0)));
    }

    #[test]
    fn descend_yields_exact_descending_order() {
        let mut h = IndexedMaxHeap::with_ids(16);
        for (id, k) in [(0, 3), (1, 9), (2, 1), (3, 7), (4, 5), (5, 8)] {
            h.insert(id, k);
        }
        let mut out = Vec::new();
        h.descend(|k, _| {
            out.push(k);
            true
        });
        assert_eq!(out, vec![9, 8, 7, 5, 3, 1]);
        // Early exit after two entries.
        out.clear();
        h.descend(|k, _| {
            out.push(k);
            out.len() < 2
        });
        assert_eq!(out, vec![9, 8]);
        // Read-only: nothing changed.
        assert_eq!(h.len(), 6);
        assert_eq!(h.peek(), Some((9, 1)));
    }

    #[test]
    fn clear_resets_positions() {
        let mut h = IndexedMaxHeap::with_ids(4);
        h.insert(0, 1);
        h.insert(1, 2);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0));
        h.insert(0, 5); // reusable after clear
        assert_eq!(h.peek(), Some((5, 0)));
    }

    /// The PROP usage pattern — interleaved inserts, repositions, and
    /// removals — must agree with an ordered-set model at every step.
    #[test]
    fn randomized_ops_match_ordered_model() {
        let mut rng = StdRng::seed_from_u64(4096);
        let mut h: IndexedMaxHeap<(u64, u32)> = IndexedMaxHeap::with_ids(64);
        let mut current: Vec<Option<u64>> = vec![None; 64];
        let mut stamp = 0u64;
        for round in 0..5_000 {
            let id = rng.gen_range(0..64usize);
            stamp += 1;
            if rng.gen_bool(0.7) {
                let key = (stamp, id as u32);
                if current[id].is_some() {
                    h.update(id, key);
                } else {
                    h.insert(id, key);
                }
                current[id] = Some(stamp);
            } else {
                assert_eq!(
                    h.remove(id),
                    current[id].map(|s| (s, id as u32)),
                    "remove disagrees with model"
                );
                current[id] = None;
            }
            if round % 100 == 0 {
                let model: BTreeSet<(u64, u32)> = current
                    .iter()
                    .enumerate()
                    .filter_map(|(v, s)| s.map(|s| (s, v as u32)))
                    .collect();
                assert_eq!(h.peek(), model.iter().next_back().map(|&k| (k, k.1 as usize)));
                assert_eq!(h.len(), model.len());
                // Full descending walk equals the model ordering.
                let mut out = Vec::new();
                h.descend(|k, _| {
                    out.push(k);
                    true
                });
                let expect: Vec<(u64, u32)> = model.iter().rev().copied().collect();
                assert_eq!(out, expect);
            }
        }
    }
}
