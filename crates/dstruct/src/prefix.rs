//! Pass bookkeeping: immediate gains and the best committed prefix.

/// Outcome of a pass: how many tentative moves to commit and the total cut
/// improvement they realise.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BestPrefix {
    /// Number of leading moves to commit (may be 0).
    pub moves: usize,
    /// Sum of immediate gains over the committed prefix.
    pub gain: f64,
}

/// Records the immediate gain of each tentative move in a pass and selects
/// the prefix with the maximum cumulative gain among prefixes whose end
/// state is balance-feasible.
///
/// FM, LA, and PROP all share this mechanism: every node is (virtually)
/// moved once, then only the first `p` moves — where the running sum of
/// immediate gains peaks — are actually applied (§2 and step 9–10 of
/// Fig. 2 in the paper).
///
/// ```
/// use prop_dstruct::PrefixTracker;
///
/// let mut t = PrefixTracker::new();
/// t.push(2.0, true);
/// t.push(-1.0, true);
/// t.push(3.0, true);  // cumulative 4.0 — the peak
/// t.push(-2.0, true);
/// let best = t.best().expect("positive prefix exists");
/// assert_eq!(best.moves, 3);
/// assert_eq!(best.gain, 4.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PrefixTracker {
    gains: Vec<f64>,
    feasible: Vec<bool>,
}

impl PrefixTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tracker with capacity for `n` moves.
    pub fn with_capacity(n: usize) -> Self {
        PrefixTracker {
            gains: Vec::with_capacity(n),
            feasible: Vec::with_capacity(n),
        }
    }

    /// Records one tentative move: its immediate cut gain and whether the
    /// partition state *after* the move satisfies the strict balance
    /// constraint (an infeasible end state may not be committed, but the
    /// pass may still pass through it).
    pub fn push(&mut self, gain: f64, feasible: bool) {
        self.gains.push(gain);
        self.feasible.push(feasible);
    }

    /// Number of recorded moves.
    pub fn len(&self) -> usize {
        self.gains.len()
    }

    /// Returns `true` if no moves are recorded.
    pub fn is_empty(&self) -> bool {
        self.gains.is_empty()
    }

    /// Clears the tracker for the next pass, retaining allocation.
    pub fn clear(&mut self) {
        self.gains.clear();
        self.feasible.clear();
    }

    /// The immediate gains recorded so far.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// The per-move feasibility flags recorded so far, parallel to
    /// [`PrefixTracker::gains`]. Exposed so external auditors can rerun
    /// the best-prefix selection against a naive scan.
    pub fn feasibility(&self) -> &[bool] {
        &self.feasible
    }

    /// The best strictly positive, feasible prefix, or `None` when every
    /// feasible prefix has non-positive cumulative gain (the pass failed to
    /// improve and the partitioner should stop).
    ///
    /// Among prefixes with equal cumulative gain the shortest is chosen, so
    /// no zero-gain suffix is committed.
    pub fn best(&self) -> Option<BestPrefix> {
        let mut sum = 0.0;
        let mut best: Option<BestPrefix> = None;
        for (i, (&g, &ok)) in self.gains.iter().zip(&self.feasible).enumerate() {
            sum += g;
            if !ok {
                continue;
            }
            let better = match best {
                None => sum > 0.0,
                Some(b) => sum > b.gain,
            };
            if better {
                best = Some(BestPrefix {
                    moves: i + 1,
                    gain: sum,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_best() {
        assert_eq!(PrefixTracker::new().best(), None);
    }

    #[test]
    fn all_negative_has_no_best() {
        let mut t = PrefixTracker::new();
        t.push(-1.0, true);
        t.push(-0.5, true);
        assert_eq!(t.best(), None);
    }

    #[test]
    fn zero_total_is_not_committed() {
        let mut t = PrefixTracker::new();
        t.push(1.0, true);
        t.push(-1.0, true);
        // The peak is after move 1 with gain 1.0, not the zero total.
        let best = t.best().unwrap();
        assert_eq!(best.moves, 1);
        assert_eq!(best.gain, 1.0);
    }

    #[test]
    fn pure_zero_gain_pass_terminates() {
        let mut t = PrefixTracker::new();
        t.push(0.0, true);
        t.push(0.0, true);
        assert_eq!(t.best(), None);
    }

    #[test]
    fn infeasible_peak_is_skipped() {
        let mut t = PrefixTracker::new();
        t.push(5.0, false); // best sum but infeasible end state
        t.push(-1.0, true);
        let best = t.best().unwrap();
        assert_eq!(best.moves, 2);
        assert_eq!(best.gain, 4.0);
    }

    #[test]
    fn all_infeasible_has_no_best() {
        let mut t = PrefixTracker::new();
        t.push(3.0, false);
        t.push(2.0, false);
        assert_eq!(t.best(), None);
    }

    #[test]
    fn ties_prefer_shorter_prefix() {
        let mut t = PrefixTracker::new();
        t.push(2.0, true);
        t.push(0.0, true);
        t.push(0.0, true);
        let best = t.best().unwrap();
        assert_eq!(best.moves, 1);
    }

    #[test]
    fn clear_retains_reuse() {
        let mut t = PrefixTracker::with_capacity(4);
        t.push(1.0, true);
        t.clear();
        assert!(t.is_empty());
        t.push(2.0, true);
        assert_eq!(t.best().unwrap().gain, 2.0);
        assert_eq!(t.gains(), &[2.0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn feasibility_parallels_gains() {
        let mut t = PrefixTracker::new();
        t.push(1.0, true);
        t.push(-2.0, false);
        assert_eq!(t.feasibility(), &[true, false]);
        assert_eq!(t.gains().len(), t.feasibility().len());
    }
}
