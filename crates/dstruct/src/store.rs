//! Lazy-deletion max-heap: the cheap half of the ordered-gain-store pair.
//!
//! The PROP move phase repositions a node in its ordered gain container on
//! every §3.4 refresh — tens of container updates per move. A balanced
//! search tree ([`crate::AvlTree`]) pays two pointer-chasing O(log n)
//! passes (remove + insert) per reposition; this heap pays a single
//! contiguous sift-up `push` and defers the deletion: superseded entries
//! simply stay in the array until they surface at the top, where the
//! caller's *liveness predicate* identifies and discards them.
//!
//! The caller owns the notion of liveness (for PROP: "this key carries the
//! node's current recency stamp and the node is unlocked"), so the heap
//! itself stays a plain priority queue over `Ord` keys. Every query method
//! takes the predicate and pops dead entries on the way — each dead entry
//! is popped at most once, so the churn amortises to O(log n) per update,
//! with far better constants than tree rebalancing on scattered nodes.
//!
//! ```
//! use prop_dstruct::LazyMaxHeap;
//!
//! let mut h = LazyMaxHeap::new();
//! h.push((5, 'a'));
//! h.push((9, 'b'));
//! h.push((7, 'b')); // supersedes (9, 'b'): the caller's map says so
//! let live = |k: &(i32, char)| k.1 != 'b' || k.0 == 7;
//! assert_eq!(h.peek_live(live), Some((7, 'b')));
//! assert_eq!(h.pop_live(live), Some((7, 'b')));
//! assert_eq!(h.pop_live(live), Some((5, 'a')));
//! assert_eq!(h.pop_live(live), None);
//! ```

/// A binary max-heap over `Copy + Ord` keys with caller-driven lazy
/// deletion. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct LazyMaxHeap<K> {
    heap: Vec<K>,
    /// Reusable index frontier for [`top_k_live`] — kept on the struct so
    /// repeated queries allocate nothing.
    ///
    /// [`top_k_live`]: LazyMaxHeap::top_k_live
    frontier: Vec<usize>,
}

impl<K: Copy + Ord> LazyMaxHeap<K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        LazyMaxHeap {
            heap: Vec::new(),
            frontier: Vec::new(),
        }
    }

    /// Creates an empty heap with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        LazyMaxHeap {
            heap: Vec::with_capacity(capacity),
            frontier: Vec::new(),
        }
    }

    /// Number of stored entries, live and dead.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no entries are stored (dead or live).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every entry, retaining the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drops every dead entry and restores the heap property over the
    /// survivors — O(len) retain plus O(live) heapify. Callers invoke this
    /// when the dead fraction grows large enough that query sift-downs
    /// over the bloated array outweigh a rebuild; the live set (and hence
    /// every future query result) is unchanged.
    pub fn compact(&mut self, mut is_live: impl FnMut(&K) -> bool) {
        self.heap.retain(|k| is_live(k));
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Inserts `key`. Duplicates are allowed — a stale predecessor is
    /// discarded whenever it reaches the top of a query.
    #[inline]
    pub fn push(&mut self, key: K) {
        self.heap.push(key);
        self.sift_up(self.heap.len() - 1);
    }

    /// Discards dead entries off the top until the maximum live key
    /// surfaces, and returns it without removing it. `None` when every
    /// entry is dead (the heap is drained of them as a side effect).
    pub fn peek_live(&mut self, mut is_live: impl FnMut(&K) -> bool) -> Option<K> {
        while let Some(top) = self.heap.first() {
            if is_live(top) {
                return Some(*top);
            }
            self.pop_top();
        }
        None
    }

    /// Emits the `k` largest live keys in descending order *without*
    /// modifying the heap — the read-only counterpart of popping `k`
    /// live keys and pushing them back, minus the `2k` full-depth sifts
    /// that round trip costs.
    ///
    /// Works a max-first frontier of array indices down from the root:
    /// when an index surfaces, its key is the largest among everything
    /// not yet visited (children are never larger than parents), so live
    /// keys surface in exact descending order. Dead entries are passed
    /// through — children still visited, nothing emitted — and stay in
    /// the array for a later query pop or [`compact`] to reclaim.
    ///
    /// [`compact`]: LazyMaxHeap::compact
    pub fn top_k_live(
        &mut self,
        k: usize,
        mut is_live: impl FnMut(&K) -> bool,
        mut emit: impl FnMut(K),
    ) {
        self.frontier.clear();
        if k == 0 || self.heap.is_empty() {
            return;
        }
        self.frontier.push(0);
        let mut emitted = 0;
        while emitted < k && !self.frontier.is_empty() {
            // The frontier stays tiny (one net entry per visited index):
            // a linear argmax scan beats nesting another heap.
            let mut best = 0;
            for i in 1..self.frontier.len() {
                if self.heap[self.frontier[i]] > self.heap[self.frontier[best]] {
                    best = i;
                }
            }
            let idx = self.frontier.swap_remove(best);
            let key = self.heap[idx];
            if is_live(&key) {
                emit(key);
                emitted += 1;
            }
            for child in [2 * idx + 1, 2 * idx + 2] {
                if child < self.heap.len() {
                    self.frontier.push(child);
                }
            }
        }
    }

    /// Like [`peek_live`], but removes and returns the maximum live key.
    ///
    /// [`peek_live`]: LazyMaxHeap::peek_live
    pub fn pop_live(&mut self, is_live: impl FnMut(&K) -> bool) -> Option<K> {
        let top = self.peek_live(is_live)?;
        self.pop_top();
        Some(top)
    }

    fn pop_top(&mut self) -> Option<K> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let top = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        top
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] <= self.heap[parent] {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < len && self.heap[l] > self.heap[largest] {
                largest = l;
            }
            if r < len && self.heap[r] > self.heap[largest] {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn push_pop_descending() {
        let mut h = LazyMaxHeap::new();
        for k in [3, 9, 1, 7, 5] {
            h.push(k);
        }
        let mut out = Vec::new();
        while let Some(k) = h.pop_live(|_| true) {
            out.push(k);
        }
        assert_eq!(out, vec![9, 7, 5, 3, 1]);
        assert!(h.is_empty());
    }

    #[test]
    fn dead_entries_are_skipped_and_drained() {
        let mut h = LazyMaxHeap::new();
        for k in 0..10 {
            h.push(k);
        }
        // Everything above 4 is dead.
        assert_eq!(h.peek_live(|&k| k <= 4), Some(4));
        // The five dead entries were drained by the peek.
        assert_eq!(h.len(), 5);
        assert_eq!(h.pop_live(|&k| k <= 4), Some(4));
        assert_eq!(h.pop_live(|&k| k <= 2), Some(2)); // 3 died in the meantime
        assert_eq!(h.pop_live(|_| false), None);
        assert!(h.is_empty());
    }

    #[test]
    fn compact_drops_dead_and_preserves_order() {
        let mut h = LazyMaxHeap::new();
        for k in 0..100 {
            h.push(k);
        }
        h.compact(|&k| k % 3 == 0);
        assert_eq!(h.len(), 34);
        let mut out = Vec::new();
        while let Some(k) = h.pop_live(|&k| k % 3 == 0) {
            out.push(k);
        }
        let expect: Vec<i32> = (0..100).rev().filter(|k| k % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn top_k_live_descends_without_mutating() {
        let mut h = LazyMaxHeap::new();
        for k in [3, 9, 1, 7, 5, 8, 2] {
            h.push(k);
        }
        let mut out = Vec::new();
        // 8 and 2 are dead: passed through, never emitted, never removed.
        h.top_k_live(3, |&k| k != 8 && k != 2, |k| out.push(k));
        assert_eq!(out, vec![9, 7, 5]);
        assert_eq!(h.len(), 7);
        // k larger than the live population drains the order exactly.
        out.clear();
        h.top_k_live(100, |&k| k != 8 && k != 2, |k| out.push(k));
        assert_eq!(out, vec![9, 7, 5, 3, 1]);
        // k = 0 emits nothing.
        h.top_k_live(0, |_| true, |_| panic!("emitted with k = 0"));
    }

    #[test]
    fn randomized_top_k_matches_sorted_model() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut h: LazyMaxHeap<(u64, u32)> = LazyMaxHeap::new();
        let mut current: Vec<Option<u64>> = vec![None; 48];
        let mut stamp = 0u64;
        for round in 0..2_000 {
            let node = rng.gen_range(0..48u32);
            stamp += 1;
            if rng.gen_bool(0.85) {
                current[node as usize] = Some(stamp);
                h.push((stamp, node));
            } else {
                current[node as usize] = None;
            }
            if round % 50 == 0 {
                let k = rng.gen_range(0..8);
                let mut model: Vec<(u64, u32)> = current
                    .iter()
                    .enumerate()
                    .filter_map(|(v, s)| s.map(|s| (s, v as u32)))
                    .collect();
                model.sort_unstable_by(|a, b| b.cmp(a));
                model.truncate(k);
                let mut out = Vec::new();
                let len_before = h.len();
                h.top_k_live(
                    k,
                    |key| current[key.1 as usize] == Some(key.0),
                    |key| out.push(key),
                );
                assert_eq!(out, model);
                assert_eq!(h.len(), len_before);
            }
        }
    }

    #[test]
    fn clear_retains_capacity_and_resets() {
        let mut h = LazyMaxHeap::with_capacity(16);
        h.push(1);
        h.push(2);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop_live(|_| true), None);
        h.push(7);
        assert_eq!(h.peek_live(|_| true), Some(7));
    }

    /// The PROP usage pattern: a node's current key is tracked in an
    /// external map; pushes supersede, liveness is "matches the map".
    /// Popping live keys in order must equal the map's descending order —
    /// exactly what the AVL tree would produce.
    #[test]
    fn randomized_reposition_matches_ordered_model() {
        let mut rng = StdRng::seed_from_u64(2024);
        let mut h: LazyMaxHeap<(u64, u32)> = LazyMaxHeap::new();
        let mut current: Vec<Option<u64>> = vec![None; 64];
        let mut stamp = 0u64;
        for _ in 0..5_000 {
            let node = rng.gen_range(0..64u32);
            if rng.gen_bool(0.8) {
                // (Re)position: new stamped key supersedes the old.
                stamp += 1;
                current[node as usize] = Some(stamp);
                h.push((stamp, node));
            } else {
                // Delete: no heap operation at all.
                current[node as usize] = None;
            }
            if rng.gen_bool(0.1) {
                let model: BTreeSet<(u64, u32)> = current
                    .iter()
                    .enumerate()
                    .filter_map(|(v, s)| s.map(|s| (s, v as u32)))
                    .collect();
                let live =
                    |k: &(u64, u32)| current[k.1 as usize] == Some(k.0);
                assert_eq!(h.peek_live(live), model.iter().next_back().copied());
            }
        }
        // Full drain agrees with the model ordering.
        let model: Vec<(u64, u32)> = current
            .iter()
            .enumerate()
            .filter_map(|(v, s)| s.map(|s| (s, v as u32)))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .rev()
            .collect();
        let mut out = Vec::new();
        while let Some(k) = h.pop_live(|k| current[k.1 as usize] == Some(k.0)) {
            out.push(k);
        }
        assert_eq!(out, model);
    }
}
