//! The Fiduccia–Mattheyses gain bucket structure.

const NIL: u32 = u32::MAX;

/// A gain bucket array over items `0..capacity` with integral gains in
/// `[-max_abs_gain, +max_abs_gain]`.
///
/// Each bucket is an intrusive doubly-linked list, so insert, remove, and
/// gain update are O(1); finding the maximum non-empty bucket is amortised
/// O(1) over a pass because the max pointer only moves down between
/// insertions (the standard FM argument). Items within a bucket are served
/// LIFO, which is the tie-breaking rule of the original FM implementation.
///
/// ```
/// use prop_dstruct::BucketList;
///
/// let mut b = BucketList::new(4, 10);
/// b.insert(0, 3);
/// b.insert(1, -2);
/// b.insert(2, 3);
/// assert_eq!(b.max_gain(), Some(3));
/// assert_eq!(b.peek_max(), Some(2)); // LIFO within the gain-3 bucket
/// b.remove(2);
/// assert_eq!(b.peek_max(), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct BucketList {
    max_abs_gain: i64,
    /// Head item of each bucket; index = gain + max_abs_gain.
    heads: Vec<u32>,
    prev: Vec<u32>,
    next: Vec<u32>,
    gain: Vec<i64>,
    present: Vec<bool>,
    /// Upper bound on the highest non-empty bucket index.
    max_bucket: usize,
    len: usize,
}

impl BucketList {
    /// Creates an empty bucket list for items `0..capacity` and gains with
    /// absolute value at most `max_abs_gain`.
    ///
    /// # Panics
    ///
    /// Panics if `max_abs_gain < 0`.
    pub fn new(capacity: usize, max_abs_gain: i64) -> Self {
        assert!(max_abs_gain >= 0, "max_abs_gain must be non-negative");
        let buckets = 2 * max_abs_gain as usize + 1;
        BucketList {
            max_abs_gain,
            heads: vec![NIL; buckets],
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            gain: vec![0; capacity],
            present: vec![false; capacity],
            max_bucket: 0,
            len: 0,
        }
    }

    /// Number of items currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The item capacity this list was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.present.len()
    }

    /// The gain bound this list was created with.
    #[inline]
    pub fn max_abs_gain(&self) -> i64 {
        self.max_abs_gain
    }

    /// Returns `true` if no items are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `item` is currently stored.
    #[inline]
    pub fn contains(&self, item: usize) -> bool {
        self.present[item]
    }

    /// The current gain of `item`, if stored.
    #[inline]
    pub fn gain_of(&self, item: usize) -> Option<i64> {
        self.present[item].then(|| self.gain[item])
    }

    #[inline]
    fn bucket_of(&self, gain: i64) -> usize {
        debug_assert!(gain.abs() <= self.max_abs_gain);
        (gain + self.max_abs_gain) as usize
    }

    /// Inserts `item` with the given gain.
    ///
    /// # Panics
    ///
    /// Panics if the item is already present, out of range, or the gain's
    /// magnitude exceeds `max_abs_gain`.
    pub fn insert(&mut self, item: usize, gain: i64) {
        assert!(!self.present[item], "item {item} already in bucket list");
        assert!(
            gain.abs() <= self.max_abs_gain,
            "gain {gain} exceeds bound {}",
            self.max_abs_gain
        );
        let b = self.bucket_of(gain);
        let head = self.heads[b];
        self.next[item] = head;
        self.prev[item] = NIL;
        if head != NIL {
            self.prev[head as usize] = item as u32;
        }
        self.heads[b] = item as u32;
        self.gain[item] = gain;
        self.present[item] = true;
        self.len += 1;
        if b > self.max_bucket {
            self.max_bucket = b;
        }
    }

    /// Removes `item`. Returns `true` if it was present.
    pub fn remove(&mut self, item: usize) -> bool {
        if !self.present[item] {
            return false;
        }
        let b = self.bucket_of(self.gain[item]);
        let (p, nx) = (self.prev[item], self.next[item]);
        if p != NIL {
            self.next[p as usize] = nx;
        } else {
            self.heads[b] = nx;
        }
        if nx != NIL {
            self.prev[nx as usize] = p;
        }
        self.present[item] = false;
        self.len -= 1;
        true
    }

    /// Moves `item` to a new gain bucket (it must be present).
    ///
    /// # Panics
    ///
    /// Panics if `item` is not present or the gain is out of range.
    pub fn update(&mut self, item: usize, gain: i64) {
        assert!(self.present[item], "item {item} not in bucket list");
        self.remove(item);
        self.insert(item, gain);
    }

    /// The highest gain of any stored item.
    pub fn max_gain(&mut self) -> Option<i64> {
        if self.len == 0 {
            return None;
        }
        while self.heads[self.max_bucket] == NIL {
            debug_assert!(self.max_bucket > 0, "len > 0 guarantees a non-empty bucket");
            self.max_bucket -= 1;
        }
        Some(self.max_bucket as i64 - self.max_abs_gain)
    }

    /// The item at the head of the highest non-empty bucket (LIFO order).
    pub fn peek_max(&mut self) -> Option<usize> {
        self.max_gain()?;
        Some(self.heads[self.max_bucket] as usize)
    }

    /// Iterates stored `(item, gain)` pairs in non-increasing gain order
    /// (LIFO within each bucket). Used for feasibility scans: the first
    /// item satisfying the balance constraint is the one to move.
    pub fn iter_desc(&self) -> IterDesc<'_> {
        IterDesc {
            list: self,
            bucket: self.heads.len(),
            cursor: NIL,
        }
    }
}

/// Descending-gain iterator over a [`BucketList`].
///
/// Created by [`BucketList::iter_desc`].
#[derive(Debug)]
pub struct IterDesc<'a> {
    list: &'a BucketList,
    /// One past the current bucket (counts down).
    bucket: usize,
    cursor: u32,
}

impl<'a> Iterator for IterDesc<'a> {
    type Item = (usize, i64);

    fn next(&mut self) -> Option<(usize, i64)> {
        loop {
            if self.cursor != NIL {
                let item = self.cursor as usize;
                self.cursor = self.list.next[item];
                return Some((item, self.list.gain[item]));
            }
            if self.bucket == 0 {
                return None;
            }
            self.bucket -= 1;
            self.cursor = self.list.heads[self.bucket];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn insert_remove_basics() {
        let mut b = BucketList::new(3, 5);
        assert!(b.is_empty());
        b.insert(0, 2);
        b.insert(1, -5);
        b.insert(2, 5);
        assert_eq!(b.len(), 3);
        assert_eq!(b.max_gain(), Some(5));
        assert_eq!(b.gain_of(1), Some(-5));
        assert!(b.remove(2));
        assert!(!b.remove(2));
        assert_eq!(b.max_gain(), Some(2));
        assert_eq!(b.gain_of(2), None);
    }

    #[test]
    fn lifo_within_bucket() {
        let mut b = BucketList::new(4, 3);
        b.insert(0, 1);
        b.insert(1, 1);
        b.insert(2, 1);
        assert_eq!(b.peek_max(), Some(2));
        b.remove(2);
        assert_eq!(b.peek_max(), Some(1));
        // Re-inserting puts the node back at the head.
        b.insert(3, 1);
        assert_eq!(b.peek_max(), Some(3));
    }

    #[test]
    fn update_moves_buckets() {
        let mut b = BucketList::new(2, 4);
        b.insert(0, 4);
        b.insert(1, 0);
        b.update(0, -4);
        assert_eq!(b.max_gain(), Some(0));
        b.update(1, 3);
        assert_eq!(b.max_gain(), Some(3));
        assert_eq!(b.peek_max(), Some(1));
    }

    #[test]
    fn iter_desc_order() {
        let mut b = BucketList::new(6, 10);
        b.insert(0, -1);
        b.insert(1, 7);
        b.insert(2, 0);
        b.insert(3, 7);
        b.insert(4, -10);
        let seq: Vec<(usize, i64)> = b.iter_desc().collect();
        let gains: Vec<i64> = seq.iter().map(|&(_, g)| g).collect();
        assert_eq!(gains, vec![7, 7, 0, -1, -10]);
        // LIFO: item 3 inserted after item 1 comes first.
        assert_eq!(seq[0].0, 3);
        assert_eq!(seq[1].0, 1);
    }

    #[test]
    #[should_panic(expected = "already in bucket list")]
    fn double_insert_panics() {
        let mut b = BucketList::new(1, 1);
        b.insert(0, 0);
        b.insert(0, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds bound")]
    fn out_of_range_gain_panics() {
        let mut b = BucketList::new(1, 1);
        b.insert(0, 2);
    }

    #[test]
    fn empty_queries() {
        let mut b = BucketList::new(4, 2);
        assert_eq!(b.max_gain(), None);
        assert_eq!(b.peek_max(), None);
        assert_eq!(b.iter_desc().count(), 0);
    }

    #[test]
    fn randomized_against_naive_model() {
        let mut rng = StdRng::seed_from_u64(1234);
        let cap = 64usize;
        let bound = 20i64;
        let mut b = BucketList::new(cap, bound);
        let mut model: Vec<Option<i64>> = vec![None; cap];
        for _ in 0..5000 {
            let item = rng.gen_range(0..cap);
            match rng.gen_range(0..3) {
                0 => {
                    let g = rng.gen_range(-bound..=bound);
                    if model[item].is_none() {
                        b.insert(item, g);
                        model[item] = Some(g);
                    } else {
                        b.update(item, g);
                        model[item] = Some(g);
                    }
                }
                1 => {
                    let removed = b.remove(item);
                    assert_eq!(removed, model[item].take().is_some());
                }
                _ => {
                    let expect_max = model.iter().filter_map(|&g| g).max();
                    assert_eq!(b.max_gain(), expect_max);
                    let expect_len = model.iter().filter(|g| g.is_some()).count();
                    assert_eq!(b.len(), expect_len);
                }
            }
        }
        // Final full-order check.
        let seq: Vec<i64> = b.iter_desc().map(|(_, g)| g).collect();
        let mut expect: Vec<i64> = model.iter().filter_map(|&g| g).collect();
        expect.sort_unstable_by(|a, x| x.cmp(a));
        assert_eq!(seq, expect);
    }
}
