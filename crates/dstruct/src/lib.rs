//! Data structures for iterative-improvement partitioning.
//!
//! The DAC-96 PROP reproduction relies on these containers, all
//! implemented here from scratch:
//!
//! * [`BucketList`] — the classic Fiduccia–Mattheyses gain bucket array
//!   with intrusive doubly-linked lists, giving O(1) insert/remove/update
//!   for integral gains (unit net costs).
//! * [`AvlTree`] — a balanced AVL search tree used by PROP (and by the
//!   tree variant of FM) to order nodes by real-valued gain, giving
//!   O(log n) updates and descending-order traversal for feasibility
//!   scans.
//! * [`IndexedMaxHeap`] / [`LazyMaxHeap`] — two flat-array alternatives
//!   to the tree for the PROP gain ranking: the indexed heap pairs a
//!   position map with eager removal (one sift per reposition, read-only
//!   descending traversal), the lazy heap defers deletions to its query
//!   pops. See each module's docs for when which wins.
//! * [`PrefixTracker`] — the pass bookkeeping shared by FM, LA, and PROP:
//!   records the immediate gain of every tentative move and finds the
//!   best balance-feasible prefix to commit.
//!
//! [`OrderedF64`] provides the total order over finite `f64` gains that the
//! tree keys require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avl;
mod bucket;
mod indexed;
mod ordered;
mod prefix;
mod store;

pub use avl::AvlTree;
pub use bucket::BucketList;
pub use indexed::IndexedMaxHeap;
pub use ordered::OrderedF64;
pub use prefix::{BestPrefix, PrefixTracker};
pub use store::LazyMaxHeap;
