//! Property tests pitting the gain containers against naive models.

use proptest::prelude::*;
use prop_dstruct::{AvlTree, BucketList, PrefixTracker};
use std::collections::BTreeSet;

/// Operations on a keyed container.
#[derive(Clone, Debug)]
enum Op {
    Insert(u16),
    Remove(u16),
    CheckOrder,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..200).prop_map(Op::Insert),
            (0u16..200).prop_map(Op::Remove),
            Just(Op::CheckOrder),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The AVL tree behaves exactly like a BTreeSet under any operation
    /// sequence, and stays height-balanced.
    #[test]
    fn avl_matches_btreeset(ops in arb_ops()) {
        let mut tree = AvlTree::new();
        let mut model = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(tree.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::CheckOrder => {
                    prop_assert_eq!(tree.len(), model.len());
                    prop_assert_eq!(tree.max(), model.iter().next_back());
                    prop_assert_eq!(tree.min(), model.iter().next());
                    let a: Vec<u16> = tree.iter().copied().collect();
                    let b: Vec<u16> = model.iter().copied().collect();
                    prop_assert_eq!(a, b);
                    let d: Vec<u16> = tree.iter_desc().copied().collect();
                    let e: Vec<u16> = model.iter().rev().copied().collect();
                    prop_assert_eq!(d, e);
                }
            }
        }
        tree.validate();
    }

    /// The bucket list agrees with a per-item model for gains, max, and
    /// descending iteration order (gains only; within-gain order is LIFO
    /// and checked by unit tests).
    #[test]
    fn bucket_list_matches_model(
        ops in proptest::collection::vec((0usize..48, -12i64..=12, 0u8..3), 1..300)
    ) {
        let mut bucket = BucketList::new(48, 12);
        let mut model: Vec<Option<i64>> = vec![None; 48];
        for (item, gain, kind) in ops {
            match kind {
                0 => {
                    if model[item].is_none() {
                        bucket.insert(item, gain);
                        model[item] = Some(gain);
                    } else {
                        bucket.update(item, gain);
                        model[item] = Some(gain);
                    }
                }
                1 => {
                    prop_assert_eq!(bucket.remove(item), model[item].take().is_some());
                }
                _ => {
                    let expected_max = model.iter().filter_map(|&g| g).max();
                    prop_assert_eq!(bucket.max_gain(), expected_max);
                    prop_assert_eq!(bucket.len(), model.iter().flatten().count());
                    prop_assert_eq!(bucket.contains(item), model[item].is_some());
                    prop_assert_eq!(bucket.gain_of(item), model[item]);
                }
            }
        }
        let mut gains: Vec<i64> = bucket.iter_desc().map(|(_, g)| g).collect();
        let mut expect: Vec<i64> = model.iter().filter_map(|&g| g).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        // iter_desc yields non-increasing gains equal to the sorted model.
        prop_assert!(gains.windows(2).all(|w| w[0] >= w[1]));
        gains.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(gains, expect);
    }

    /// The prefix tracker's answer equals a brute-force scan over all
    /// feasible prefixes.
    #[test]
    fn prefix_tracker_matches_brute_force(
        moves in proptest::collection::vec((-5.0f64..5.0, any::<bool>()), 0..60)
    ) {
        let mut tracker = PrefixTracker::new();
        for &(g, ok) in &moves {
            tracker.push(g, ok);
        }
        // Brute force: best strictly positive feasible prefix, shortest on
        // ties.
        let mut best: Option<(usize, f64)> = None;
        let mut sum = 0.0;
        for (i, &(g, ok)) in moves.iter().enumerate() {
            sum += g;
            if ok && sum > 0.0 && best.is_none_or(|(_, b)| sum > b) {
                best = Some((i + 1, sum));
            }
        }
        let got = tracker.best().map(|b| (b.moves, b.gain));
        prop_assert_eq!(got, best);
    }
}
