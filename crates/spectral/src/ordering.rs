//! Linear orderings and their best balanced prefix splits.

use prop_core::{BalanceConstraint, Bipartition, CutState, Side};
use prop_netlist::{Hypergraph, NodeId};

/// Splits a linear ordering of all nodes at the balance-feasible prefix
/// with the smallest hypergraph cut: the first `k` nodes of `order` form
/// side A, for the best `k` in `[min_part, max_part]`.
///
/// Runs in Θ(m) by sweeping the ordering once with incremental cut
/// maintenance. Returns the partition and its cut cost.
///
/// # Panics
///
/// Panics unless `order` is a permutation of the graph's nodes and the
/// balance window is non-empty for its size.
///
/// ```
/// use prop_core::BalanceConstraint;
/// use prop_netlist::{HypergraphBuilder, NodeId};
/// use prop_spectral::ordering::best_prefix_split;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new(4);
/// b.add_net(1.0, [0, 1])?;
/// b.add_net(1.0, [2, 3])?;
/// b.add_net(1.0, [1, 2])?;
/// let g = b.build()?;
/// let order: Vec<NodeId> = (0..4).map(NodeId::new).collect();
/// let (part, cut) = best_prefix_split(&g, BalanceConstraint::bisection(4), &order);
/// assert_eq!(cut, 1.0);
/// assert!(part.is_balanced(BalanceConstraint::bisection(4)));
/// # Ok(())
/// # }
/// ```
pub fn best_prefix_split(
    graph: &Hypergraph,
    balance: BalanceConstraint,
    order: &[NodeId],
) -> (Bipartition, f64) {
    let n = graph.num_nodes();
    assert_eq!(order.len(), n, "ordering must cover every node");
    debug_assert!(
        {
            let mut seen = vec![false; n];
            order.iter().all(|v| {
                let fresh = !seen[v.index()];
                seen[v.index()] = true;
                fresh
            })
        },
        "ordering must be a permutation"
    );
    let lo = balance.min_part().max(1);
    let hi = balance.max_part().min(n.saturating_sub(1)).max(lo);
    assert!(lo <= hi, "empty balance window");
    let total_weight = graph.total_node_weight();

    let mut partition = Bipartition::from_sides(vec![Side::B; n]);
    let mut cut = CutState::new(graph, &partition);
    let mut best_k = 0;
    let mut best_cost = f64::INFINITY;
    let mut prefix_weight = 0.0;
    for (i, &v) in order.iter().enumerate() {
        cut.apply_move(graph, &mut partition, v);
        prefix_weight += graph.node_weight(v);
        let k = i + 1;
        let feasible = if balance.is_weighted() {
            balance.is_feasible([k, n - k], [prefix_weight, total_weight - prefix_weight])
        } else {
            (lo..=hi).contains(&k)
        };
        if feasible && cut.cut_cost() < best_cost {
            best_cost = cut.cut_cost();
            best_k = k;
        }
        let past_window = if balance.is_weighted() {
            prefix_weight > balance.max_part_weight()
        } else {
            k >= hi
        };
        if past_window {
            break;
        }
    }
    assert!(
        best_cost.is_finite(),
        "no balance-feasible prefix exists for this ordering"
    );
    let mut sides = vec![Side::B; n];
    for &v in &order[..best_k] {
        sides[v.index()] = Side::A;
    }
    let partition = Bipartition::from_sides(sides);
    debug_assert_eq!(CutState::new(graph, &partition).cut_cost(), best_cost);
    (partition, best_cost)
}

/// Orders nodes by ascending key, ties broken by node index (so orderings
/// are deterministic even for degenerate key vectors).
///
/// # Panics
///
/// Panics if `keys.len()` differs from the graph's node count or any key
/// is NaN.
pub fn order_by_key(graph: &Hypergraph, keys: &[f64]) -> Vec<NodeId> {
    assert_eq!(keys.len(), graph.num_nodes(), "key vector length mismatch");
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by(|a, b| {
        keys[a.index()]
            .partial_cmp(&keys[b.index()])
            .expect("NaN ordering key")
            .then(a.index().cmp(&b.index()))
    });
    order
}

/// A max-adjacency (maximum attraction) vertex ordering: starting from
/// `start`, repeatedly appends the unvisited node with the largest total
/// clique-expanded connection weight into the visited set. This is the
/// ordering family behind window-based clustering approaches.
///
/// Isolated or unreachable nodes are appended in index order at the end.
pub fn max_adjacency_order(graph: &Hypergraph, start: NodeId) -> Vec<NodeId> {
    use prop_dstruct::OrderedF64;
    use std::collections::BinaryHeap;

    let n = graph.num_nodes();
    let mut attraction = vec![0.0f64; n];
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Lazy max-heap of (attraction, node) snapshots; stale entries are
    // skipped on pop.
    let mut heap: BinaryHeap<(OrderedF64, u32)> = BinaryHeap::new();

    fn absorb(
        graph: &Hypergraph,
        v: NodeId,
        attraction: &mut [f64],
        visited: &mut [bool],
        heap: &mut BinaryHeap<(OrderedF64, u32)>,
    ) {
        visited[v.index()] = true;
        for &net in graph.nets_of(v) {
            let q = graph.net_size(net);
            if q < 2 {
                continue;
            }
            let w = graph.net_weight(net) / (q as f64 - 1.0);
            for &x in graph.pins_of(net) {
                if !visited[x.index()] {
                    attraction[x.index()] += w;
                    heap.push((OrderedF64::new(attraction[x.index()]), x.index() as u32));
                }
            }
        }
    }

    order.push(start);
    absorb(graph, start, &mut attraction, &mut visited, &mut heap);
    while order.len() < n {
        // Pop until a fresh (non-stale, unvisited) entry appears.
        let mut next: Option<NodeId> = None;
        while let Some((key, id)) = heap.pop() {
            let v = id as usize;
            if !visited[v] && key.get() == attraction[v] {
                next = Some(NodeId::new(v));
                break;
            }
        }
        // Disconnected remainder: new seed = first unvisited node.
        let v = next.unwrap_or_else(|| {
            NodeId::new((0..n).find(|&v| !visited[v]).expect("order incomplete"))
        });
        order.push(v);
        absorb(graph, v, &mut attraction, &mut visited, &mut heap);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::HypergraphBuilder;

    fn path(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn path_split_cuts_one_edge() {
        let g = path(8);
        let order: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let (part, cut) = best_prefix_split(&g, BalanceConstraint::bisection(8), &order);
        assert_eq!(cut, 1.0);
        assert_eq!(part.count(Side::A), 4);
    }

    #[test]
    fn split_respects_balance_window() {
        let g = path(10);
        // Reversed order: best prefix must still be within [min, max].
        let order: Vec<NodeId> = (0..10).rev().map(NodeId::new).collect();
        let balance = BalanceConstraint::new(0.45, 0.55, 10).unwrap();
        let (part, _) = best_prefix_split(&g, balance, &order);
        assert!(part.is_balanced(balance));
    }

    #[test]
    fn order_by_key_sorts_ascending_with_ties() {
        let g = path(4);
        let order = order_by_key(&g, &[0.5, -1.0, 0.5, 0.0]);
        let idx: Vec<usize> = order.iter().map(|v| v.index()).collect();
        assert_eq!(idx, vec![1, 3, 0, 2]);
    }

    #[test]
    fn max_adjacency_walks_the_path() {
        let g = path(6);
        let order = max_adjacency_order(&g, NodeId::new(0));
        let idx: Vec<usize> = order.iter().map(|v| v.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn max_adjacency_covers_disconnected_graphs() {
        let mut b = HypergraphBuilder::new(5);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [3, 4]).unwrap();
        let g = b.build().unwrap();
        let order = max_adjacency_order(&g, NodeId::new(3));
        assert_eq!(order.len(), 5);
        let mut seen: Vec<usize> = order.iter().map(|v| v.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn partial_ordering_rejected() {
        let g = path(3);
        let _ = best_prefix_split(&g, BalanceConstraint::bisection(3), &[NodeId::new(0)]);
    }
}
