//! Graph Laplacians of hypergraphs.

use prop_linalg::CsrMatrix;
use prop_netlist::Hypergraph;

/// Builds the weighted graph Laplacian of the clique expansion of
/// `graph`: every net of size `q ≥ 2` and weight `w` contributes a
/// `q`-clique of edges with weight `w / (q − 1)` (the standard net model
/// used by EIG1 [Hagen & Kahng 1991]). Nets larger than `max_clique_net`
/// are skipped — their dense expansions add cost but almost no spectral
/// signal.
///
/// The result is symmetric positive semi-definite with row sums zero.
///
/// ```
/// use prop_netlist::HypergraphBuilder;
/// use prop_spectral::laplacian::clique_laplacian;
///
/// # fn main() -> Result<(), prop_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new(3);
/// b.add_net(2.0, [0, 1, 2])?;
/// let l = clique_laplacian(&b.build()?, 64);
/// assert_eq!(l.get(0, 0), 2.0);   // two incident clique edges of weight 1
/// assert_eq!(l.get(0, 1), -1.0);
/// # Ok(())
/// # }
/// ```
pub fn clique_laplacian(graph: &Hypergraph, max_clique_net: usize) -> CsrMatrix {
    let n = graph.num_nodes();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for net in graph.nets() {
        let pins = graph.pins_of(net);
        let q = pins.len();
        if !(2..=max_clique_net).contains(&q) {
            continue;
        }
        let w = graph.net_weight(net) / (q as f64 - 1.0);
        for i in 0..q {
            for j in (i + 1)..q {
                let (a, b) = (pins[i].index(), pins[j].index());
                triplets.push((a, b, -w));
                triplets.push((b, a, -w));
                triplets.push((a, a, w));
                triplets.push((b, b, w));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::HypergraphBuilder;

    #[test]
    fn two_pin_net_is_an_edge() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(3.0, [0, 1]).unwrap();
        let l = clique_laplacian(&b.build().unwrap(), 64);
        assert_eq!(l.get(0, 0), 3.0);
        assert_eq!(l.get(1, 1), 3.0);
        assert_eq!(l.get(0, 1), -3.0);
        assert!(l.is_symmetric());
    }

    #[test]
    fn row_sums_are_zero() {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.add_net(2.0, [1, 2, 3]).unwrap();
        b.add_net(1.0, [0, 3]).unwrap();
        let l = clique_laplacian(&b.build().unwrap(), 64);
        let ones = vec![1.0; 4];
        for v in l.matvec(&ones) {
            assert!(v.abs() < 1e-12);
        }
        assert!(l.is_symmetric());
    }

    #[test]
    fn oversized_nets_skipped() {
        let mut b = HypergraphBuilder::new(5);
        b.add_net(1.0, [0, 1, 2, 3, 4]).unwrap();
        let l = clique_laplacian(&b.build().unwrap(), 4);
        assert_eq!(l.nnz(), 0);
    }

    #[test]
    fn single_pin_nets_ignored() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0]).unwrap();
        b.add_net(1.0, [0, 1]).unwrap();
        let l = clique_laplacian(&b.build().unwrap(), 64);
        assert_eq!(l.get(0, 0), 1.0);
    }
}
