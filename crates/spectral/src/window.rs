//! WINDOW-style vertex-ordering clustering with an FM final phase
//! [Alpert & Kahng 1994].

use crate::ordering::{best_prefix_split, max_adjacency_order};
use crate::GlobalPartitioner;
use prop_core::{BalanceConstraint, Bipartition, CutState, PartitionError, Partitioner, RunResult};
use prop_fm::FmBucket;
use prop_netlist::{Hypergraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A WINDOW-style partitioner: max-adjacency vertex orderings split at
/// their best balance-feasible window, each polished by FM — the paper's
/// description of WINDOW as "clustering followed by 20 runs of FM".
///
/// The original derives several vertex orderings and evaluates *windows*
/// (contiguous ranges) of each as clusters; with 2-way balanced
/// partitioning the admissible windows of an ordering reduce to its
/// feasible prefixes, which is what [`best_prefix_split`] scans. Multiple
/// seed vertices (the `runs` knob, default 20 like the paper's FM20 final
/// phase) diversify the orderings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WindowStyle {
    /// Number of (ordering, FM polish) runs; the best result is kept.
    pub runs: usize,
    /// Base seed for the ordering start vertices.
    pub seed: u64,
}

impl Default for WindowStyle {
    fn default() -> Self {
        WindowStyle { runs: 20, seed: 0 }
    }
}

impl GlobalPartitioner for WindowStyle {
    fn name(&self) -> &str {
        "WINDOW"
    }

    fn partition(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        let n = graph.num_nodes();
        if n == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        if self.runs == 0 {
            return Err(PartitionError::InvalidConfig {
                message: "WINDOW needs at least one run".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x77aa_55cc_11dd_22ee);
        let fm = FmBucket::default();
        let mut best: Option<(Bipartition, f64)> = None;
        let mut run_cuts = Vec::with_capacity(self.runs);
        let mut total_passes = 0;
        for _ in 0..self.runs {
            let start = NodeId::new(rng.gen_range(0..n));
            let order = max_adjacency_order(graph, start);
            let (mut partition, _) = best_prefix_split(graph, balance, &order);
            let stats = fm.improve(graph, &mut partition, balance);
            total_passes += stats.passes;
            let cost = CutState::new(graph, &partition).cut_cost();
            run_cuts.push(cost);
            if best.as_ref().is_none_or(|&(_, b)| cost < b) {
                best = Some((partition, cost));
            }
        }
        let (partition, cut_cost) = best.expect("runs >= 1");
        Ok(RunResult {
            partition,
            cut_cost,
            total_passes,
            run_cuts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn produces_balanced_partitions() {
        let g = generate(&GeneratorConfig::new(90, 100, 330).with_seed(2)).unwrap();
        let balance = BalanceConstraint::bisection(90);
        let mut w = WindowStyle::default();
        w.runs = 5;
        let res = w.partition(&g, balance).unwrap();
        assert!(res.partition.is_balanced(balance));
        assert_eq!(res.cut_cost, cut_cost(&g, &res.partition));
        assert_eq!(res.run_cuts.len(), 5);
    }

    #[test]
    fn more_runs_never_hurt() {
        let g = generate(&GeneratorConfig::new(70, 80, 260).with_seed(6)).unwrap();
        let balance = BalanceConstraint::bisection(70);
        let few = WindowStyle { runs: 2, seed: 1 }.partition(&g, balance).unwrap();
        let many = WindowStyle { runs: 8, seed: 1 }.partition(&g, balance).unwrap();
        // Same seed: the first two runs coincide, so the 8-run result can
        // only tie or improve.
        assert!(many.cut_cost <= few.cut_cost + 1e-9);
    }

    #[test]
    fn zero_runs_rejected() {
        let g = generate(&GeneratorConfig::new(20, 24, 80).with_seed(1)).unwrap();
        let balance = BalanceConstraint::bisection(20);
        let w = WindowStyle { runs: 0, seed: 0 };
        assert!(matches!(
            w.partition(&g, balance),
            Err(PartitionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generate(&GeneratorConfig::new(50, 60, 200).with_seed(3)).unwrap();
        let balance = BalanceConstraint::bisection(50);
        let w = WindowStyle { runs: 3, seed: 9 };
        let a = w.partition(&g, balance).unwrap();
        let b = w.partition(&g, balance).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_window() {
        assert_eq!(WindowStyle::default().name(), "WINDOW");
    }
}
