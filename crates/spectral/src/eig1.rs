//! EIG1: Fiedler-vector spectral bipartitioning [Hagen & Kahng 1991].

use crate::laplacian::clique_laplacian;
use crate::ordering::{best_prefix_split, order_by_key};
use crate::GlobalPartitioner;
use prop_core::{BalanceConstraint, PartitionError, RunResult};
use prop_linalg::{lanczos_smallest, LanczosOptions};
use prop_netlist::Hypergraph;

/// The EIG1 spectral partitioner: nodes are ordered by the second-smallest
/// eigenvector (Fiedler vector) of the clique-expanded Laplacian and split
/// at the best balance-feasible prefix of that ordering.
///
/// Hagen–Kahng's original splits at the best *ratio cut*; under the
/// paper's fixed balance windows (Table 3 uses 45–55%) the best in-window
/// prefix is the corresponding constrained split.
///
/// ```
/// use prop_core::BalanceConstraint;
/// use prop_netlist::generate::{generate, GeneratorConfig};
/// use prop_spectral::{Eig1, GlobalPartitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(64, 72, 250).with_seed(7))?;
/// let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
/// let result = Eig1::default().partition(&graph, balance)?;
/// assert!(result.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Eig1 {
    /// Lanczos settings for the Fiedler solve.
    pub lanczos: LanczosOptions,
    /// Nets larger than this are skipped in the clique expansion.
    pub max_clique_net: usize,
}

impl Default for Eig1 {
    fn default() -> Self {
        Eig1 {
            lanczos: LanczosOptions {
                num_eigenpairs: 2,
                ..LanczosOptions::default()
            },
            max_clique_net: 64,
        }
    }
}

impl Eig1 {
    /// Computes the Fiedler vector of `graph`'s clique-expanded Laplacian.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph.
    pub fn fiedler_vector(&self, graph: &Hypergraph) -> Result<Vec<f64>, PartitionError> {
        if graph.num_nodes() == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        let laplacian = clique_laplacian(graph, self.max_clique_net);
        let mut opts = self.lanczos;
        opts.num_eigenpairs = opts.num_eigenpairs.max(2).min(graph.num_nodes());
        let (_, vectors) = lanczos_smallest(&laplacian, opts);
        // vectors[0] ≈ the constant null vector; vectors[1] is Fiedler.
        // A 1-node graph degenerates to the only vector available.
        Ok(vectors.into_iter().nth(1).unwrap_or_else(|| vec![0.0]))
    }
}

impl GlobalPartitioner for Eig1 {
    fn name(&self) -> &str {
        "EIG1"
    }

    fn partition(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        let fiedler = self.fiedler_vector(graph)?;
        let order = order_by_key(graph, &fiedler);
        let (partition, cut_cost) = best_prefix_split(graph, balance, &order);
        Ok(RunResult {
            partition,
            cut_cost,
            total_passes: 1,
            run_cuts: vec![cut_cost],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate_with_info, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;

    #[test]
    fn separates_two_cliques() {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(1.0, [i, j]).unwrap();
                b.add_net(1.0, [i + 4, j + 4]).unwrap();
            }
        }
        b.add_net(1.0, [0, 4]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::bisection(8);
        let res = Eig1::default().partition(&g, balance).unwrap();
        assert_eq!(res.cut_cost, 1.0);
        assert_eq!(res.cut_cost, cut_cost(&g, &res.partition));
    }

    #[test]
    fn finds_planted_structure_better_than_the_worst_case() {
        let cfg = GeneratorConfig::new(256, 260, 900).with_seed(41);
        let (g, info) = generate_with_info(&cfg).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 256).unwrap();
        let res = Eig1::default().partition(&g, balance).unwrap();
        // One-shot spectral should land within a modest factor of the
        // planted cut on a well-clustered instance.
        assert!(
            res.cut_cost <= (info.planted_cut as f64) * 4.0 + 20.0,
            "EIG1 cut {} vs planted {}",
            res.cut_cost,
            info.planted_cut
        );
        assert!(res.partition.is_balanced(balance));
    }

    #[test]
    fn empty_graph_errors() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        let balance = BalanceConstraint::bisection(0);
        assert_eq!(
            Eig1::default().partition(&g, balance),
            Err(PartitionError::EmptyGraph)
        );
    }

    #[test]
    fn name_is_eig1() {
        assert_eq!(Eig1::default().name(), "EIG1");
    }
}
