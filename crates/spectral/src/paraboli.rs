//! PARABOLI-style quadratic-placement partitioning [Riess, Doll &
//! Johannes 1994].

use crate::laplacian::clique_laplacian;
use crate::ordering::{best_prefix_split, order_by_key};
use crate::GlobalPartitioner;
use prop_core::{BalanceConstraint, CutState, PartitionError, Partitioner, RunResult};
use prop_fm::FmTree;
use prop_linalg::{conjugate_gradient, CsrMatrix};
use prop_netlist::{Hypergraph, NodeId};

/// A PARABOLI-style partitioner: analytical (quadratic) placement on a
/// line, ordering split, and iterative local improvement.
///
/// PARABOLI solves quadratic placements with successively refined region
/// constraints. This reimplementation keeps the pipeline's core:
///
/// 1. pick two far-apart anchor nodes by a double BFS sweep,
/// 2. solve the anchored quadratic placement
///    `(L + μ·diag(anchors)) x = μ·pos` by conjugate gradient — the
///    1-D placement that minimises quadratic wirelength with the anchors
///    pinned near 0 and 1,
/// 3. split the placement ordering at its best balance-feasible prefix,
/// 4. polish with an FM (tree) improvement phase, as PARABOLI interleaves
///    analytical and local optimisation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ParaboliStyle {
    /// Anchor penalty weight μ.
    pub anchor_weight: f64,
    /// CG iteration cap.
    pub cg_iterations: usize,
    /// CG relative tolerance.
    pub cg_tolerance: f64,
    /// Nets larger than this are skipped in the clique expansion.
    pub max_clique_net: usize,
    /// Whether to run the FM polish phase.
    pub fm_polish: bool,
}

impl Default for ParaboliStyle {
    fn default() -> Self {
        ParaboliStyle {
            anchor_weight: 100.0,
            cg_iterations: 300,
            cg_tolerance: 1e-8,
            max_clique_net: 64,
            fm_polish: true,
        }
    }
}

impl ParaboliStyle {
    /// The 1-D anchored quadratic placement of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph.
    pub fn placement(&self, graph: &Hypergraph) -> Result<Vec<f64>, PartitionError> {
        let n = graph.num_nodes();
        if n == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        let (a, b) = far_apart_anchors(graph);
        let laplacian = clique_laplacian(graph, self.max_clique_net);
        // (L + μ e_a e_aᵀ + μ e_b e_bᵀ) x = μ (0·e_a + 1·e_b).
        let mut triplets = Vec::with_capacity(2);
        triplets.push((a.index(), a.index(), self.anchor_weight));
        triplets.push((b.index(), b.index(), self.anchor_weight));
        // Small ridge keeps the system positive definite even for isolated
        // nodes (which the Laplacian leaves with a zero row).
        for v in 0..n {
            triplets.push((v, v, 1e-9));
        }
        let anchored = add(&laplacian, &CsrMatrix::from_triplets(n, n, &triplets));
        let mut rhs = vec![0.0; n];
        rhs[b.index()] = self.anchor_weight;
        let out = conjugate_gradient(&anchored, &rhs, self.cg_iterations, self.cg_tolerance);
        Ok(out.x)
    }
}

/// Element-wise sum of two equal-shape CSR matrices.
fn add(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let mut triplets = Vec::with_capacity(a.nnz() + b.nnz());
    for m in [a, b] {
        for r in 0..m.rows() {
            let (cols, vals) = m.row(r);
            for (c, v) in cols.iter().zip(vals) {
                triplets.push((r, *c as usize, *v));
            }
        }
    }
    CsrMatrix::from_triplets(a.rows(), a.cols(), &triplets)
}

/// Double BFS sweep over the hypergraph's connectivity: from node 0 find
/// the farthest node `a`, then from `a` the farthest node `b`. A standard
/// cheap approximation of a graph diameter pair.
fn far_apart_anchors(graph: &Hypergraph) -> (NodeId, NodeId) {
    let a = bfs_farthest(graph, NodeId::new(0));
    let b = bfs_farthest(graph, a);
    if a == b {
        // Fully disconnected or single-node graph: any distinct pair.
        let other = if graph.num_nodes() > 1 { 1 } else { 0 };
        (a, NodeId::new(other))
    } else {
        (a, b)
    }
}

fn bfs_farthest(graph: &Hypergraph, start: NodeId) -> NodeId {
    let n = graph.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    let mut farthest = start;
    while let Some(v) = queue.pop_front() {
        for &net in graph.nets_of(v) {
            for &x in graph.pins_of(net) {
                if dist[x.index()] == usize::MAX {
                    dist[x.index()] = dist[v.index()] + 1;
                    if dist[x.index()] > dist[farthest.index()] {
                        farthest = x;
                    }
                    queue.push_back(x);
                }
            }
        }
    }
    farthest
}

impl GlobalPartitioner for ParaboliStyle {
    fn name(&self) -> &str {
        "PARABOLI"
    }

    fn partition(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        let placement = self.placement(graph)?;
        let order = order_by_key(graph, &placement);
        let (mut partition, mut cut_cost) = best_prefix_split(graph, balance, &order);
        let mut total_passes = 1;
        if self.fm_polish {
            let stats = FmTree::default().improve(graph, &mut partition, balance);
            cut_cost = CutState::new(graph, &partition).cut_cost();
            total_passes += stats.passes;
        }
        Ok(RunResult {
            partition,
            cut_cost,
            total_passes,
            run_cuts: vec![cut_cost],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;

    fn path(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn placement_orders_a_path_monotonically() {
        let g = path(10);
        let x = ParaboliStyle::default().placement(&g).unwrap();
        // The anchors are the path's endpoints; the placement must be
        // monotone along the path (up to direction).
        let increasing = x.windows(2).all(|w| w[0] <= w[1] + 1e-9);
        let decreasing = x.windows(2).all(|w| w[0] >= w[1] - 1e-9);
        assert!(increasing || decreasing, "{x:?}");
    }

    #[test]
    fn partitions_a_path_at_one_edge() {
        let g = path(12);
        let balance = BalanceConstraint::bisection(12);
        let res = ParaboliStyle::default().partition(&g, balance).unwrap();
        assert_eq!(res.cut_cost, 1.0);
        assert!(res.partition.is_balanced(balance));
    }

    #[test]
    fn polish_never_hurts() {
        let g = generate(&GeneratorConfig::new(100, 110, 370).with_seed(20)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 100).unwrap();
        let mut raw = ParaboliStyle::default();
        raw.fm_polish = false;
        let unpolished = raw.partition(&g, balance).unwrap();
        let polished = ParaboliStyle::default().partition(&g, balance).unwrap();
        assert!(polished.cut_cost <= unpolished.cut_cost + 1e-9);
        assert_eq!(polished.cut_cost, cut_cost(&g, &polished.partition));
    }

    #[test]
    fn anchors_are_distinct_endpoints_on_a_path() {
        let g = path(7);
        let (a, b) = far_apart_anchors(&g);
        assert_ne!(a, b);
        let ends = [0usize, 6];
        assert!(ends.contains(&a.index()));
        assert!(ends.contains(&b.index()));
    }

    #[test]
    fn name_is_paraboli() {
        assert_eq!(ParaboliStyle::default().name(), "PARABOLI");
    }
}
