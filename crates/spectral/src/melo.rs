//! MELO-style multiple-eigenvector linear ordering [Alpert & Yao 1995].

use crate::laplacian::clique_laplacian;
use crate::ordering::{best_prefix_split, order_by_key};
use crate::GlobalPartitioner;
use prop_core::{BalanceConstraint, Bipartition, PartitionError, RunResult};
use prop_linalg::{lanczos_smallest, LanczosOptions};
use prop_netlist::Hypergraph;

/// A MELO-style partitioner: "the more eigenvectors the better".
///
/// The original MELO constructs a single linear ordering from *multiple*
/// Laplacian eigenvectors and dynamic-programming splits. This
/// reimplementation keeps the defining idea — extract several non-trivial
/// eigenvectors and choose the best split any of them induces — using the
/// following candidate orderings:
///
/// * the ordering of each of the first `num_vectors` non-trivial
///   eigenvectors individually, and
/// * the angular ordering `atan2(v₃, v₂)` combining the first two
///   (a standard 2-D spectral embedding heuristic),
///
/// each split at its best balance-feasible prefix.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MeloStyle {
    /// How many non-trivial eigenvectors to extract (≥ 1).
    pub num_vectors: usize,
    /// Lanczos settings.
    pub lanczos: LanczosOptions,
    /// Nets larger than this are skipped in the clique expansion.
    pub max_clique_net: usize,
}

impl Default for MeloStyle {
    fn default() -> Self {
        MeloStyle {
            num_vectors: 3,
            lanczos: LanczosOptions::default(),
            max_clique_net: 64,
        }
    }
}

impl GlobalPartitioner for MeloStyle {
    fn name(&self) -> &str {
        "MELO"
    }

    fn partition(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        let n = graph.num_nodes();
        if n == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        let want = self.num_vectors.max(1);
        let laplacian = clique_laplacian(graph, self.max_clique_net);
        let mut opts = self.lanczos;
        opts.num_eigenpairs = (want + 1).min(n);
        let (_, vectors) = lanczos_smallest(&laplacian, opts);
        // Skip the trivial (constant) eigenvector.
        let nontrivial: Vec<&Vec<f64>> = vectors.iter().skip(1).collect();

        let mut best: Option<(Bipartition, f64)> = None;
        let mut run_cuts = Vec::new();
        let mut consider = |graph: &Hypergraph, keys: &[f64]| {
            let order = order_by_key(graph, keys);
            let (part, cost) = best_prefix_split(graph, balance, &order);
            run_cuts.push(cost);
            if best.as_ref().is_none_or(|&(_, b)| cost < b) {
                best = Some((part, cost));
            }
        };
        for v in &nontrivial {
            consider(graph, v);
        }
        if nontrivial.len() >= 2 {
            let angular: Vec<f64> = (0..n)
                .map(|i| nontrivial[1][i].atan2(nontrivial[0][i]))
                .collect();
            consider(graph, &angular);
        }
        if nontrivial.is_empty() {
            // Degenerate 1-node graph: fall back to the index ordering.
            let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
            consider(graph, &keys);
        }
        let (partition, cut_cost) = best.expect("at least one candidate ordering");
        Ok(RunResult {
            partition,
            cut_cost,
            total_passes: 1,
            run_cuts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Eig1;
    use prop_core::cut_cost;
    use prop_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn never_worse_than_eig1_on_the_same_spectrum() {
        // MELO's candidate set includes the Fiedler ordering, so with the
        // same Lanczos accuracy its cut can only tie or beat EIG1's.
        let g = generate(&GeneratorConfig::new(128, 140, 470).with_seed(3)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 128).unwrap();
        let melo = MeloStyle::default().partition(&g, balance).unwrap();
        let eig = Eig1::default().partition(&g, balance).unwrap();
        assert!(
            melo.cut_cost <= eig.cut_cost + 1e-9,
            "MELO {} vs EIG1 {}",
            melo.cut_cost,
            eig.cut_cost
        );
        assert_eq!(melo.cut_cost, cut_cost(&g, &melo.partition));
        assert!(melo.partition.is_balanced(balance));
    }

    #[test]
    fn reports_one_cut_per_candidate_ordering() {
        let g = generate(&GeneratorConfig::new(60, 70, 230).with_seed(9)).unwrap();
        let balance = BalanceConstraint::bisection(60);
        let res = MeloStyle::default().partition(&g, balance).unwrap();
        // 3 eigenvector orderings + 1 angular.
        assert_eq!(res.run_cuts.len(), 4);
        let min = res.run_cuts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(res.cut_cost, min);
    }

    #[test]
    fn single_vector_configuration() {
        let g = generate(&GeneratorConfig::new(40, 48, 160).with_seed(14)).unwrap();
        let balance = BalanceConstraint::bisection(40);
        let mut m = MeloStyle::default();
        m.num_vectors = 1;
        let res = m.partition(&g, balance).unwrap();
        assert_eq!(res.run_cuts.len(), 1);
    }

    #[test]
    fn name_is_melo() {
        assert_eq!(MeloStyle::default().name(), "MELO");
    }
}
