//! Clustering and spectral partitioning baselines from the paper's
//! comparison set (Tables 3–4).
//!
//! The original tools (EIG1, MELO, PARABOLI, WINDOW) are reimplemented
//! from their published algorithmic cores — see `DESIGN.md` §5 for the
//! fidelity discussion:
//!
//! * [`Eig1`] — Hagen–Kahng spectral bipartitioning: order nodes by the
//!   Fiedler vector of the clique-expanded Laplacian, split at the best
//!   balance-feasible prefix.
//! * [`MeloStyle`] — multiple-eigenvector linear orderings: candidate
//!   orderings from each of the first few non-trivial eigenvectors (plus a
//!   2-D angular ordering), best split over all of them.
//! * [`ParaboliStyle`] — quadratic placement: anchored Laplacian solve by
//!   conjugate gradient, ordering by the 1-D placement, best split, then
//!   an FM polish (PARABOLI interleaves analytical placement with local
//!   improvement).
//! * [`WindowStyle`] — max-adjacency vertex orderings from several seeds,
//!   best window split of each, followed by an FM final phase (the paper
//!   notes WINDOW uses FM20 as its last stage).
//!
//! All four are one-shot *global* constructors rather than iterative
//! improvers; they implement [`GlobalPartitioner`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eig1;
pub mod laplacian;
mod melo;
pub mod ordering;
mod paraboli;
mod window;

pub use eig1::Eig1;
pub use melo::MeloStyle;
pub use paraboli::ParaboliStyle;
pub use window::WindowStyle;

// The trait lives in prop-core (it only involves core types) and is
// re-exported here where its implementors are defined.
pub use prop_core::GlobalPartitioner;
