//! Adversarial fuzzing of the `.hgb` snapshot loader.
//!
//! Contract (mirror of `wire_adversarial.rs` for the binary format): on
//! truncated, corrupted, out-of-bounds, overlapping, or wrong-endian
//! snapshot bytes every entry point — `peek_stats`, `parse_hgb`, and the
//! zero-copy `HgbView` path — returns a typed [`NetlistError::Hgb`]
//! error or a valid graph; nothing on this path panics. Any mutated
//! input the loader still accepts must materialize a graph that survives
//! a canonical write/parse round-trip.

use prop_netlist::generate::{generate, generate_adversarial, GeneratorConfig};
use prop_netlist::hgb::{self, HGB_VERSION};
use prop_netlist::{format, Hypergraph, NetlistError};

/// A tiny deterministic xorshift so every failure reproduces from its
/// seed alone.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Base corpus: a plain clustered graph, a weighted+named graph, and the
/// adversarial generator's degenerate shapes.
fn corpus() -> Vec<Hypergraph> {
    let mut graphs = vec![
        generate(&GeneratorConfig::new(40, 44, 150).with_seed(5)).unwrap(),
        // Named nodes and non-unit net weights exercise the optional
        // name/weight sections.
        format::parse_netd("node a\nnode b\nnode c\nnet 2 a b\nnet 0.5 b c\n").unwrap(),
        // Node weights (hgr format flag 11: net weights + node weights).
        format::parse_hgr("1 2 11\n5 1 2\n2\n3\n").unwrap(),
    ];
    for seed in 0..12 {
        graphs.push(generate_adversarial(seed).unwrap());
    }
    graphs
}

/// The never-panic probe: every entry point must return `Ok` or a typed
/// error, and accepted bytes must re-roundtrip canonically.
fn probe(bytes: &[u8]) {
    let stats = hgb::peek_stats(bytes);
    match hgb::parse_hgb(bytes) {
        Ok(g) => {
            assert!(stats.is_ok(), "parse ok but peek_stats failed");
            let again = hgb::parse_hgb(&hgb::write_hgb(&g)).expect("canonical re-parse");
            assert_eq!(g, again, "accepted bytes must round-trip");
        }
        Err(e) => assert!(
            matches!(e, NetlistError::Hgb(_)),
            "untyped loader error: {e}"
        ),
    }
    if let Err(e) = stats {
        assert!(matches!(e, NetlistError::Hgb(_)), "untyped stats error: {e}");
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let graph = generate(&GeneratorConfig::new(20, 22, 70).with_seed(1)).unwrap();
    let bytes = hgb::write_hgb(&graph);
    // `file_len` is in the header, so every proper prefix must fail.
    for len in 0..bytes.len() {
        let cut = &bytes[..len];
        assert!(hgb::parse_hgb(cut).is_err(), "prefix of {len} bytes accepted");
        probe(cut);
    }
    // ... and so must trailing junk.
    let mut extended = bytes.clone();
    extended.extend_from_slice(&[0u8; 13]);
    assert!(hgb::parse_hgb(&extended).is_err(), "trailing junk accepted");
    probe(&extended);
}

#[test]
fn corrupt_header_fields_hit_the_documented_errors() {
    let graph = generate(&GeneratorConfig::new(16, 18, 60).with_seed(2)).unwrap();
    let base = hgb::write_hgb(&graph);

    let mut magic = base.clone();
    magic[0] ^= 0x20;
    assert!(
        matches!(hgb::parse_hgb(&magic), Err(NetlistError::Hgb(prop_netlist::HgbError::BadMagic))),
        "flipped magic must be BadMagic"
    );

    let mut version = base.clone();
    version[8..12].copy_from_slice(&(HGB_VERSION + 1).to_le_bytes());
    assert!(
        matches!(
            hgb::parse_hgb(&version),
            Err(NetlistError::Hgb(prop_netlist::HgbError::UnsupportedVersion { .. }))
        ),
        "future version must be UnsupportedVersion"
    );

    // A big-endian writer would lay the tag bytes down reversed.
    let mut endian = base.clone();
    endian[12..16].reverse();
    assert!(
        matches!(
            hgb::parse_hgb(&endian),
            Err(NetlistError::Hgb(prop_netlist::HgbError::ForeignEndianness { .. }))
        ),
        "byte-swapped endian tag must be ForeignEndianness"
    );

    // Absurd counts must be refused without attempting an allocation.
    let mut counts = base.clone();
    counts[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(hgb::parse_hgb(&counts).is_err());
    probe(&counts);

    // A file_len that disagrees with the buffer is structural corruption.
    let mut len_lie = base.clone();
    len_lie[48..56].copy_from_slice(&(base.len() as u64 + 8).to_le_bytes());
    assert!(hgb::parse_hgb(&len_lie).is_err());
    probe(&len_lie);
}

#[test]
fn section_table_attacks_never_panic() {
    let graph = generate(&GeneratorConfig::new(24, 26, 90).with_seed(3)).unwrap();
    let base = hgb::write_hgb(&graph);
    let table = 64usize; // section table starts after the header
    let entry = 24usize; // {kind u32, pad u32, off u64, len u64}
    let entries = (0..5).map(|i| table + i * entry).collect::<Vec<_>>();

    for &e in &entries {
        // Offset far out of bounds.
        let mut oob = base.clone();
        oob[e + 8..e + 16].copy_from_slice(&(base.len() as u64 * 3).to_le_bytes());
        assert!(hgb::parse_hgb(&oob).is_err());
        probe(&oob);

        // Length overflowing the file.
        let mut long = base.clone();
        long[e + 16..e + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(hgb::parse_hgb(&long).is_err());
        probe(&long);

        // Misaligned offset (sections are 8-byte aligned by contract).
        let mut skew = base.clone();
        let off = u64::from_le_bytes(skew[e + 8..e + 16].try_into().unwrap());
        skew[e + 8..e + 16].copy_from_slice(&(off + 1).to_le_bytes());
        assert!(hgb::parse_hgb(&skew).is_err());
        probe(&skew);
    }

    // Two sections forced onto the same bytes (overlap).
    let mut overlap = base.clone();
    let first_off = u64::from_le_bytes(overlap[table + 8..table + 16].try_into().unwrap());
    overlap[entries[1] + 8..entries[1] + 16].copy_from_slice(&first_off.to_le_bytes());
    assert!(hgb::parse_hgb(&overlap).is_err());
    probe(&overlap);

    // A duplicated / out-of-order section kind.
    let mut dup = base.clone();
    let kind0 = dup[table..table + 4].to_vec();
    dup[entries[1]..entries[1] + 4].copy_from_slice(&kind0);
    assert!(hgb::parse_hgb(&dup).is_err());
    probe(&dup);
}

#[test]
fn payload_corruption_is_caught_by_deep_validation() {
    let graph = generate(&GeneratorConfig::new(30, 34, 120).with_seed(4)).unwrap();
    let base = hgb::write_hgb(&graph);
    let mut rng = XorShift(0x0b5e_55ed_bad5_eed5);
    let mut rejected = 0usize;
    for _ in 0..400 {
        let mut bytes = base.clone();
        // Corrupt only the payload region (past header + table) so the
        // structural layer accepts it and the deep checks must catch it.
        let payload_start = 64 + 5 * 24;
        let i = payload_start + rng.below(bytes.len() - payload_start);
        bytes[i] ^= 1 << rng.below(8);
        probe(&bytes);
        if hgb::parse_hgb(&bytes).is_err() {
            rejected += 1;
        }
    }
    // Most single-bit payload flips break an offset/pin/degree invariant;
    // the rest merely reorder pins and still form a valid graph. The
    // deep checks must be doing real work here.
    assert!(rejected > 200, "only {rejected}/400 corruptions rejected");
}

#[test]
fn random_mutations_never_panic_any_entry_point() {
    let mut rng = XorShift(0x5eed_f00d_0000_0001);
    for graph in corpus() {
        let base = hgb::write_hgb(&graph);
        let mut bytes = base.clone();
        for round in 0..60 {
            match rng.below(6) {
                0 => {
                    // Flip one bit anywhere.
                    let i = rng.below(bytes.len());
                    bytes[i] ^= 1 << rng.below(8);
                }
                1 => {
                    // Overwrite a byte.
                    let i = rng.below(bytes.len());
                    bytes[i] = rng.next() as u8;
                }
                2 => {
                    // Truncate.
                    bytes.truncate(rng.below(bytes.len() + 1));
                }
                3 => {
                    // Extend with junk.
                    for _ in 0..rng.below(16) + 1 {
                        bytes.push(rng.next() as u8);
                    }
                }
                4 => {
                    // Swap two aligned 8-byte words.
                    if bytes.len() >= 16 {
                        let words = bytes.len() / 8;
                        let (a, b) = (rng.below(words) * 8, rng.below(words) * 8);
                        for k in 0..8 {
                            bytes.swap(a + k, b + k);
                        }
                    }
                }
                _ => {
                    // Zero a short range.
                    if !bytes.is_empty() {
                        let i = rng.below(bytes.len());
                        let n = rng.below(32).min(bytes.len() - i);
                        bytes[i..i + n].fill(0);
                    }
                }
            }
            probe(&bytes);
            // Restart from a clean snapshot now and then so the stream
            // keeps visiting near-valid inputs, the interesting regime.
            if round % 20 == 19 || bytes.is_empty() {
                bytes = base.clone();
            }
        }
    }
}

/// The mmap-backed and buffered file paths must agree with the in-memory
/// parser on mutated files: same accept/reject outcome, same bytes, and
/// the same graph when accepted.
#[test]
fn file_backed_views_agree_with_in_memory_parsing() {
    let dir = std::env::temp_dir().join(format!("prop-hgb-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mutant.hgb");

    let graph = generate(&GeneratorConfig::new(26, 30, 100).with_seed(6)).unwrap();
    let base = hgb::write_hgb(&graph);
    let mut rng = XorShift(0xfee1_dead_beef_cafe);
    for case in 0..48 {
        let mut bytes = base.clone();
        match case % 4 {
            0 => {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
            1 => bytes.truncate(rng.below(bytes.len() + 1)),
            2 => {
                let i = rng.below(bytes.len());
                bytes[i] = rng.next() as u8;
            }
            _ => {} // pristine every fourth case
        }
        std::fs::write(&path, &bytes).unwrap();

        let mapped = hgb::HgbFile::open(&path).unwrap();
        let buffered = hgb::HgbFile::open_buffered(&path).unwrap();
        assert_eq!(mapped.bytes(), bytes.as_slice(), "mapped bytes differ");
        assert_eq!(buffered.bytes(), bytes.as_slice(), "buffered bytes differ");

        let direct = hgb::parse_hgb(&bytes);
        for file in [&mapped, &buffered] {
            match file.view().and_then(|v| v.to_hypergraph()) {
                Ok(g) => {
                    let d = direct.as_ref().expect("view accepted, parse rejected");
                    assert_eq!(&g, d, "view and parse materialize differently");
                }
                Err(e) => {
                    assert!(direct.is_err(), "view rejected, parse accepted: {e}");
                    assert!(matches!(e, NetlistError::Hgb(_)), "untyped view error: {e}");
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
