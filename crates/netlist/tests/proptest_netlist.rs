//! Property tests for the netlist substrate: generator guarantees,
//! format round-trips, and induced-subgraph structure.

use proptest::prelude::*;
use prop_netlist::generate::{generate, generate_with_info, GeneratorConfig};
use prop_netlist::{format, HypergraphBuilder, NodeId};

/// Valid generator configurations: pins always satisfiable.
fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (8usize..200, 4usize..150, 0usize..3, any::<u64>(), 0.0f64..1.0).prop_map(
        |(nodes, nets, extra_per_net, seed, locality)| {
            let pins = 2 * nets + extra_per_net * nets;
            GeneratorConfig::new(nodes, nets, pins)
                .with_seed(seed)
                .with_locality(locality)
        },
    )
}

/// An arbitrary hand-built hypergraph with mixed net and node weights.
fn arb_weighted_graph() -> impl Strategy<Value = prop_netlist::Hypergraph> {
    (3usize..30).prop_flat_map(|n| {
        let nets = proptest::collection::vec(
            (proptest::collection::vec(0..n, 1..5), 1u32..16),
            1..40,
        );
        let weights = proptest::collection::vec(1u32..9, n);
        (nets, weights).prop_map(move |(nets, weights)| {
            let mut b = HypergraphBuilder::new(n);
            for (pins, w) in nets {
                // Quarter-step weights exercise the weighted hgr path.
                b.add_net(f64::from(w) * 0.25, pins).expect("valid pins");
            }
            b.set_node_weights(weights.into_iter().map(|w| f64::from(w) * 0.5).collect())
                .expect("positive weights");
            b.build().expect("valid graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The generator hits the requested counts exactly, never leaves a
    /// node isolated, and is deterministic in its config.
    #[test]
    fn generator_contract(config in arb_config()) {
        let (g, info) = generate_with_info(&config).unwrap();
        prop_assert_eq!(g.num_nodes(), config.nodes);
        prop_assert_eq!(g.num_nets(), config.nets);
        prop_assert_eq!(g.num_pins(), config.pins);
        // Net sizes within [2, max] — pins >= 2·nets in arb_config.
        for net in g.nets() {
            prop_assert!((2..=config.max_net_size).contains(&g.net_size(net)));
        }
        prop_assert_eq!(info.mid, config.nodes / 2);
        let again = generate(&config).unwrap();
        prop_assert_eq!(g, again);
    }

    /// hgr round-trips preserve weighted graphs exactly (weights are
    /// dyadic rationals, so text round-trips are lossless).
    #[test]
    fn weighted_hgr_roundtrip(g in arb_weighted_graph()) {
        let text = format::write_hgr(&g);
        let parsed = format::parse_hgr(&text).unwrap();
        prop_assert_eq!(g, parsed);
    }

    /// netd round-trips preserve structure and weights (names are
    /// synthesised on first write, then stable).
    #[test]
    fn netd_roundtrip(g in arb_weighted_graph()) {
        let once = format::parse_netd(&format::write_netd(&g)).unwrap();
        let twice = format::parse_netd(&format::write_netd(&once)).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(format::write_hgr(&g), format::write_hgr(&once));
    }

    /// Induced subgraphs keep exactly the nets with ≥ 2 member pins,
    /// preserve weights, and the back-mapping is consistent.
    #[test]
    fn induced_subgraph_structure(g in arb_weighted_graph(), selector in any::<u64>()) {
        let n = g.num_nodes();
        let nodes: Vec<NodeId> = (0..n)
            .filter(|i| (selector >> (i % 64)) & 1 == 1)
            .map(NodeId::new)
            .collect();
        prop_assume!(!nodes.is_empty());
        let (sub, back) = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.num_nodes(), nodes.len());
        prop_assert_eq!(&back, &nodes);
        // Every surviving net's pin multiset equals the restriction of
        // some original net.
        let expected: usize = g
            .nets()
            .filter(|&net| {
                g.pins_of(net)
                    .iter()
                    .filter(|v| nodes.contains(v))
                    .count()
                    >= 2
            })
            .count();
        prop_assert_eq!(sub.num_nets(), expected);
        for (i, &orig) in back.iter().enumerate() {
            prop_assert_eq!(sub.node_weight(NodeId::new(i)), g.node_weight(orig));
        }
    }

    /// Builder incidence is consistent in both directions for arbitrary
    /// graphs (the CSR transpose is correct).
    #[test]
    fn incidence_consistency(g in arb_weighted_graph()) {
        let mut pin_count = 0usize;
        for net in g.nets() {
            for &v in g.pins_of(net) {
                prop_assert!(g.nets_of(v).contains(&net));
                pin_count += 1;
            }
        }
        prop_assert_eq!(pin_count, g.num_pins());
        for v in g.nodes() {
            for &net in g.nets_of(v) {
                prop_assert!(g.pins_of(net).contains(&v));
            }
        }
    }
}
