//! Hypergraph size statistics in the notation of the DAC-96 paper.

use crate::hypergraph::Hypergraph;
use std::fmt;

/// Size parameters of a hypergraph, in the paper's notation:
///
/// * `n` — number of nodes,
/// * `e` — number of nets,
/// * `m` — total pins (`m = p·n = q·e`),
/// * `p` — average nets per node,
/// * `q` — average nodes per net,
/// * `d = p(q − 1)` — average neighbors per node.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Stats {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of nets `e`.
    pub nets: usize,
    /// Total number of pins `m`.
    pub pins: usize,
    /// Average pins per node `p = m / n`.
    pub avg_pins_per_node: f64,
    /// Average pins per net `q = m / e`.
    pub avg_pins_per_net: f64,
    /// Average neighbors per node `d = p (q − 1)`.
    pub avg_neighbors: f64,
    /// Largest net size encountered.
    pub max_net_size: usize,
    /// Largest node degree encountered.
    pub max_degree: usize,
}

impl Stats {
    /// Computes the statistics of `graph`.
    pub fn of(graph: &Hypergraph) -> Stats {
        let nodes = graph.num_nodes();
        let nets = graph.num_nets();
        let pins = graph.num_pins();
        let p = if nodes > 0 { pins as f64 / nodes as f64 } else { 0.0 };
        let q = if nets > 0 { pins as f64 / nets as f64 } else { 0.0 };
        let max_net_size = graph.nets().map(|e| graph.net_size(e)).max().unwrap_or(0);
        let max_degree = graph.nodes().map(|v| graph.degree(v)).max().unwrap_or(0);
        Stats {
            nodes,
            nets,
            pins,
            avg_pins_per_node: p,
            avg_pins_per_net: q,
            avg_neighbors: p * (q - 1.0).max(0.0),
            max_net_size,
            max_degree,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} e={} m={} p={:.2} q={:.2} d={:.2}",
            self.nodes,
            self.nets,
            self.pins,
            self.avg_pins_per_node,
            self.avg_pins_per_net,
            self.avg_neighbors
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::hypergraph::HypergraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2, 3]).unwrap();
        let g = b.build().unwrap();
        let s = g.stats();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.nets, 2);
        assert_eq!(s.pins, 5);
        assert!((s.avg_pins_per_node - 1.25).abs() < 1e-12);
        assert!((s.avg_pins_per_net - 2.5).abs() < 1e-12);
        assert!((s.avg_neighbors - 1.25 * 1.5).abs() < 1e-12);
        assert_eq!(s.max_net_size, 3);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        let s = g.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_pins_per_node, 0.0);
        assert_eq!(s.avg_neighbors, 0.0);
    }

    #[test]
    fn display_contains_counts() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1]).unwrap();
        let s = b.build().unwrap().stats();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("e=1"));
        assert!(text.contains("m=2"));
    }
}
