//! Seeded synthetic circuit generation.
//!
//! The ACM/SIGDA benchmark circuits used in the DAC-96 paper are not
//! redistributable (the original ftp archive is long gone), so this module
//! generates deterministic proxies: hypergraphs with *exactly* the node,
//! net, and pin counts of Table 1, a realistic net-size distribution
//! (dominated by 2–4 pin nets with a small heavy tail), and planted
//! hierarchical cluster structure so that good small cuts exist for
//! partitioners to find — the property that separates smart gain functions
//! from naive ones.
//!
//! The generator is fully deterministic given a [`GeneratorConfig`] (the
//! seed is part of the config), so every experiment in this suite is
//! reproducible bit-for-bit.
//!
//! ```
//! use prop_netlist::generate::{GeneratorConfig, generate};
//!
//! # fn main() -> Result<(), prop_netlist::NetlistError> {
//! let cfg = GeneratorConfig::new(200, 220, 700).with_seed(7);
//! let g = generate(&cfg)?;
//! assert_eq!(g.num_nodes(), 200);
//! assert_eq!(g.num_nets(), 220);
//! assert_eq!(g.num_pins(), 700);
//! # Ok(())
//! # }
//! ```

use crate::error::NetlistError;
use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic circuit generator.
#[derive(Clone, PartialEq, Debug)]
pub struct GeneratorConfig {
    /// Number of nodes to generate.
    pub nodes: usize,
    /// Number of nets to generate.
    pub nets: usize,
    /// Exact total number of pins across all nets.
    pub pins: usize,
    /// RNG seed; the generator is deterministic in the full config.
    pub seed: u64,
    /// Probability that a net is local to its anchor's leaf cluster.
    /// The remaining mass is spread uniformly over the ancestor levels,
    /// planting a hierarchy of small cuts.
    pub locality: f64,
    /// Approximate number of nodes per leaf cluster.
    pub leaf_size: usize,
    /// Hard cap on the size of any single net.
    pub max_net_size: usize,
}

impl GeneratorConfig {
    /// Creates a config with the given exact counts and default structure
    /// parameters (seed 0, locality 0.8, leaf size 16, max net size 32).
    pub fn new(nodes: usize, nets: usize, pins: usize) -> Self {
        GeneratorConfig {
            nodes,
            nets,
            pins,
            seed: 0,
            locality: 0.8,
            leaf_size: 16,
            max_net_size: 32,
        }
    }

    /// Returns the config with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different locality.
    #[must_use]
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality;
        self
    }

    /// Checks that this configuration is satisfiable (enough pins per
    /// net, net sizes within the cap, parameters in range) without
    /// generating anything — cheap even for the multi-million-node tier.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidGeneratorConfig`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let fail = |message: String| Err(NetlistError::InvalidGeneratorConfig { message });
        if self.nodes < 2 {
            return fail(format!("need at least 2 nodes, got {}", self.nodes));
        }
        if self.nets == 0 {
            return fail("need at least 1 net".into());
        }
        if self.pins < 2 * self.nets {
            return fail(format!(
                "{} pins cannot give every one of {} nets 2 pins",
                self.pins, self.nets
            ));
        }
        let cap = self.max_net_size.min(self.nodes);
        if self.pins > self.nets * cap {
            return fail(format!(
                "{} pins exceed capacity {} of {} nets with max size {}",
                self.pins,
                self.nets * cap,
                self.nets,
                cap
            ));
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return fail(format!("locality {} outside [0, 1]", self.locality));
        }
        if self.leaf_size < 2 {
            return fail(format!("leaf size {} below 2", self.leaf_size));
        }
        if self.max_net_size < 2 {
            return fail(format!("max net size {} below 2", self.max_net_size));
        }
        Ok(())
    }
}

/// Structural information about a generated circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlantedInfo {
    /// Boundary of the planted top-level bisection: nodes `< mid` form one
    /// half of the planted partition.
    pub mid: usize,
    /// Number of nets that cross the planted bisection — an upper bound
    /// witness on the optimal 2-way cut.
    pub planted_cut: usize,
    /// Depth of the cluster hierarchy.
    pub depth: usize,
}

/// Generates a clustered synthetic circuit. See the module docs.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] when the counts are
/// inconsistent (e.g. fewer than two pins per net on average).
pub fn generate(config: &GeneratorConfig) -> Result<Hypergraph, NetlistError> {
    generate_with_info(config).map(|(g, _)| g)
}

/// Like [`generate`], also returning the planted structure information.
///
/// # Errors
///
/// Same as [`generate`].
pub fn generate_with_info(
    config: &GeneratorConfig,
) -> Result<(Hypergraph, PlantedInfo), NetlistError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    let n = config.nodes;
    let e = config.nets;

    // Depth of the balanced binary cluster tree over the node range [0, n).
    let mut depth = 0usize;
    while (n >> depth) > config.leaf_size && depth < 24 {
        depth += 1;
    }

    let sizes = net_sizes(config, &mut rng);

    // Per-net span ranges: local to the anchor leaf with prob `locality`,
    // otherwise an ancestor level chosen uniformly.
    let mut nets: Vec<Vec<usize>> = Vec::with_capacity(e);
    for &size in &sizes {
        let anchor = rng.gen_range(0..n);
        let level = if depth == 0 || rng.gen::<f64>() < config.locality {
            depth
        } else {
            // Uniform over the strictly shallower levels 0..depth (level 0 =
            // whole circuit) so a fixed fraction of nets spans each cut of
            // the hierarchy.
            rng.gen_range(0..depth)
        };
        let (lo, hi) = range_at_level(n, depth, level, anchor);
        nets.push(sample_distinct(&mut rng, lo, hi, size, n));
    }

    attach_isolated_nodes(&mut rng, n, &mut nets);

    let mid = n / 2;
    let planted_cut = nets
        .iter()
        .filter(|pins| {
            let any_lo = pins.iter().any(|&v| v < mid);
            let any_hi = pins.iter().any(|&v| v >= mid);
            any_lo && any_hi
        })
        .count();

    let mut builder = HypergraphBuilder::new(n);
    for pins in nets {
        builder.add_net(1.0, pins)?;
    }
    let graph = builder.build()?;
    debug_assert_eq!(graph.num_pins(), config.pins);
    Ok((
        graph,
        PlantedInfo {
            mid,
            planted_cut,
            depth,
        },
    ))
}

/// Generates a structureless uniform-random circuit (no planted clusters).
/// Useful as a pessimal input and in property tests.
///
/// # Errors
///
/// Same validation as [`generate`].
pub fn generate_uniform(config: &GeneratorConfig) -> Result<Hypergraph, NetlistError> {
    let mut cfg = config.clone();
    cfg.locality = 0.0;
    cfg.leaf_size = cfg.nodes.max(2); // a single leaf spanning everything
    generate(&cfg)
}

/// Generator configuration of the golem3-class large proxy: ~100k nodes
/// and ~400k pins, the scale at which the PARABOLI/MELO comparisons
/// report the largest ACM/SIGDA circuit. Identical to the suite's
/// `golem3` entry (`suite::LARGE`); exposed here so scaling experiments
/// can tweak the structure parameters (seed, locality) before
/// instantiating.
pub fn golem3_class_config() -> GeneratorConfig {
    crate::suite::by_name("golem3")
        .expect("golem3 is a fixed suite entry")
        .generator_config()
}

/// Generator configuration of the golem4-class proxy: ~1M nodes and ~4M
/// pins — golem3 scaled 10×, matching the million-node instance sizes
/// the n-level / deterministic-parallel partitioning literature
/// evaluates on. Identical to the suite's `golem4` entry.
pub fn golem4_class_config() -> GeneratorConfig {
    crate::suite::by_name("golem4")
        .expect("golem4 is a fixed suite entry")
        .generator_config()
}

/// Generator configuration of the golem5-class proxy: ~10M nodes and
/// ~40M pins — the top of the scaled tier. Identical to the suite's
/// `golem5` entry. Instantiation takes minutes in debug builds; use
/// release mode (the `--io --large` benchmark path does).
pub fn golem5_class_config() -> GeneratorConfig {
    crate::suite::by_name("golem5")
        .expect("golem5 is a fixed suite entry")
        .generator_config()
}

/// Generates a small adversarial circuit exercising degenerate-but-legal
/// netlist features: single-pin nets, nets with duplicate pins (which the
/// builder de-duplicates), a giant net spanning every connected node,
/// isolated nodes, and fractional net/node weights. Deterministic in the
/// seed. Intended for format-roundtrip fuzzing and parser robustness
/// tests, not for benchmarking.
///
/// # Errors
///
/// Never fails in practice; the signature matches [`generate`] so callers
/// can treat both uniformly.
pub fn generate_adversarial(seed: u64) -> Result<Hypergraph, NetlistError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_5a5a_c3c3_3c3c);
    let n = rng.gen_range(3..=40);
    // Leave up to 3 trailing nodes isolated (degree 0).
    let isolated = rng.gen_range(0..=3.min(n - 2));
    let attached = n - isolated;
    let mut builder = HypergraphBuilder::new(n);
    let nets = rng.gen_range(1..=24);
    for _ in 0..nets {
        let weight = if rng.gen::<f64>() < 0.3 {
            0.25 + rng.gen::<f64>() * 7.75
        } else {
            1.0
        };
        let pins: Vec<usize> = match rng.gen_range(0..5) {
            // Single-pin net.
            0 => vec![rng.gen_range(0..attached)],
            // Duplicate pins: collapses to at most two distinct pins.
            1 => {
                let v = rng.gen_range(0..attached);
                let u = rng.gen_range(0..attached);
                vec![v, u, v, v, u]
            }
            // Giant net spanning every connected node.
            2 => (0..attached).collect(),
            // Self-duplicate single pin: collapses to a single-pin net.
            3 => {
                let v = rng.gen_range(0..attached);
                vec![v, v, v]
            }
            // Ordinary small net.
            _ => {
                let size = rng.gen_range(2..=4.min(attached));
                sample_distinct(&mut rng, 0, attached, size, attached)
            }
        };
        builder.add_net(weight, pins)?;
    }
    if rng.gen::<f64>() < 0.5 {
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    1.0
                } else {
                    0.5 + rng.gen::<f64>() * 4.5
                }
            })
            .collect();
        builder.set_node_weights(weights)?;
    }
    builder.build()
}

/// Draws the per-net sizes: every net starts at 2 pins; the remaining
/// `pins − 2·nets` pins are distributed randomly, subject to per-net caps
/// (most nets are capped small; a few "hub" nets may grow large), matching
/// the 2–4 pin dominated distributions of real netlists.
fn net_sizes(config: &GeneratorConfig, rng: &mut StdRng) -> Vec<usize> {
    let e = config.nets;
    let hard_cap = config.max_net_size.min(config.nodes);
    let mut caps = vec![0usize; e];
    for cap in caps.iter_mut() {
        let roll: f64 = rng.gen();
        *cap = if roll < 0.88 {
            4
        } else if roll < 0.98 {
            8
        } else {
            hard_cap
        }
        .min(hard_cap);
    }
    let mut sizes = vec![2usize; e];
    let mut extra = config.pins - 2 * e;
    // Nets still below their cap, as an index pool with swap-removal.
    let mut open: Vec<usize> = (0..e).filter(|&i| sizes[i] < caps[i]).collect();
    while extra > 0 {
        if open.is_empty() {
            // All soft caps exhausted; lift caps to the hard cap.
            open = (0..e).filter(|&i| sizes[i] < hard_cap).collect();
            for i in &open {
                caps[*i] = hard_cap;
            }
            assert!(
                !open.is_empty(),
                "validated config guarantees capacity for all pins"
            );
        }
        let slot = rng.gen_range(0..open.len());
        let net = open[slot];
        sizes[net] += 1;
        extra -= 1;
        if sizes[net] >= caps[net] {
            open.swap_remove(slot);
        }
    }
    sizes
}

/// The contiguous node range of the cluster at `level` (0 = root) that
/// contains `anchor`, in a balanced binary hierarchy of `depth` levels over
/// `[0, n)`.
fn range_at_level(n: usize, depth: usize, level: usize, anchor: usize) -> (usize, usize) {
    debug_assert!(level <= depth);
    let parts = 1usize << level;
    // Split [0, n) into `parts` near-equal contiguous ranges.
    let idx = anchor * parts / n;
    let lo = idx * n / parts;
    let hi = (idx + 1) * n / parts;
    (lo, hi)
}

/// Samples `size` distinct node indices from `[lo, hi)`, widening the range
/// toward `[0, n)` if it is too small.
fn sample_distinct(rng: &mut StdRng, lo: usize, hi: usize, size: usize, n: usize) -> Vec<usize> {
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo < size.max(2) * 2 && (lo > 0 || hi < n) {
        // Widen symmetrically so rejection sampling stays cheap.
        let span = hi - lo;
        lo = lo.saturating_sub(span / 2);
        hi = (hi + span / 2).min(n);
    }
    let size = size.min(hi - lo);
    let mut picked = Vec::with_capacity(size);
    while picked.len() < size {
        let v = rng.gen_range(lo..hi);
        if !picked.contains(&v) {
            picked.push(v);
        }
    }
    picked
}

/// Ensures every node appears in at least one net by swapping isolated
/// nodes into nearby nets in place of pins whose nodes have degree ≥ 2.
/// Leaves the total pin count unchanged.
fn attach_isolated_nodes(rng: &mut StdRng, n: usize, nets: &mut [Vec<usize>]) {
    let mut degree = vec![0u32; n];
    for pins in nets.iter() {
        for &v in pins {
            degree[v] += 1;
        }
    }
    let isolated: Vec<usize> = (0..n).filter(|&v| degree[v] == 0).collect();
    if isolated.is_empty() {
        return;
    }
    // Random scan order over nets so replacements spread out.
    let mut order: Vec<usize> = (0..nets.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut cursor = 0usize;
    'outer: for v in isolated {
        while cursor < order.len() {
            let net = order[cursor];
            cursor += 1;
            if nets[net].contains(&v) {
                continue;
            }
            if let Some(pos) = nets[net]
                .iter()
                .position(|&u| degree[u] >= 2 && nets[net].len() >= 3)
            {
                let u = nets[net][pos];
                degree[u] -= 1;
                degree[v] += 1;
                nets[net][pos] = v;
                continue 'outer;
            }
        }
        // Out of candidate nets: fall back to appending to the smallest net
        // and trimming a high-degree pin from the largest (still exact).
        // In practice unreachable for the suite's parameters.
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golem3_class_config_is_valid_and_large() {
        let cfg = golem3_class_config();
        assert_eq!(cfg.nodes, 103_048);
        assert!(cfg.validate().is_ok());
        // Instantiation is covered by the `--large` benchmark path; unit
        // tests only pin the configuration itself.
    }

    #[test]
    fn golem_tier_configs_are_valid() {
        let g4 = golem4_class_config();
        assert_eq!((g4.nodes, g4.nets, g4.pins), (1_030_480, 1_082_920, 4_006_800));
        assert!(g4.validate().is_ok());
        let g5 = golem5_class_config();
        assert_eq!((g5.nodes, g5.nets, g5.pins), (10_304_800, 10_829_200, 40_068_000));
        assert!(g5.validate().is_ok());
        assert_ne!(g4.seed, g5.seed, "name-derived seeds differ");
    }

    /// Pins the exact generated shape of the million-node golem4 proxy.
    /// Ignored in tier-1 (a 1M-node generation is multi-second in debug
    /// builds); `scripts/check.sh --io` runs it in release mode.
    #[test]
    #[ignore = "million-node generation; run via scripts/check.sh --io (release)"]
    fn golem4_instantiates_with_pinned_stats() {
        let g = crate::suite::by_name("golem4").unwrap().instantiate().unwrap();
        assert_eq!(g.num_nodes(), 1_030_480);
        assert_eq!(g.num_nets(), 1_082_920);
        assert_eq!(g.num_pins(), 4_006_800);
        let stats = g.stats();
        // Deterministic: the name-derived seed always produces the same
        // circuit, so the extremes are exact pins, not ranges.
        assert_eq!(stats.max_net_size, 13);
        assert_eq!(stats.max_degree, 16);
        assert!((stats.avg_pins_per_net - 3.699_996_306_283_013).abs() < 1e-12);
        assert!((stats.avg_pins_per_node - 3.888_285_071_034_857_3).abs() < 1e-12);
    }

    #[test]
    fn exact_counts() {
        let cfg = GeneratorConfig::new(801, 735, 2697).with_seed(1);
        let g = generate(&cfg).unwrap();
        assert_eq!(g.num_nodes(), 801);
        assert_eq!(g.num_nets(), 735);
        assert_eq!(g.num_pins(), 2697);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = GeneratorConfig::new(300, 320, 1100).with_seed(42);
        let g1 = generate(&cfg).unwrap();
        let g2 = generate(&cfg).unwrap();
        assert_eq!(g1, g2);
        let g3 = generate(&cfg.clone().with_seed(43)).unwrap();
        assert_ne!(g1, g3);
    }

    #[test]
    fn no_isolated_nodes() {
        let cfg = GeneratorConfig::new(500, 480, 1700).with_seed(3);
        let g = generate(&cfg).unwrap();
        let isolated = g.nodes().filter(|&v| g.degree(v) == 0).count();
        assert_eq!(isolated, 0);
    }

    #[test]
    fn net_sizes_within_caps() {
        let cfg = GeneratorConfig::new(400, 400, 1500).with_seed(9);
        let g = generate(&cfg).unwrap();
        for net in g.nets() {
            let s = g.net_size(net);
            assert!((2..=cfg.max_net_size).contains(&s), "net size {s}");
        }
    }

    #[test]
    fn planted_cut_is_small() {
        let cfg = GeneratorConfig::new(1024, 1000, 3600).with_seed(5);
        let (_, info) = generate_with_info(&cfg).unwrap();
        // With locality 0.8 and ~6 levels, only ~1/30 of nets should span
        // the root cut; allow generous slack.
        assert!(
            info.planted_cut < 1000 / 8,
            "planted cut {} too large",
            info.planted_cut
        );
        assert!(info.planted_cut > 0);
        assert_eq!(info.mid, 512);
    }

    #[test]
    fn uniform_generator_matches_counts() {
        let cfg = GeneratorConfig::new(200, 210, 700).with_seed(11);
        let g = generate_uniform(&cfg).unwrap();
        assert_eq!(g.num_nodes(), 200);
        assert_eq!(g.num_nets(), 210);
        assert_eq!(g.num_pins(), 700);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate(&GeneratorConfig::new(1, 5, 20)).is_err());
        assert!(generate(&GeneratorConfig::new(10, 0, 0)).is_err());
        assert!(generate(&GeneratorConfig::new(10, 5, 9)).is_err());
        // Too many pins for the cap.
        let mut cfg = GeneratorConfig::new(10, 2, 100);
        cfg.max_net_size = 8;
        assert!(generate(&cfg).is_err());
        let mut cfg = GeneratorConfig::new(10, 5, 12);
        cfg.locality = 1.5;
        assert!(generate(&cfg).is_err());
        let mut cfg = GeneratorConfig::new(10, 5, 12);
        cfg.leaf_size = 1;
        assert!(generate(&cfg).is_err());
        let mut cfg = GeneratorConfig::new(10, 5, 12);
        cfg.max_net_size = 1;
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn range_at_level_partitions_nodes() {
        let n = 100;
        for level in 0..4 {
            let mut covered = 0;
            let mut lo_expected = 0;
            for idx in 0..(1 << level) {
                let lo = idx * n / (1 << level);
                let hi = (idx + 1) * n / (1 << level);
                assert_eq!(lo, lo_expected);
                lo_expected = hi;
                covered += hi - lo;
            }
            assert_eq!(covered, n);
        }
        // Any anchor maps into a range that contains it.
        for anchor in [0, 17, 49, 50, 99] {
            let (lo, hi) = range_at_level(n, 4, 3, anchor);
            assert!((lo..hi).contains(&anchor));
        }
    }

    #[test]
    fn adversarial_is_deterministic_and_degenerate() {
        let g1 = generate_adversarial(7).unwrap();
        let g2 = generate_adversarial(7).unwrap();
        assert_eq!(g1, g2);
        // Across a spread of seeds the generator must actually produce
        // each degenerate feature it advertises.
        let mut saw_single_pin = false;
        let mut saw_isolated = false;
        let mut saw_giant = false;
        let mut saw_fractional = false;
        for seed in 0..64 {
            let g = generate_adversarial(seed).unwrap();
            saw_single_pin |= g.nets().any(|e| g.net_size(e) == 1);
            saw_isolated |= g.nodes().any(|v| g.degree(v) == 0);
            saw_giant |= g.nets().any(|e| g.net_size(e) >= g.num_nodes() - 3);
            saw_fractional |= !g.has_unit_weights() || !g.has_unit_node_weights();
        }
        assert!(saw_single_pin, "no single-pin net in 64 seeds");
        assert!(saw_isolated, "no isolated node in 64 seeds");
        assert!(saw_giant, "no giant net in 64 seeds");
        assert!(saw_fractional, "no fractional weight in 64 seeds");
    }

    #[test]
    fn average_net_size_tracks_ratio() {
        let cfg = GeneratorConfig::new(2000, 2000, 8000).with_seed(13);
        let g = generate(&cfg).unwrap();
        let s = g.stats();
        assert!((s.avg_pins_per_net - 4.0).abs() < 1e-9);
    }
}
