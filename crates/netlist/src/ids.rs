//! Index newtypes for nodes and nets.

use std::fmt;

/// Identifier of a node (cell/component) in a [`Hypergraph`].
///
/// Node ids are dense indices in `0..num_nodes`. The newtype prevents
/// accidental mixing of node and net indices.
///
/// [`Hypergraph`]: crate::Hypergraph
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

/// Identifier of a net (hyperedge) in a [`Hypergraph`].
///
/// Net ids are dense indices in `0..num_nets`.
///
/// [`Hypergraph`]: crate::Hypergraph
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NetId(u32);

macro_rules! impl_id {
    ($t:ident, $doc:literal) => {
        impl $t {
            #[doc = concat!("Creates a new ", $doc, " id from a dense index.")]
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32::MAX"))
            }

            #[doc = concat!("Returns the dense index of this ", $doc, ".")]
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $t {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$t> for u32 {
            #[inline]
            fn from(id: $t) -> u32 {
                id.0
            }
        }

        impl From<$t> for usize {
            #[inline]
            fn from(id: $t) -> usize {
                id.index()
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_id!(NodeId, "node");
impl_id!(NetId, "net");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(id.to_string(), "42");
    }

    #[test]
    fn net_id_roundtrip() {
        let id = NetId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.to_string(), "7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NetId::new(0) < NetId::new(10));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default().index(), 0);
        assert_eq!(NetId::default().index(), 0);
    }
}
