//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Error produced while building, parsing, or generating a netlist.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net referenced a node index `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes declared for the hypergraph.
        num_nodes: usize,
    },
    /// A net weight was non-finite or not strictly positive.
    InvalidNetWeight {
        /// The offending weight value.
        weight: f64,
    },
    /// A node size was non-finite or not strictly positive.
    InvalidNodeWeight {
        /// The offending size value.
        weight: f64,
    },
    /// A net connected fewer than one node after de-duplication.
    EmptyNet,
    /// A parse failure, with a line number (1-based) and message.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A generator configuration that cannot be satisfied.
    InvalidGeneratorConfig {
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node index {node} out of range for {num_nodes} nodes")
            }
            NetlistError::InvalidNetWeight { weight } => {
                write!(f, "net weight {weight} is not finite and positive")
            }
            NetlistError::InvalidNodeWeight { weight } => {
                write!(f, "node size {weight} is not finite and positive")
            }
            NetlistError::EmptyNet => write!(f, "net connects no nodes"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::InvalidGeneratorConfig { message } => {
                write!(f, "invalid generator configuration: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert_eq!(e.to_string(), "node index 9 out of range for 4 nodes");
        assert_eq!(NetlistError::EmptyNet.to_string(), "net connects no nodes");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
