//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Error produced while building, parsing, or generating a netlist.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net referenced a node index `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes declared for the hypergraph.
        num_nodes: usize,
    },
    /// A net weight was non-finite or not strictly positive.
    InvalidNetWeight {
        /// The offending weight value.
        weight: f64,
    },
    /// A node size was non-finite or not strictly positive.
    InvalidNodeWeight {
        /// The offending size value.
        weight: f64,
    },
    /// A net connected fewer than one node after de-duplication.
    EmptyNet,
    /// A parse failure, with a line number (1-based) and message.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A generator configuration that cannot be satisfied.
    InvalidGeneratorConfig {
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// A `.hgb` binary snapshot failed validation.
    Hgb(HgbError),
}

/// Error produced while parsing or validating a `.hgb` binary snapshot.
///
/// Every variant corresponds to a specific way a file can be malformed;
/// the loader is required to return one of these — never panic and never
/// read out of bounds — no matter what bytes it is handed (see the
/// adversarial suite in `tests/hgb_adversarial.rs`).
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum HgbError {
    /// The file is shorter than the structure it claims to contain.
    Truncated {
        /// Bytes required by the header/section being read.
        needed: usize,
        /// Bytes actually present.
        len: usize,
    },
    /// The leading magic bytes are not `PROPHGB\0`.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version tag found in the header.
        version: u32,
    },
    /// The endianness tag does not match the little-endian byte order
    /// `.hgb` files are defined in.
    ForeignEndianness {
        /// Tag found in the header.
        tag: u32,
    },
    /// A header count does not fit the platform / the u32 index space.
    CountOverflow {
        /// Which count overflowed (`"nodes"`, `"nets"`, `"pins"`).
        field: &'static str,
        /// The value found in the header.
        value: u64,
    },
    /// A malformed fixed header field (section count, flags, file length).
    BadHeader {
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// A section-table entry is misaligned, out of bounds, overlapping,
    /// mis-sized, out of order, or missing.
    Section {
        /// Name of the offending section.
        section: &'static str,
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// A CSR offset array is not monotone or does not close at the pin
    /// count.
    Offsets {
        /// Name of the offending offset section.
        section: &'static str,
        /// Index at which monotonicity/closure failed.
        index: usize,
    },
    /// A pin entry references a node/net outside the declared range.
    PinOutOfRange {
        /// Name of the offending pin section.
        section: &'static str,
        /// Index of the offending entry.
        index: usize,
        /// The out-of-range value.
        value: u32,
        /// Exclusive upper bound the value had to satisfy.
        limit: usize,
    },
    /// A stored net or node weight is non-finite or not strictly positive.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// Raw IEEE-754 bits found in the file.
        bits: u64,
    },
    /// The two CSR directions disagree: a node's stored degree does not
    /// match its pin count in the net→node direction.
    DegreeMismatch {
        /// The node whose degree disagrees.
        node: usize,
    },
    /// The optional node-name section is internally inconsistent or not
    /// valid UTF-8.
    BadNames {
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for HgbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HgbError::Truncated { needed, len } => {
                write!(f, "truncated file: need {needed} bytes, have {len}")
            }
            HgbError::BadMagic => write!(f, "bad magic (not a .hgb file)"),
            HgbError::UnsupportedVersion { version } => {
                write!(f, "unsupported format version {version}")
            }
            HgbError::ForeignEndianness { tag } => {
                write!(f, "endianness tag {tag:#010x} is not little-endian")
            }
            HgbError::CountOverflow { field, value } => {
                write!(f, "{field} count {value} exceeds the addressable range")
            }
            HgbError::BadHeader { message } => write!(f, "bad header: {message}"),
            HgbError::Section { section, message } => {
                write!(f, "bad section {section}: {message}")
            }
            HgbError::Offsets { section, index } => {
                write!(f, "offset array {section} broken at index {index}")
            }
            HgbError::PinOutOfRange {
                section,
                index,
                value,
                limit,
            } => write!(
                f,
                "pin {section}[{index}] = {value} out of range (< {limit} required)"
            ),
            HgbError::InvalidWeight { index, bits } => {
                write!(f, "weight {index} (bits {bits:#018x}) is not finite and positive")
            }
            HgbError::DegreeMismatch { node } => {
                write!(f, "CSR directions disagree on the degree of node {node}")
            }
            HgbError::BadNames { message } => write!(f, "bad name section: {message}"),
        }
    }
}

impl Error for HgbError {}

impl From<HgbError> for NetlistError {
    fn from(e: HgbError) -> Self {
        NetlistError::Hgb(e)
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node index {node} out of range for {num_nodes} nodes")
            }
            NetlistError::InvalidNetWeight { weight } => {
                write!(f, "net weight {weight} is not finite and positive")
            }
            NetlistError::InvalidNodeWeight { weight } => {
                write!(f, "node size {weight} is not finite and positive")
            }
            NetlistError::EmptyNet => write!(f, "net connects no nodes"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::InvalidGeneratorConfig { message } => {
                write!(f, "invalid generator configuration: {message}")
            }
            NetlistError::Hgb(e) => write!(f, "hgb: {e}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert_eq!(e.to_string(), "node index 9 out of range for 4 nodes");
        assert_eq!(NetlistError::EmptyNet.to_string(), "net connects no nodes");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
