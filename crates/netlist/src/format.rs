//! Text formats for netlists.
//!
//! Two formats are supported:
//!
//! * **`.hgr`** — the hMETIS hypergraph format: a header line
//!   `<#nets> <#nodes> [fmt]`, then one line per net listing its 1-based
//!   node indices. `fmt = 1` prefixes each net line with an integer or
//!   floating-point weight. Comment lines start with `%`.
//! * **`.netd`** — a small named netlist format used by this suite:
//!   `node <name>` lines declare nodes in order, `net <weight> <name...>`
//!   lines declare nets over previously declared node names.
//!
//! ```
//! use prop_netlist::format;
//!
//! # fn main() -> Result<(), prop_netlist::NetlistError> {
//! let g = format::parse_hgr("2 3\n1 2\n2 3\n")?;
//! assert_eq!(g.num_nets(), 2);
//! let text = format::write_hgr(&g);
//! let g2 = format::parse_hgr(&text)?;
//! assert_eq!(g, g2);
//! # Ok(())
//! # }
//! ```

use crate::error::NetlistError;
use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses a hypergraph from hMETIS `.hgr` text.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input (bad header, bad
/// token, wrong net count) and the builder's errors on semantic problems
/// (out-of-range pins, non-positive weights).
pub fn parse_hgr(text: &str) -> Result<Hypergraph, NetlistError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('%'));

    let (header_line, header) = lines.next().ok_or(NetlistError::Parse {
        line: 1,
        message: "missing header line".into(),
    })?;
    let mut it = header.split_whitespace();
    let nets: usize = parse_token(it.next(), header_line, "net count")?;
    let nodes: usize = parse_token(it.next(), header_line, "node count")?;
    let fmt: u32 = match it.next() {
        None => 0,
        Some(tok) => tok.parse().map_err(|_| NetlistError::Parse {
            line: header_line,
            message: format!("bad format flag {tok:?}"),
        })?,
    };
    if ![0, 1, 10, 11].contains(&fmt) {
        return Err(NetlistError::Parse {
            line: header_line,
            message: format!("unsupported hgr format flag {fmt} (only 0, 1, 10, 11)"),
        });
    }
    let weighted = fmt == 1 || fmt == 11;
    let node_weighted = fmt == 10 || fmt == 11;

    let mut builder = HypergraphBuilder::new(nodes);
    let mut read_nets = 0usize;
    let mut node_weights: Vec<f64> = Vec::new();
    for (line_no, line) in lines {
        if read_nets == nets {
            // hMETIS convention: after the net lines, one node-weight line
            // per node when the format flag says so.
            if !node_weighted || node_weights.len() == nodes {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: format!("more than the declared {nets} nets"),
                });
            }
            let tok = line.split_whitespace().next().ok_or(NetlistError::Parse {
                line: line_no,
                message: "empty node weight line".into(),
            })?;
            let w: f64 = tok.parse().map_err(|_| NetlistError::Parse {
                line: line_no,
                message: format!("bad node weight {tok:?}"),
            })?;
            node_weights.push(w);
            continue;
        }
        let mut toks = line.split_whitespace();
        let weight = if weighted {
            let tok = toks.next().ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: "missing net weight".into(),
            })?;
            tok.parse::<f64>().map_err(|_| NetlistError::Parse {
                line: line_no,
                message: format!("bad net weight {tok:?}"),
            })?
        } else {
            1.0
        };
        let mut pins = Vec::new();
        for tok in toks {
            let raw: usize = tok.parse().map_err(|_| NetlistError::Parse {
                line: line_no,
                message: format!("bad pin index {tok:?}"),
            })?;
            if raw == 0 {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "pin indices are 1-based; found 0".into(),
                });
            }
            pins.push(raw - 1);
        }
        builder.add_net(weight, pins)?;
        read_nets += 1;
    }
    if read_nets != nets {
        return Err(NetlistError::Parse {
            line: 0,
            message: format!("header declared {nets} nets but file has {read_nets}"),
        });
    }
    if node_weighted {
        if node_weights.len() != nodes {
            return Err(NetlistError::Parse {
                line: 0,
                message: format!(
                    "format flag {fmt} requires {nodes} node-weight lines, found {}",
                    node_weights.len()
                ),
            });
        }
        builder.set_node_weights(node_weights)?;
    }
    builder.build()
}

/// Serialises a hypergraph to hMETIS `.hgr` text. The format flag is
/// derived from the content: `1` for non-unit net weights, `10` for
/// non-unit node sizes, `11` for both, omitted when everything is unit.
pub fn write_hgr(graph: &Hypergraph) -> String {
    let weighted = !graph.has_unit_weights();
    let node_weighted = !graph.has_unit_node_weights();
    let mut out = String::new();
    match (weighted, node_weighted) {
        (false, false) => {
            let _ = writeln!(out, "{} {}", graph.num_nets(), graph.num_nodes());
        }
        (true, false) => {
            let _ = writeln!(out, "{} {} 1", graph.num_nets(), graph.num_nodes());
        }
        (false, true) => {
            let _ = writeln!(out, "{} {} 10", graph.num_nets(), graph.num_nodes());
        }
        (true, true) => {
            let _ = writeln!(out, "{} {} 11", graph.num_nets(), graph.num_nodes());
        }
    }
    for net in graph.nets() {
        if weighted {
            let _ = write!(out, "{} ", graph.net_weight(net));
        }
        let pins = graph.pins_of(net);
        for (i, &pin) in pins.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{}", pin.index() + 1);
        }
        out.push('\n');
    }
    if node_weighted {
        for v in graph.nodes() {
            let _ = writeln!(out, "{}", graph.node_weight(v));
        }
    }
    out
}

/// Parses the named `.netd` format.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on unknown directives or undeclared node
/// names, and the builder's errors on semantic problems.
pub fn parse_netd(text: &str) -> Result<Hypergraph, NetlistError> {
    let mut names: Vec<String> = Vec::new();
    let mut node_weights: Vec<f64> = Vec::new();
    let mut index_of: HashMap<String, usize> = HashMap::new();
    let mut nets: Vec<(f64, Vec<usize>, usize)> = Vec::new();

    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("node") => {
                let name = toks.next().ok_or_else(|| NetlistError::Parse {
                    line: line_no,
                    message: "node directive needs a name".into(),
                })?;
                if index_of.contains_key(name) {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: format!("duplicate node name {name:?}"),
                    });
                }
                let weight = match toks.next() {
                    None => 1.0,
                    Some(tok) => tok.parse::<f64>().map_err(|_| NetlistError::Parse {
                        line: line_no,
                        message: format!("bad node weight {tok:?}"),
                    })?,
                };
                index_of.insert(name.to_string(), names.len());
                names.push(name.to_string());
                node_weights.push(weight);
            }
            Some("net") => {
                let wtok = toks.next().ok_or_else(|| NetlistError::Parse {
                    line: line_no,
                    message: "net directive needs a weight".into(),
                })?;
                let weight: f64 = wtok.parse().map_err(|_| NetlistError::Parse {
                    line: line_no,
                    message: format!("bad net weight {wtok:?}"),
                })?;
                let mut pins = Vec::new();
                for name in toks {
                    let &idx = index_of.get(name).ok_or_else(|| NetlistError::Parse {
                        line: line_no,
                        message: format!("undeclared node name {name:?}"),
                    })?;
                    pins.push(idx);
                }
                nets.push((weight, pins, line_no));
            }
            Some(other) => {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: format!("unknown directive {other:?}"),
                });
            }
            None => unreachable!("empty lines are filtered"),
        }
    }

    let mut builder = HypergraphBuilder::new(names.len());
    builder.set_node_names(names);
    if node_weights.iter().any(|&w| w != 1.0) {
        builder.set_node_weights(node_weights)?;
    }
    for (weight, pins, _line) in nets {
        builder.add_net(weight, pins)?;
    }
    builder.build()
}

/// Serialises a hypergraph to the named `.netd` format. Nodes without names
/// are written as `v<index>`; non-unit node sizes are appended to their
/// `node` lines.
pub fn write_netd(graph: &Hypergraph) -> String {
    let mut out = String::new();
    let name = |i: usize| -> String {
        graph
            .node_name(crate::NodeId::new(i))
            .map(str::to_owned)
            .unwrap_or_else(|| format!("v{i}"))
    };
    let node_weighted = !graph.has_unit_node_weights();
    for i in 0..graph.num_nodes() {
        if node_weighted {
            let _ = writeln!(
                out,
                "node {} {}",
                name(i),
                graph.node_weight(crate::NodeId::new(i))
            );
        } else {
            let _ = writeln!(out, "node {}", name(i));
        }
    }
    for net in graph.nets() {
        let _ = write!(out, "net {}", graph.net_weight(net));
        for &pin in graph.pins_of(net) {
            let _ = write!(out, " {}", name(pin.index()));
        }
        out.push('\n');
    }
    out
}

fn parse_token<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, NetlistError> {
    let tok = tok.ok_or_else(|| NetlistError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| NetlistError::Parse {
        line,
        message: format!("bad {what} {tok:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_hgr() {
        let g = parse_hgr("% comment\n3 4\n1 2\n2 3 4\n1 4\n").unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_nets(), 3);
        assert_eq!(g.num_pins(), 7);
        assert!(g.has_unit_weights());
    }

    #[test]
    fn parse_weighted_hgr() {
        let g = parse_hgr("2 2 1\n3.5 1 2\n1 1 2\n").unwrap();
        assert_eq!(g.net_weight(crate::NetId::new(0)), 3.5);
        assert_eq!(g.net_weight(crate::NetId::new(1)), 1.0);
    }

    #[test]
    fn hgr_roundtrip_unweighted() {
        let g = parse_hgr("3 4\n1 2\n2 3 4\n1 4\n").unwrap();
        let g2 = parse_hgr(&write_hgr(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn hgr_roundtrip_weighted() {
        let g = parse_hgr("2 3 1\n2.25 1 2 3\n1.5 2 3\n").unwrap();
        let text = write_hgr(&g);
        assert!(text.starts_with("2 3 1"));
        let g2 = parse_hgr(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn hgr_node_weights_roundtrip() {
        let src = "2 3 10\n1 2\n2 3\n2\n1\n4.5\n";
        let g = parse_hgr(src).unwrap();
        assert!(!g.has_unit_node_weights());
        assert_eq!(g.node_weight(crate::NodeId::new(2)), 4.5);
        let text = write_hgr(&g);
        assert!(text.starts_with("2 3 10"));
        assert_eq!(parse_hgr(&text).unwrap(), g);
    }

    #[test]
    fn hgr_both_weights_roundtrip() {
        let src = "1 2 11\n2.5 1 2\n3\n1\n";
        let g = parse_hgr(src).unwrap();
        assert_eq!(g.net_weight(crate::NetId::new(0)), 2.5);
        assert_eq!(g.node_weight(crate::NodeId::new(0)), 3.0);
        let text = write_hgr(&g);
        assert!(text.starts_with("1 2 11"));
        assert_eq!(parse_hgr(&text).unwrap(), g);
    }

    #[test]
    fn hgr_node_weight_errors() {
        // Too few node-weight lines.
        assert!(parse_hgr("1 2 10\n1 2\n1\n").is_err());
        // Too many.
        assert!(parse_hgr("1 2 10\n1 2\n1\n1\n1\n").is_err());
        // Bad weight token.
        assert!(parse_hgr("1 2 10\n1 2\nx\n1\n").is_err());
        // Non-positive weight surfaces as a builder error.
        assert!(matches!(
            parse_hgr("1 2 10\n1 2\n0\n1\n"),
            Err(NetlistError::InvalidNodeWeight { .. })
        ));
    }

    #[test]
    fn hgr_errors() {
        assert!(matches!(parse_hgr(""), Err(NetlistError::Parse { .. })));
        assert!(matches!(parse_hgr("x 3"), Err(NetlistError::Parse { .. })));
        // Wrong number of nets.
        assert!(parse_hgr("2 3\n1 2\n").is_err());
        assert!(parse_hgr("1 3\n1 2\n1 3\n").is_err());
        // Zero pin index.
        assert!(parse_hgr("1 3\n0 1\n").is_err());
        // Unsupported format flag.
        assert!(parse_hgr("1 3 11\n1 2\n").is_err());
        // Out-of-range pin surfaces as a builder error.
        assert!(matches!(
            parse_hgr("1 2\n1 3\n"),
            Err(NetlistError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn netd_roundtrip_with_names() {
        let src = "node a\nnode b\nnode c\nnet 1 a b\nnet 2.5 a b c\n";
        let g = parse_netd(src).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.node_name(crate::NodeId::new(2)), Some("c"));
        let g2 = parse_netd(&write_netd(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn netd_errors() {
        assert!(parse_netd("node a\nnode a\n").is_err());
        assert!(parse_netd("net 1 ghost\n").is_err());
        assert!(parse_netd("frobnicate\n").is_err());
        assert!(parse_netd("node a\nnet x a\n").is_err());
        assert!(parse_netd("node\n").is_err());
        assert!(parse_netd("node a\nnet\n").is_err());
    }

    #[test]
    fn netd_node_weights_roundtrip() {
        let src = "node a 2.5\nnode b\nnet 1 a b\n";
        let g = parse_netd(src).unwrap();
        assert_eq!(g.node_weight(crate::NodeId::new(0)), 2.5);
        assert_eq!(g.node_weight(crate::NodeId::new(1)), 1.0);
        let text = write_netd(&g);
        assert!(text.contains("node a 2.5"));
        assert_eq!(parse_netd(&text).unwrap(), g);
        // Bad weight token.
        assert!(parse_netd("node a x\n").is_err());
    }

    #[test]
    fn netd_comments_and_blanks_ignored() {
        let g = parse_netd("# hello\n\nnode a\nnode b\nnet 1 a b\n").unwrap();
        assert_eq!(g.num_nets(), 1);
    }
}
