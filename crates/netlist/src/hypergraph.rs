//! The immutable CSR hypergraph and its builder.

use crate::error::NetlistError;
use crate::ids::{NetId, NodeId};
use crate::stats::Stats;

/// An immutable hypergraph (circuit netlist) in compressed sparse row form.
///
/// Both directions of the pin relation are stored: for every node the list
/// of nets it is connected to ([`nets_of`]), and for every net the list of
/// nodes it connects ([`pins_of`]). Nets carry a strictly positive, finite
/// `f64` weight (the paper's net cost `c(nt)`; 1.0 for pure min-cut,
/// criticality-derived for timing-driven partitioning).
///
/// Construct via [`HypergraphBuilder`].
///
/// [`nets_of`]: Hypergraph::nets_of
/// [`pins_of`]: Hypergraph::pins_of
#[derive(Clone, PartialEq, Debug)]
pub struct Hypergraph {
    /// `node_offsets[v]..node_offsets[v+1]` indexes `node_pins`.
    node_offsets: Vec<u32>,
    /// Concatenated incident-net lists, one slice per node.
    node_pins: Vec<NetId>,
    /// `net_offsets[e]..net_offsets[e+1]` indexes `net_pins`.
    net_offsets: Vec<u32>,
    /// Concatenated pin lists, one slice per net.
    net_pins: Vec<NodeId>,
    /// Per-net cost `c(nt)`, finite and `> 0`.
    net_weights: Vec<f64>,
    /// Per-node size/area, finite and `> 0`. `None` means all nodes have
    /// unit size (the paper's default assumption).
    node_weights: Option<Vec<f64>>,
    /// Optional human-readable node names (e.g. from a named netlist file).
    node_names: Option<Vec<String>>,
}

impl Hypergraph {
    /// Assembles a hypergraph directly from pre-validated CSR arrays,
    /// bypassing the builder's counting-sort transpose. Used by the `.hgb`
    /// loader, which stores *both* CSR directions in the file; the caller
    /// (the hgb module) is responsible for having validated monotonicity,
    /// bounds, weights, and degree agreement between the directions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_validated_parts(
        node_offsets: Vec<u32>,
        node_pins: Vec<NetId>,
        net_offsets: Vec<u32>,
        net_pins: Vec<NodeId>,
        net_weights: Vec<f64>,
        node_weights: Option<Vec<f64>>,
        node_names: Option<Vec<String>>,
    ) -> Hypergraph {
        Hypergraph {
            node_offsets,
            node_pins,
            net_offsets,
            net_pins,
            net_weights,
            node_weights,
            node_names,
        }
    }

    /// Raw node→net CSR offsets (`num_nodes + 1` entries). Snapshot access
    /// for the `.hgb` writer.
    pub(crate) fn raw_node_offsets(&self) -> &[u32] {
        &self.node_offsets
    }

    /// Raw concatenated incident-net lists.
    pub(crate) fn raw_node_pins(&self) -> &[NetId] {
        &self.node_pins
    }

    /// Raw net→node CSR offsets (`num_nets + 1` entries).
    pub(crate) fn raw_net_offsets(&self) -> &[u32] {
        &self.net_offsets
    }

    /// Raw concatenated pin lists.
    pub(crate) fn raw_net_pins(&self) -> &[NodeId] {
        &self.net_pins
    }

    /// Raw per-net weights.
    pub(crate) fn raw_net_weights(&self) -> &[f64] {
        &self.net_weights
    }

    /// Raw per-node weights, if any were set.
    pub(crate) fn raw_node_weights(&self) -> Option<&[f64]> {
        self.node_weights.as_deref()
    }

    /// Raw node names, if any were set.
    pub(crate) fn raw_node_names(&self) -> Option<&[String]> {
        self.node_names.as_deref()
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_offsets.len() - 1
    }

    /// Number of nets `e`.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_offsets.len() - 1
    }

    /// Total number of pins `m` (sum of net sizes, equivalently sum of node
    /// degrees).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// Nets incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn nets_of(&self, node: NodeId) -> &[NetId] {
        let i = node.index();
        let lo = self.node_offsets[i] as usize;
        let hi = self.node_offsets[i + 1] as usize;
        &self.node_pins[lo..hi]
    }

    /// Nodes connected by `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[inline]
    pub fn pins_of(&self, net: NetId) -> &[NodeId] {
        let i = net.index();
        let lo = self.net_offsets[i] as usize;
        let hi = self.net_offsets[i + 1] as usize;
        &self.net_pins[lo..hi]
    }

    /// Weight (cost `c(nt)`) of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[inline]
    pub fn net_weight(&self, net: NetId) -> f64 {
        self.net_weights[net.index()]
    }

    /// Number of nets incident to `node` (its pin count `p(u)`).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.nets_of(node).len()
    }

    /// Number of pins on `net` (its size `q(nt)`).
    #[inline]
    pub fn net_size(&self, net: NetId) -> usize {
        self.pins_of(net).len()
    }

    /// Returns `true` if every net has unit weight, enabling the integral
    /// bucket-list gain structure of the classic FM implementation.
    pub fn has_unit_weights(&self) -> bool {
        self.net_weights.iter().all(|&w| w == 1.0)
    }

    /// Returns `true` if every net weight is a (positive) integer. FM
    /// gains are then integral too, so the bucket-list gain structure
    /// still applies — the case for coarsened circuits, whose merged net
    /// weights are sums of the fine unit costs.
    pub fn has_integral_weights(&self) -> bool {
        self.net_weights.iter().all(|&w| w.fract() == 0.0)
    }

    /// Size (area) of `node`; 1.0 unless node weights were set.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn node_weight(&self, node: NodeId) -> f64 {
        match &self.node_weights {
            Some(w) => w[node.index()],
            None => 1.0,
        }
    }

    /// Returns `true` if every node has unit size (the paper's default
    /// assumption; count-based balance then equals weight-based balance).
    pub fn has_unit_node_weights(&self) -> bool {
        self.node_weights.is_none() || self.node_weights.as_ref().is_some_and(|w| w.iter().all(|&x| x == 1.0))
    }

    /// Sum of all node sizes.
    pub fn total_node_weight(&self) -> f64 {
        match &self.node_weights {
            Some(w) => w.iter().sum(),
            None => self.num_nodes() as f64,
        }
    }

    /// The largest node size.
    pub fn max_node_weight(&self) -> f64 {
        match &self.node_weights {
            Some(w) => w.iter().cloned().fold(0.0, f64::max),
            None => {
                if self.num_nodes() == 0 {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// The name of `node`, if names were provided at build/parse time.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.node_names
            .as_ref()
            .map(|names| names[node.index()].as_str())
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::new)
    }

    /// Iterator over all net ids `0..e`.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + '_ {
        (0..self.num_nets()).map(NetId::new)
    }

    /// Iterator over the distinct neighbors of `node` — nodes sharing at
    /// least one net with it. Each neighbor is yielded exactly once.
    ///
    /// This is the paper's neighbor relation: `u` and `v` are neighbors when
    /// connected by a common net; the average neighbor count is
    /// `d = p(q − 1)`.
    pub fn neighbors(&self, node: NodeId) -> Neighbors<'_> {
        Neighbors::new(self, node)
    }

    /// Size statistics of this hypergraph, in the paper's notation.
    pub fn stats(&self) -> Stats {
        Stats::of(self)
    }

    /// Sum of all net weights — an upper bound on any cut cost.
    pub fn total_net_weight(&self) -> f64 {
        self.net_weights.iter().sum()
    }

    /// Extracts the sub-hypergraph induced by `nodes`: nets are restricted
    /// to member pins and kept only if at least two pins remain (smaller
    /// remnants can never be cut). Net weights, node weights, and node
    /// names carry over. Returns the subgraph and the mapping from new
    /// node ids back to the originals (`back[new] = old`).
    ///
    /// Used by recursive k-way bisection, where each half is partitioned
    /// further.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains an out-of-range or duplicate id.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Hypergraph, Vec<NodeId>) {
        let mut new_id = vec![u32::MAX; self.num_nodes()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(
                new_id[v.index()] == u32::MAX,
                "duplicate node {v} in induced_subgraph"
            );
            new_id[v.index()] = u32::try_from(i).expect("subgraph too large");
        }
        let mut builder = HypergraphBuilder::new(nodes.len());
        let mut pins = Vec::new();
        for net in self.nets() {
            pins.clear();
            pins.extend(self.pins_of(net).iter().filter_map(|&v| {
                let id = new_id[v.index()];
                (id != u32::MAX).then_some(id as usize)
            }));
            if pins.len() >= 2 {
                builder
                    .add_net(self.net_weight(net), pins.iter().copied())
                    .expect("validated pins");
            }
        }
        if self.node_weights.is_some() {
            builder
                .set_node_weights(nodes.iter().map(|&v| self.node_weight(v)).collect())
                .expect("weights already validated");
        }
        if self.node_names.is_some() {
            builder.set_node_names(
                nodes
                    .iter()
                    .map(|&v| {
                        self.node_name(v)
                            .map(str::to_owned)
                            .unwrap_or_default()
                    })
                    .collect(),
            );
        }
        (
            builder.build().expect("induced subgraph is well-formed"),
            nodes.to_vec(),
        )
    }
}

/// Iterator over the distinct neighbors of a node.
///
/// Created by [`Hypergraph::neighbors`]. Allocates a visited bitmap; prefer
/// batching neighbor traversals where possible.
#[derive(Debug)]
pub struct Neighbors<'a> {
    graph: &'a Hypergraph,
    center: NodeId,
    seen: Vec<bool>,
    net_pos: usize,
    pin_pos: usize,
}

impl<'a> Neighbors<'a> {
    fn new(graph: &'a Hypergraph, center: NodeId) -> Self {
        Neighbors {
            graph,
            center,
            seen: vec![false; graph.num_nodes()],
            net_pos: 0,
            pin_pos: 0,
        }
    }
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let nets = self.graph.nets_of(self.center);
        while self.net_pos < nets.len() {
            let pins = self.graph.pins_of(nets[self.net_pos]);
            while self.pin_pos < pins.len() {
                let v = pins[self.pin_pos];
                self.pin_pos += 1;
                if v != self.center && !self.seen[v.index()] {
                    self.seen[v.index()] = true;
                    return Some(v);
                }
            }
            self.net_pos += 1;
            self.pin_pos = 0;
        }
        None
    }
}

/// Incremental builder for [`Hypergraph`].
///
/// # Example
///
/// ```
/// use prop_netlist::HypergraphBuilder;
///
/// # fn main() -> Result<(), prop_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new(3);
/// b.add_net(1.0, [0, 1])?;
/// b.add_net(2.5, [0, 1, 2])?;
/// let g = b.build()?;
/// assert_eq!(g.num_pins(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    num_nodes: usize,
    net_offsets: Vec<u32>,
    net_pins: Vec<NodeId>,
    net_weights: Vec<f64>,
    node_weights: Option<Vec<f64>>,
    node_names: Option<Vec<String>>,
    scratch_mark: Vec<u32>,
    epoch: u32,
}

impl HypergraphBuilder {
    /// Creates a builder for a hypergraph over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        HypergraphBuilder {
            num_nodes,
            net_offsets: vec![0],
            net_pins: Vec::new(),
            net_weights: Vec::new(),
            node_weights: None,
            node_names: None,
            scratch_mark: vec![0; num_nodes],
            epoch: 0,
        }
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Attaches node sizes (areas) for the weighted balance criterion.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNodeWeight`] if any size is
    /// non-finite or not strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != num_nodes`.
    pub fn set_node_weights(&mut self, weights: Vec<f64>) -> Result<&mut Self, NetlistError> {
        assert_eq!(
            weights.len(),
            self.num_nodes,
            "node weight count must equal node count"
        );
        if let Some(&bad) = weights.iter().find(|w| !(w.is_finite() && **w > 0.0)) {
            return Err(NetlistError::InvalidNodeWeight { weight: bad });
        }
        self.node_weights = Some(weights);
        Ok(self)
    }

    /// Attaches human-readable node names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != num_nodes`.
    pub fn set_node_names(&mut self, names: Vec<String>) -> &mut Self {
        assert_eq!(
            names.len(),
            self.num_nodes,
            "node name count must equal node count"
        );
        self.node_names = Some(names);
        self
    }

    /// Adds a net with weight `weight` connecting the given node indices.
    /// Duplicate pins within a net are silently de-duplicated (a cell with
    /// two pins on the same net behaves as one connection for min-cut).
    ///
    /// Returns the id the new net will have.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::InvalidNetWeight`] if `weight` is not finite and
    ///   strictly positive.
    /// * [`NetlistError::NodeOutOfRange`] if any pin index is `>= num_nodes`.
    /// * [`NetlistError::EmptyNet`] if the pin list is empty.
    pub fn add_net<I>(&mut self, weight: f64, pins: I) -> Result<NetId, NetlistError>
    where
        I: IntoIterator<Item = usize>,
    {
        if !(weight.is_finite() && weight > 0.0) {
            return Err(NetlistError::InvalidNetWeight { weight });
        }
        let id = NetId::new(self.net_weights.len());
        self.epoch += 1;
        let start = self.net_pins.len();
        for pin in pins {
            if pin >= self.num_nodes {
                self.net_pins.truncate(start);
                return Err(NetlistError::NodeOutOfRange {
                    node: pin,
                    num_nodes: self.num_nodes,
                });
            }
            if self.scratch_mark[pin] != self.epoch {
                self.scratch_mark[pin] = self.epoch;
                self.net_pins.push(NodeId::new(pin));
            }
        }
        if self.net_pins.len() == start {
            return Err(NetlistError::EmptyNet);
        }
        self.net_offsets
            .push(u32::try_from(self.net_pins.len()).expect("pin count exceeds u32::MAX"));
        self.net_weights.push(weight);
        Ok(id)
    }

    /// Finalises the builder into an immutable [`Hypergraph`], constructing
    /// the node → nets direction of the pin relation.
    ///
    /// # Errors
    ///
    /// Currently infallible for a builder whose `add_net` calls all
    /// succeeded; the `Result` return leaves room for global validation.
    pub fn build(self) -> Result<Hypergraph, NetlistError> {
        let n = self.num_nodes;
        // Counting sort of pins by node to build the transposed CSR.
        let mut degree = vec![0u32; n];
        for &pin in &self.net_pins {
            degree[pin.index()] += 1;
        }
        let mut node_offsets = vec![0u32; n + 1];
        for v in 0..n {
            node_offsets[v + 1] = node_offsets[v] + degree[v];
        }
        let mut cursor: Vec<u32> = node_offsets[..n].to_vec();
        let mut node_pins = vec![NetId::default(); self.net_pins.len()];
        for net in 0..self.net_weights.len() {
            let lo = self.net_offsets[net] as usize;
            let hi = self.net_offsets[net + 1] as usize;
            for &pin in &self.net_pins[lo..hi] {
                let slot = cursor[pin.index()];
                node_pins[slot as usize] = NetId::new(net);
                cursor[pin.index()] += 1;
            }
        }
        Ok(Hypergraph {
            node_offsets,
            node_pins,
            net_offsets: self.net_offsets,
            net_pins: self.net_pins,
            net_weights: self.net_weights,
            node_weights: self.node_weights,
            node_names: self.node_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        // Three 2-pin nets forming a triangle plus one 3-pin net.
        let mut b = HypergraphBuilder::new(3);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [2, 0]).unwrap();
        b.add_net(2.0, [0, 1, 2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_nets(), 4);
        assert_eq!(g.num_pins(), 9);
        assert!(!g.has_unit_weights());
        assert_eq!(g.total_net_weight(), 5.0);
    }

    #[test]
    fn incidence_is_consistent_both_ways() {
        let g = triangle();
        for net in g.nets() {
            for &v in g.pins_of(net) {
                assert!(g.nets_of(v).contains(&net));
            }
        }
        for v in g.nodes() {
            for &net in g.nets_of(v) {
                assert!(g.pins_of(net).contains(&v));
            }
        }
    }

    #[test]
    fn degrees_and_sizes() {
        let g = triangle();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
        assert_eq!(g.net_size(NetId::new(3)), 3);
        assert_eq!(g.net_weight(NetId::new(3)), 2.0);
    }

    #[test]
    fn neighbors_are_distinct() {
        let g = triangle();
        let mut nb: Vec<usize> = g.neighbors(NodeId::new(0)).map(NodeId::index).collect();
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 2]);
    }

    #[test]
    fn duplicate_pins_are_deduplicated() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1, 0, 1, 0]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.net_size(NetId::new(0)), 2);
    }

    #[test]
    fn out_of_range_pin_is_rejected_and_builder_recovers() {
        let mut b = HypergraphBuilder::new(2);
        let err = b.add_net(1.0, [0, 5]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            }
        );
        // Builder state must not be corrupted by the failed net.
        b.add_net(1.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_nets(), 1);
        assert_eq!(g.num_pins(), 2);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let mut b = HypergraphBuilder::new(2);
        assert!(matches!(
            b.add_net(0.0, [0, 1]),
            Err(NetlistError::InvalidNetWeight { .. })
        ));
        assert!(matches!(
            b.add_net(f64::NAN, [0, 1]),
            Err(NetlistError::InvalidNetWeight { .. })
        ));
        assert!(matches!(
            b.add_net(-1.0, [0, 1]),
            Err(NetlistError::InvalidNetWeight { .. })
        ));
        assert!(matches!(
            b.add_net(f64::INFINITY, [0, 1]),
            Err(NetlistError::InvalidNetWeight { .. })
        ));
    }

    #[test]
    fn empty_net_is_rejected() {
        let mut b = HypergraphBuilder::new(2);
        assert_eq!(b.add_net(1.0, []), Err(NetlistError::EmptyNet));
    }

    #[test]
    fn single_pin_net_is_allowed() {
        // Degenerate but legal: some benchmark formats contain them.
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [1]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.net_size(NetId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(0)), 0);
    }

    #[test]
    fn node_names_roundtrip() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1]).unwrap();
        b.set_node_names(vec!["a".into(), "b".into()]);
        let g = b.build().unwrap();
        assert_eq!(g.node_name(NodeId::new(1)), Some("b"));
        let g2 = triangle();
        assert_eq!(g2.node_name(NodeId::new(0)), None);
    }

    #[test]
    fn empty_hypergraph_is_fine() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_nets(), 0);
        assert_eq!(g.num_pins(), 0);
    }

    fn triangle_stats_graph() -> Hypergraph {
        triangle()
    }

    #[test]
    fn nodes_nets_iterators_are_exact() {
        let g = triangle_stats_graph();
        assert_eq!(g.nodes().len(), 3);
        assert_eq!(g.nets().len(), 4);
    }

    #[test]
    fn default_node_weights_are_unit() {
        let g = triangle();
        assert!(g.has_unit_node_weights());
        assert_eq!(g.node_weight(NodeId::new(1)), 1.0);
        assert_eq!(g.total_node_weight(), 3.0);
        assert_eq!(g.max_node_weight(), 1.0);
    }

    #[test]
    fn custom_node_weights_roundtrip() {
        let mut b = HypergraphBuilder::new(3);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.set_node_weights(vec![2.0, 0.5, 4.0]).unwrap();
        let g = b.build().unwrap();
        assert!(!g.has_unit_node_weights());
        assert_eq!(g.node_weight(NodeId::new(2)), 4.0);
        assert_eq!(g.total_node_weight(), 6.5);
        assert_eq!(g.max_node_weight(), 4.0);
    }

    #[test]
    fn explicit_unit_node_weights_count_as_unit() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1]).unwrap();
        b.set_node_weights(vec![1.0, 1.0]).unwrap();
        assert!(b.build().unwrap().has_unit_node_weights());
    }

    #[test]
    fn invalid_node_weights_rejected() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1]).unwrap();
        assert!(matches!(
            b.set_node_weights(vec![1.0, 0.0]),
            Err(NetlistError::InvalidNodeWeight { .. })
        ));
        assert!(matches!(
            b.set_node_weights(vec![f64::NAN, 1.0]),
            Err(NetlistError::InvalidNodeWeight { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "weight count")]
    fn node_weight_length_mismatch_panics() {
        let mut b = HypergraphBuilder::new(2);
        let _ = b.set_node_weights(vec![1.0]);
    }

    #[test]
    fn induced_subgraph_restricts_nets() {
        // Chain 0-1-2-3 plus a 3-pin net {0,1,3}.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(2.0, [0, 1, 3]).unwrap();
        let g = b.build().unwrap();
        let (sub, back) = g.induced_subgraph(&[NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
        assert_eq!(sub.num_nodes(), 3);
        // Surviving nets: {0,1} and {0,1,3}; {1,2} and {2,3} collapse.
        assert_eq!(sub.num_nets(), 2);
        assert_eq!(sub.net_weight(NetId::new(1)), 2.0);
        assert_eq!(back, vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn induced_subgraph_carries_weights_and_names() {
        let mut b = HypergraphBuilder::new(3);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.set_node_weights(vec![1.0, 2.0, 3.0]).unwrap();
        b.set_node_names(vec!["x".into(), "y".into(), "z".into()]);
        let g = b.build().unwrap();
        let (sub, _) = g.induced_subgraph(&[NodeId::new(2), NodeId::new(0)]);
        assert_eq!(sub.node_weight(NodeId::new(0)), 3.0);
        assert_eq!(sub.node_name(NodeId::new(0)), Some("z"));
        assert_eq!(sub.node_name(NodeId::new(1)), Some("x"));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        let _ = g.induced_subgraph(&[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn empty_graph_weight_queries() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        assert_eq!(g.total_node_weight(), 0.0);
        assert_eq!(g.max_node_weight(), 0.0);
        assert!(g.has_unit_node_weights());
    }
}
