//! Hypergraph netlist substrate for the PROP partitioning suite.
//!
//! A VLSI circuit is modelled as a hypergraph `G = (V, E)`: nodes are cells
//! or components, hyperedges ("nets") connect two or more nodes. This crate
//! provides:
//!
//! * [`Hypergraph`] — an immutable, cache-friendly CSR representation with
//!   both directions of the pin relation (node → nets, net → nodes),
//!   constructed through [`HypergraphBuilder`].
//! * [`Stats`] — the size parameters used throughout the DAC-96 paper
//!   (`n`, `e`, `p`, `q`, `d`, `m`).
//! * [`mod@format`] — parsing and writing of the hMETIS-style `.hgr` text format
//!   and a small named netlist format.
//! * [`generate`] — a seeded synthetic circuit generator with planted
//!   hierarchical cluster structure, used as a stand-in for the ACM/SIGDA
//!   benchmark circuits (which are not redistributable).
//! * [`suite`] — the 16 circuit profiles of Table 1 of the paper, realised
//!   as deterministic synthetic proxies with identical node/net/pin counts.
//!
//! # Example
//!
//! ```
//! use prop_netlist::{HypergraphBuilder, NodeId};
//!
//! # fn main() -> Result<(), prop_netlist::NetlistError> {
//! let mut b = HypergraphBuilder::new(4);
//! b.add_net(1.0, [0, 1, 2])?;
//! b.add_net(1.0, [2, 3])?;
//! let g = b.build()?;
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_nets(), 2);
//! assert_eq!(g.num_pins(), 5);
//! assert_eq!(g.nets_of(NodeId::new(2)).len(), 2);
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the one unsafe-containing module (the `.hgb`
// mmap binding + slice reinterpretation in `hgb::raw`) opts back in with
// a scoped `#[allow(unsafe_code)]`; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod format;
pub mod generate;
pub mod hgb;
mod hypergraph;
mod ids;
mod stats;
pub mod suite;

pub use error::{HgbError, NetlistError};
pub use hgb::{HgbFile, HgbView, LoadMode};
pub use hypergraph::{Hypergraph, HypergraphBuilder, Neighbors};
pub use ids::{NetId, NodeId};
pub use stats::Stats;
