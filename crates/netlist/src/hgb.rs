//! `.hgb` — the zero-copy binary CSR snapshot format.
//!
//! A `.hgb` file is a single little-endian image of a [`Hypergraph`]: a
//! fixed 64-byte header, a section table, and the CSR arrays (both pin
//! directions, weights, optional node sizes and names) stored as aligned
//! `u32`/`u64` slices. Because the file holds *both* CSR directions, a
//! load never re-runs the builder's counting-sort transpose: the arrays
//! are validated and used as-is.
//!
//! Two load paths exist:
//!
//! * [`parse_hgb`] — a copying parser (`u32::from_le_bytes` loops) that
//!   works on any buffer, any alignment, and any host endianness. This is
//!   the portable slow path and the reference semantics.
//! * [`HgbView`] — the zero-copy fast path: structural validation is
//!   O(header), after which the accessors hand out `&[u32]`/`&[u64]`
//!   slices borrowed straight from the underlying bytes. Requires an
//!   8-byte-aligned buffer (which [`HgbFile`] always provides) and a
//!   little-endian host.
//!
//! [`HgbFile`] owns the bytes: on unix it memory-maps the file through a
//! local `extern "C"` declaration of `mmap(2)` (no crates involved), and
//! everywhere else — or when the map fails — it falls back to reading the
//! file into an 8-byte-aligned heap buffer. [`load_hgb`] composes the two
//! into the one-call "file path → `Hypergraph` + load report" entry the
//! CLI and the daemon store use.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"PROPHGB\0"
//!      8     4  version               (= 1)
//!     12     4  endianness tag        (= 0x0102_0304 read as LE)
//!     16     4  flags                 (bit 0: node weights, bit 1: names)
//!     20     4  section count
//!     24     8  num_nodes  n
//!     32     8  num_nets   e
//!     40     8  num_pins   m
//!     48     8  file length in bytes
//!     56     8  reserved   (= 0)
//!     64     -  section table: count x { kind u32, pad u32, off u64, len u64 }
//!      -     -  sections, each 8-byte aligned, in kind order
//! ```
//!
//! Sections (kind → content): 1 node_offsets `(n+1)×u32`, 2 node_pins
//! `m×u32`, 3 net_offsets `(e+1)×u32`, 4 net_pins `m×u32`, 5 net_weights
//! `e×u64` (IEEE-754 bits), 6 node_weights `n×u64` (optional), 7
//! name_offsets `(n+1)×u32` (optional), 8 name_bytes (UTF-8, optional).

use crate::error::{HgbError, NetlistError};
use crate::hypergraph::Hypergraph;
use crate::ids::{NetId, NodeId};
use std::fmt;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::time::Instant;

/// Leading magic bytes of every `.hgb` file.
pub const HGB_MAGIC: [u8; 8] = *b"PROPHGB\0";
/// Current format version.
pub const HGB_VERSION: u32 = 1;
/// Endianness tag as read by a little-endian `u32` load of the bytes
/// `01 02 03 04`. A big-endian writer would produce `0x0403_0201`.
pub const HGB_ENDIAN_TAG: u32 = 0x0403_0201;

const HEADER_LEN: usize = 64;
const TABLE_ENTRY_LEN: usize = 24;
const FLAG_NODE_WEIGHTS: u32 = 1;
const FLAG_NODE_NAMES: u32 = 2;

const KIND_NODE_OFFSETS: u32 = 1;
const KIND_NODE_PINS: u32 = 2;
const KIND_NET_OFFSETS: u32 = 3;
const KIND_NET_PINS: u32 = 4;
const KIND_NET_WEIGHTS: u32 = 5;
const KIND_NODE_WEIGHTS: u32 = 6;
const KIND_NAME_OFFSETS: u32 = 7;
const KIND_NAME_BYTES: u32 = 8;

const SECTION_NAMES: [&str; 8] = [
    "node_offsets",
    "node_pins",
    "net_offsets",
    "net_pins",
    "net_weights",
    "node_weights",
    "name_offsets",
    "name_bytes",
];

fn section_name(kind: u32) -> &'static str {
    SECTION_NAMES[(kind as usize) - 1]
}

/// Unsafe-containing primitives, quarantined: the raw `mmap(2)` binding
/// and the alignment-checked slice reinterpretations. Everything else in
/// this module (and crate) is `deny(unsafe_code)`-clean.
#[allow(unsafe_code)]
mod raw {
    /// Reinterprets an 8-byte-aligned little-endian byte run as `&[u32]`.
    ///
    /// Returns `None` unless the base pointer is 4-byte aligned and the
    /// length is a multiple of 4. Only meaningful on little-endian hosts;
    /// callers gate on that.
    pub(super) fn cast_u32(bytes: &[u8]) -> Option<&[u32]> {
        if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
            || !bytes.len().is_multiple_of(4)
        {
            return None;
        }
        // SAFETY: alignment and length were just checked; u32 has no
        // invalid bit patterns; the lifetime is inherited from `bytes`.
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
    }

    /// Reinterprets an 8-byte-aligned little-endian byte run as `&[u64]`.
    pub(super) fn cast_u64(bytes: &[u8]) -> Option<&[u64]> {
        if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>())
            || !bytes.len().is_multiple_of(8)
        {
            return None;
        }
        // SAFETY: as in `cast_u32`.
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
    }

    /// Degree histogram with the per-increment bounds check elided; this
    /// is the hottest loop of deep validation (random access over the
    /// whole node range). The caller must have verified every pin index
    /// against `counts.len()` first (`check_pins` does, as a vectorized
    /// max-scan). Counts cannot overflow: the total increment count is
    /// the pin count, which fits `u32` by format construction.
    pub(super) fn histogram_into(pins: &[u32], counts: &mut [u32]) {
        for &p in pins {
            debug_assert!((p as usize) < counts.len());
            // SAFETY: every pin was bounds-checked against the node count
            // (== counts.len()) by the preceding max-scan.
            unsafe { *counts.get_unchecked_mut(p as usize) += 1 }
        }
    }

    /// The byte view of a `u64` heap buffer (used so the buffered fallback
    /// is 8-byte aligned just like a page-aligned mapping).
    pub(super) fn words_as_bytes(words: &[u64]) -> &[u8] {
        // SAFETY: every u64 is 8 valid bytes; alignment only loosens.
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
    }

    /// Mutable byte view of a `u64` heap buffer, for reading a file into
    /// aligned storage.
    pub(super) fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
        let len = words.len() * 8;
        // SAFETY: any byte pattern is a valid u64, so writes through the
        // view cannot create an invalid value.
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) }
    }

    /// A read-only `mmap(2)` of a whole file, on unix only, declared
    /// locally so no crate dependency is needed. 64-bit `off_t` is
    /// assumed (true for every tier-1 target; the caller falls back to a
    /// buffered read when the map fails anyway).
    #[cfg(unix)]
    pub(super) mod sys {
        use std::ffi::c_void;
        use std::fs::File;
        use std::os::unix::io::AsRawFd;

        extern "C" {
            fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut c_void;
            fn munmap(addr: *mut c_void, len: usize) -> i32;
        }

        const PROT_READ: i32 = 0x1;
        const MAP_PRIVATE: i32 = 0x2;

        /// An owned private read-only mapping; unmapped on drop.
        pub(crate) struct Mapping {
            ptr: *mut c_void,
            len: usize,
        }

        // SAFETY: the mapping is private and read-only; the raw pointer is
        // owned exclusively by this struct and only exposed as `&[u8]`.
        unsafe impl Send for Mapping {}
        unsafe impl Sync for Mapping {}

        impl Mapping {
            /// Maps `len` bytes of `file`; `None` when the kernel refuses
            /// (including the always-invalid `len == 0`).
            pub(crate) fn map(file: &File, len: usize) -> Option<Mapping> {
                if len == 0 {
                    return None;
                }
                // SAFETY: a fresh private read-only mapping of an open fd;
                // all arguments are well-formed, failure is checked below.
                let ptr = unsafe {
                    mmap(
                        std::ptr::null_mut(),
                        len,
                        PROT_READ,
                        MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr.is_null() || ptr as isize == -1 {
                    return None;
                }
                Some(Mapping { ptr, len })
            }

            /// The mapped bytes.
            pub(crate) fn bytes(&self) -> &[u8] {
                // SAFETY: ptr/len describe a live read-only mapping owned
                // by self; the borrow ties the slice to the mapping's
                // lifetime.
                unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>().cast_const(), self.len) }
            }
        }

        impl Drop for Mapping {
            fn drop(&mut self) {
                // SAFETY: ptr/len came from a successful mmap and are
                // unmapped exactly once.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

/// One parsed section-table entry, offsets already bounds-checked.
#[derive(Clone, Copy, Debug)]
struct Section {
    off: usize,
    len: usize,
}

/// The structurally validated shape of a `.hgb` buffer: counts, flags,
/// and the byte range of every section. Producing a `Layout` is O(header)
/// — no section payload is read.
#[derive(Clone, Debug)]
struct Layout {
    num_nodes: usize,
    num_nets: usize,
    num_pins: usize,
    node_offsets: Section,
    node_pins: Section,
    net_offsets: Section,
    net_pins: Section,
    net_weights: Section,
    node_weights: Option<Section>,
    names: Option<(Section, Section)>,
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte window"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte window"))
}

/// Converts a header count to `usize`, guarding both the platform word
/// size and the `u32` CSR index space (`n + 1` and `m` must fit in u32).
fn checked_count(field: &'static str, value: u64, max: u64) -> Result<usize, HgbError> {
    if value > max {
        return Err(HgbError::CountOverflow { field, value });
    }
    usize::try_from(value).map_err(|_| HgbError::CountOverflow { field, value })
}

/// Structurally validates `bytes` as a `.hgb` image: magic, version,
/// endianness, counts, and a section table whose entries must appear in
/// kind order, 8-byte aligned, sized exactly for the counts, in bounds,
/// and non-overlapping. O(header); section payloads are not touched.
fn parse_layout(bytes: &[u8]) -> Result<Layout, HgbError> {
    if bytes.len() < HEADER_LEN {
        return Err(HgbError::Truncated {
            needed: HEADER_LEN,
            len: bytes.len(),
        });
    }
    if bytes[..8] != HGB_MAGIC {
        return Err(HgbError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != HGB_VERSION {
        return Err(HgbError::UnsupportedVersion { version });
    }
    let tag = read_u32(bytes, 12);
    if tag != HGB_ENDIAN_TAG {
        return Err(HgbError::ForeignEndianness { tag });
    }
    let flags = read_u32(bytes, 16);
    if flags & !(FLAG_NODE_WEIGHTS | FLAG_NODE_NAMES) != 0 {
        return Err(HgbError::BadHeader {
            message: format!("unknown flag bits {flags:#x}"),
        });
    }
    let section_count = read_u32(bytes, 20) as usize;
    // n + 1 and e + 1 must be representable as u32 offset indices, and m
    // must be addressable by a u32 offset value.
    let num_nodes = checked_count("nodes", read_u64(bytes, 24), u64::from(u32::MAX) - 1)?;
    let num_nets = checked_count("nets", read_u64(bytes, 32), u64::from(u32::MAX) - 1)?;
    let num_pins = checked_count("pins", read_u64(bytes, 40), u64::from(u32::MAX))?;
    let file_len = read_u64(bytes, 48);
    if file_len != bytes.len() as u64 {
        if file_len > bytes.len() as u64 {
            return Err(HgbError::Truncated {
                needed: usize::try_from(file_len).unwrap_or(usize::MAX),
                len: bytes.len(),
            });
        }
        return Err(HgbError::BadHeader {
            message: format!("declared length {file_len} != actual {}", bytes.len()),
        });
    }
    if read_u64(bytes, 56) != 0 {
        return Err(HgbError::BadHeader {
            message: "reserved header word is not zero".into(),
        });
    }

    let mut expected: Vec<(u32, Option<usize>)> = vec![
        (KIND_NODE_OFFSETS, Some((num_nodes + 1) * 4)),
        (KIND_NODE_PINS, Some(num_pins * 4)),
        (KIND_NET_OFFSETS, Some((num_nets + 1) * 4)),
        (KIND_NET_PINS, Some(num_pins * 4)),
        (KIND_NET_WEIGHTS, Some(num_nets * 8)),
    ];
    if flags & FLAG_NODE_WEIGHTS != 0 {
        expected.push((KIND_NODE_WEIGHTS, Some(num_nodes * 8)));
    }
    if flags & FLAG_NODE_NAMES != 0 {
        expected.push((KIND_NAME_OFFSETS, Some((num_nodes + 1) * 4)));
        expected.push((KIND_NAME_BYTES, None)); // free-length; checked deeply later
    }
    if section_count != expected.len() {
        return Err(HgbError::BadHeader {
            message: format!(
                "section count {section_count} does not match flags (expected {})",
                expected.len()
            ),
        });
    }
    let table_end = HEADER_LEN + section_count * TABLE_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(HgbError::Truncated {
            needed: table_end,
            len: bytes.len(),
        });
    }

    let mut sections = Vec::with_capacity(expected.len());
    let mut cursor = table_end as u64;
    for (i, &(want_kind, want_len)) in expected.iter().enumerate() {
        let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let kind = read_u32(bytes, entry);
        let name = section_name(want_kind);
        if kind != want_kind {
            return Err(HgbError::Section {
                section: name,
                message: format!("expected kind {want_kind} at table slot {i}, found {kind}"),
            });
        }
        if read_u32(bytes, entry + 4) != 0 {
            return Err(HgbError::Section {
                section: name,
                message: "table padding word is not zero".into(),
            });
        }
        let off = read_u64(bytes, entry + 8);
        let len = read_u64(bytes, entry + 16);
        if !off.is_multiple_of(8) {
            return Err(HgbError::Section {
                section: name,
                message: format!("offset {off} is not 8-byte aligned"),
            });
        }
        if off < cursor {
            return Err(HgbError::Section {
                section: name,
                message: format!("offset {off} overlaps the previous section (ends {cursor})"),
            });
        }
        let end = off.checked_add(len).ok_or_else(|| HgbError::Section {
            section: name,
            message: "offset + length overflows".into(),
        })?;
        if end > bytes.len() as u64 {
            return Err(HgbError::Section {
                section: name,
                message: format!("section [{off}, {end}) exceeds file length {}", bytes.len()),
            });
        }
        if let Some(want) = want_len {
            if len != want as u64 {
                return Err(HgbError::Section {
                    section: name,
                    message: format!("length {len} != expected {want}"),
                });
            }
        }
        cursor = end;
        sections.push(Section {
            off: usize::try_from(off).expect("bounded by file length"),
            len: usize::try_from(len).expect("bounded by file length"),
        });
    }

    let mut it = sections.into_iter();
    let node_offsets = it.next().expect("five mandatory sections");
    let node_pins = it.next().expect("five mandatory sections");
    let net_offsets = it.next().expect("five mandatory sections");
    let net_pins = it.next().expect("five mandatory sections");
    let net_weights = it.next().expect("five mandatory sections");
    let node_weights = (flags & FLAG_NODE_WEIGHTS != 0).then(|| it.next().expect("flagged"));
    let names = (flags & FLAG_NODE_NAMES != 0)
        .then(|| (it.next().expect("flagged"), it.next().expect("flagged")));
    Ok(Layout {
        num_nodes,
        num_nets,
        num_pins,
        node_offsets,
        node_pins,
        net_offsets,
        net_pins,
        net_weights,
        node_weights,
        names,
    })
}

/// Deep validation of decoded section content, shared verbatim by the
/// copying parser and the zero-copy view so both paths accept exactly the
/// same set of files. O(file).
#[allow(clippy::too_many_arguments)]
fn validate_deep(
    num_nodes: usize,
    num_nets: usize,
    num_pins: usize,
    node_offsets: &[u32],
    node_pins: &[u32],
    net_offsets: &[u32],
    net_pins: &[u32],
    net_weight_bits: &[u64],
    node_weight_bits: Option<&[u64]>,
    names: Option<(&[u32], &[u8])>,
) -> Result<(), HgbError> {
    check_offsets("node_offsets", node_offsets, num_pins)?;
    check_offsets("net_offsets", net_offsets, num_pins)?;
    check_pins("node_pins", node_pins, num_nets)?;
    check_pins("net_pins", net_pins, num_nodes)?;
    // Count each node's pins in the net→node direction and cross-check
    // against the node→net offsets: the two stored directions must agree
    // on every degree. (A permuted-but-degree-preserving file still
    // loads; in-bounds consistency is what safety and the engines need.)
    let mut degree = vec![0u32; num_nodes];
    raw::histogram_into(net_pins, &mut degree);
    // Branchless accumulate; the index rescan only runs on failure, so the
    // hot path stays a straight-line vectorizable loop.
    let mut mismatch = false;
    for v in 0..num_nodes {
        mismatch |= node_offsets[v + 1] - node_offsets[v] != degree[v];
    }
    if mismatch {
        let v = (0..num_nodes)
            .find(|&v| node_offsets[v + 1] - node_offsets[v] != degree[v])
            .expect("mismatch flagged");
        return Err(HgbError::DegreeMismatch { node: v });
    }
    check_weights(net_weight_bits)?;
    if let Some(bits) = node_weight_bits {
        check_weights(bits)?;
    }
    if let Some((offsets, bytes)) = names {
        if offsets[0] != 0 {
            return Err(HgbError::BadNames {
                message: "first name offset is not zero".into(),
            });
        }
        for i in 0..num_nodes {
            if offsets[i + 1] < offsets[i] {
                return Err(HgbError::BadNames {
                    message: format!("name offsets decrease at index {i}"),
                });
            }
        }
        if offsets[num_nodes] as usize != bytes.len() {
            return Err(HgbError::BadNames {
                message: format!(
                    "name offsets close at {} but name bytes hold {}",
                    offsets[num_nodes],
                    bytes.len()
                ),
            });
        }
        for i in 0..num_nodes {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            if std::str::from_utf8(&bytes[lo..hi]).is_err() {
                return Err(HgbError::BadNames {
                    message: format!("name {i} is not valid UTF-8"),
                });
            }
        }
    }
    Ok(())
}

fn check_offsets(section: &'static str, offsets: &[u32], num_pins: usize) -> Result<(), HgbError> {
    if offsets[0] != 0 {
        return Err(HgbError::Offsets { section, index: 0 });
    }
    // Monotonicity as a branchless pairwise scan (vectorizes); the index
    // is recovered by a rescan only on the failure path.
    let decreasing = offsets
        .windows(2)
        .fold(false, |acc, w| acc | (w[1] < w[0]));
    if decreasing {
        let i = (1..offsets.len())
            .find(|&i| offsets[i] < offsets[i - 1])
            .expect("decrease flagged");
        return Err(HgbError::Offsets { section, index: i });
    }
    let last = offsets[offsets.len() - 1] as usize;
    if last != num_pins {
        return Err(HgbError::Offsets {
            section,
            index: offsets.len() - 1,
        });
    }
    Ok(())
}

/// Bounds check of a pin array as a vectorizable max-scan; the offending
/// index is recovered by a rescan only when the scan fails.
fn check_pins(section: &'static str, pins: &[u32], limit: usize) -> Result<(), HgbError> {
    let max = pins.iter().copied().max().unwrap_or(0);
    if (max as usize) < limit || pins.is_empty() {
        return Ok(());
    }
    let index = pins
        .iter()
        .position(|&p| p as usize >= limit)
        .expect("max exceeded limit");
    Err(HgbError::PinOutOfRange {
        section,
        index,
        value: pins[index],
        limit,
    })
}

/// Weight-bits check (finite, strictly positive) as a branchless
/// accumulate; the offending index is recovered on the failure path.
fn check_weights(bits: &[u64]) -> Result<(), HgbError> {
    let mut all_ok = true;
    for &b in bits {
        let w = f64::from_bits(b);
        all_ok &= w.is_finite() & (w > 0.0);
    }
    if all_ok {
        return Ok(());
    }
    let index = bits
        .iter()
        .position(|&b| {
            let w = f64::from_bits(b);
            !w.is_finite() || w <= 0.0
        })
        .expect("bad weight flagged");
    Err(HgbError::InvalidWeight {
        index,
        bits: bits[index],
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn push_u32s<I: IntoIterator<Item = u32>>(buf: &mut Vec<u8>, values: I) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializes a hypergraph to the `.hgb` byte image.
///
/// The output is canonical: the same graph always produces the same
/// bytes, and `parse_hgb(&write_hgb(g)) == g` exactly (weights are stored
/// as raw IEEE-754 bits, names byte-for-byte).
pub fn write_hgb(graph: &Hypergraph) -> Vec<u8> {
    let n = graph.num_nodes();
    let e = graph.num_nets();
    let m = graph.num_pins();
    let node_weights = graph.raw_node_weights();
    let names = graph.raw_node_names();
    let mut flags = 0u32;
    if node_weights.is_some() {
        flags |= FLAG_NODE_WEIGHTS;
    }
    if names.is_some() {
        flags |= FLAG_NODE_NAMES;
    }

    // (kind, payload length in bytes), in kind order.
    let name_bytes_len: usize = names
        .map(|ns| ns.iter().map(String::len).sum())
        .unwrap_or(0);
    let mut plan: Vec<(u32, usize)> = vec![
        (KIND_NODE_OFFSETS, (n + 1) * 4),
        (KIND_NODE_PINS, m * 4),
        (KIND_NET_OFFSETS, (e + 1) * 4),
        (KIND_NET_PINS, m * 4),
        (KIND_NET_WEIGHTS, e * 8),
    ];
    if node_weights.is_some() {
        plan.push((KIND_NODE_WEIGHTS, n * 8));
    }
    if names.is_some() {
        plan.push((KIND_NAME_OFFSETS, (n + 1) * 4));
        plan.push((KIND_NAME_BYTES, name_bytes_len));
    }

    let table_end = HEADER_LEN + plan.len() * TABLE_ENTRY_LEN;
    let mut offsets = Vec::with_capacity(plan.len());
    let mut cursor = table_end;
    for &(_, len) in &plan {
        cursor = cursor.next_multiple_of(8);
        offsets.push(cursor);
        cursor += len;
    }
    let file_len = cursor;

    let mut buf = Vec::with_capacity(file_len);
    buf.extend_from_slice(&HGB_MAGIC);
    push_u32s(&mut buf, [HGB_VERSION, HGB_ENDIAN_TAG, flags, plan.len() as u32]);
    for count in [n as u64, e as u64, m as u64, file_len as u64, 0u64] {
        buf.extend_from_slice(&count.to_le_bytes());
    }
    for (&(kind, len), &off) in plan.iter().zip(&offsets) {
        push_u32s(&mut buf, [kind, 0]);
        buf.extend_from_slice(&(off as u64).to_le_bytes());
        buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    pad8(&mut buf);
    push_u32s(&mut buf, graph.raw_node_offsets().iter().copied());
    pad8(&mut buf);
    push_u32s(&mut buf, graph.raw_node_pins().iter().map(|&id| u32::from(id)));
    pad8(&mut buf);
    push_u32s(&mut buf, graph.raw_net_offsets().iter().copied());
    pad8(&mut buf);
    push_u32s(&mut buf, graph.raw_net_pins().iter().map(|&id| u32::from(id)));
    pad8(&mut buf);
    for &w in graph.raw_net_weights() {
        buf.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    if let Some(weights) = node_weights {
        pad8(&mut buf);
        for &w in weights {
            buf.extend_from_slice(&w.to_bits().to_le_bytes());
        }
    }
    if let Some(ns) = names {
        pad8(&mut buf);
        let mut acc = 0u32;
        push_u32s(
            &mut buf,
            std::iter::once(0).chain(ns.iter().map(|s| {
                acc += s.len() as u32;
                acc
            })),
        );
        pad8(&mut buf);
        for s in ns {
            buf.extend_from_slice(s.as_bytes());
        }
    }
    debug_assert_eq!(buf.len(), file_len);
    buf
}

/// Serializes `graph` and writes it to `path` (convenience wrapper used
/// by `prop convert` and the daemon store).
pub fn write_hgb_file(graph: &Hypergraph, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, write_hgb(graph))
}

// ---------------------------------------------------------------------------
// Copying parser (portable reference path)
// ---------------------------------------------------------------------------

fn copy_u32s(bytes: &[u8], s: Section) -> Vec<u32> {
    bytes[s.off..s.off + s.len]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

fn copy_u64s(bytes: &[u8], s: Section) -> Vec<u64> {
    bytes[s.off..s.off + s.len]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn materialize(
    layout: &Layout,
    node_offsets: Vec<u32>,
    node_pins: Vec<u32>,
    net_offsets: Vec<u32>,
    net_pins: Vec<u32>,
    net_weight_bits: Vec<u64>,
    node_weight_bits: Option<Vec<u64>>,
    names: Option<(Vec<u32>, &[u8])>,
) -> Hypergraph {
    let node_names = names.map(|(offsets, bytes)| {
        (0..layout.num_nodes)
            .map(|i| {
                let lo = offsets[i] as usize;
                let hi = offsets[i + 1] as usize;
                String::from_utf8(bytes[lo..hi].to_vec()).expect("validated UTF-8")
            })
            .collect()
    });
    Hypergraph::from_validated_parts(
        node_offsets,
        node_pins.into_iter().map(NetId::from).collect(),
        net_offsets,
        net_pins.into_iter().map(NodeId::from).collect(),
        net_weight_bits.into_iter().map(f64::from_bits).collect(),
        node_weight_bits.map(|bits| bits.into_iter().map(f64::from_bits).collect()),
        node_names,
    )
}

/// Parses a `.hgb` byte image into a [`Hypergraph`] by copying every
/// section out of the buffer.
///
/// This is the portable path: it accepts any alignment and works on any
/// host endianness (all loads go through `from_le_bytes`). It performs
/// the same structural + deep validation as [`HgbView`], so the two paths
/// accept and reject exactly the same files.
pub fn parse_hgb(bytes: &[u8]) -> Result<Hypergraph, NetlistError> {
    let layout = parse_layout(bytes)?;
    let node_offsets = copy_u32s(bytes, layout.node_offsets);
    let node_pins = copy_u32s(bytes, layout.node_pins);
    let net_offsets = copy_u32s(bytes, layout.net_offsets);
    let net_pins = copy_u32s(bytes, layout.net_pins);
    let net_weight_bits = copy_u64s(bytes, layout.net_weights);
    let node_weight_bits = layout.node_weights.map(|s| copy_u64s(bytes, s));
    let names = layout
        .names
        .map(|(o, b)| (copy_u32s(bytes, o), &bytes[b.off..b.off + b.len]));
    validate_deep(
        layout.num_nodes,
        layout.num_nets,
        layout.num_pins,
        &node_offsets,
        &node_pins,
        &net_offsets,
        &net_pins,
        &net_weight_bits,
        node_weight_bits.as_deref(),
        names.as_ref().map(|(o, b)| (o.as_slice(), *b)),
    )?;
    Ok(materialize(
        &layout,
        node_offsets,
        node_pins,
        net_offsets,
        net_pins,
        net_weight_bits,
        node_weight_bits,
        names,
    ))
}

// ---------------------------------------------------------------------------
// Zero-copy view
// ---------------------------------------------------------------------------

/// A zero-copy view over a `.hgb` buffer.
///
/// [`HgbView::parse`] runs the O(header) structural validation and then
/// borrows each section as a typed slice straight out of `bytes` — no
/// section payload is read, copied, or checksummed at parse time. Call
/// [`HgbView::validate`] (or [`HgbView::to_hypergraph`], which implies
/// it) before trusting pin indices from an untrusted file; the raw
/// accessors themselves are bounds-checked and cannot read outside the
/// buffer either way.
///
/// Requirements checked at parse time: the buffer base must be 8-byte
/// aligned ([`HgbFile`] guarantees this for both backings) and the host
/// must be little-endian (on a big-endian host use [`parse_hgb`], which
/// byte-swaps; [`load_hgb`] selects automatically).
pub struct HgbView<'a> {
    num_nodes: usize,
    num_nets: usize,
    num_pins: usize,
    node_offsets: &'a [u32],
    node_pins: &'a [u32],
    net_offsets: &'a [u32],
    net_pins: &'a [u32],
    net_weight_bits: &'a [u64],
    node_weight_bits: Option<&'a [u64]>,
    name_offsets: Option<&'a [u32]>,
    name_bytes: Option<&'a [u8]>,
}

impl<'a> HgbView<'a> {
    /// Structurally validates `bytes` and borrows the section slices.
    /// O(header).
    pub fn parse(bytes: &'a [u8]) -> Result<HgbView<'a>, NetlistError> {
        if cfg!(target_endian = "big") {
            // The zero-copy cast would read the arrays byte-swapped; the
            // copying parser is the correct path on such hosts.
            return Err(NetlistError::Hgb(HgbError::ForeignEndianness {
                tag: HGB_ENDIAN_TAG.swap_bytes(),
            }));
        }
        if !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return Err(NetlistError::Hgb(HgbError::Section {
                section: "file",
                message: "buffer base is not 8-byte aligned (use HgbFile or parse_hgb)".into(),
            }));
        }
        let layout = parse_layout(bytes)?;
        let u32s = |s: Section, name: &'static str| {
            raw::cast_u32(&bytes[s.off..s.off + s.len]).ok_or(HgbError::Section {
                section: name,
                message: "section is not u32-aligned".into(),
            })
        };
        let u64s = |s: Section, name: &'static str| {
            raw::cast_u64(&bytes[s.off..s.off + s.len]).ok_or(HgbError::Section {
                section: name,
                message: "section is not u64-aligned".into(),
            })
        };
        Ok(HgbView {
            num_nodes: layout.num_nodes,
            num_nets: layout.num_nets,
            num_pins: layout.num_pins,
            node_offsets: u32s(layout.node_offsets, "node_offsets")?,
            node_pins: u32s(layout.node_pins, "node_pins")?,
            net_offsets: u32s(layout.net_offsets, "net_offsets")?,
            net_pins: u32s(layout.net_pins, "net_pins")?,
            net_weight_bits: u64s(layout.net_weights, "net_weights")?,
            node_weight_bits: layout
                .node_weights
                .map(|s| u64s(s, "node_weights"))
                .transpose()?,
            name_offsets: layout
                .names
                .map(|(o, _)| u32s(o, "name_offsets"))
                .transpose()?,
            name_bytes: layout.names.map(|(_, b)| &bytes[b.off..b.off + b.len]),
        })
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of nets `e`.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of pins `m`.
    pub fn num_pins(&self) -> usize {
        self.num_pins
    }

    /// The borrowed node→net CSR offsets (`n + 1` entries).
    pub fn node_offsets(&self) -> &'a [u32] {
        self.node_offsets
    }

    /// The borrowed net→node CSR offsets (`e + 1` entries).
    pub fn net_offsets(&self) -> &'a [u32] {
        self.net_offsets
    }

    /// The nets incident to `node`, or `None` when `node` is out of range
    /// or the stored offsets for it are inconsistent (never panics).
    pub fn nets_of(&self, node: usize) -> Option<&'a [u32]> {
        let lo = *self.node_offsets.get(node)? as usize;
        let hi = *self.node_offsets.get(node + 1)? as usize;
        self.node_pins.get(lo..hi)
    }

    /// The nodes on `net`, or `None` when out of range (never panics).
    pub fn pins_of(&self, net: usize) -> Option<&'a [u32]> {
        let lo = *self.net_offsets.get(net)? as usize;
        let hi = *self.net_offsets.get(net + 1)? as usize;
        self.net_pins.get(lo..hi)
    }

    /// The weight of `net`, or `None` when out of range.
    pub fn net_weight(&self, net: usize) -> Option<f64> {
        self.net_weight_bits.get(net).map(|&b| f64::from_bits(b))
    }

    /// The stored name of `node`, when the file carries names and the
    /// stored bytes are in range and valid UTF-8.
    pub fn node_name(&self, node: usize) -> Option<&'a str> {
        let offsets = self.name_offsets?;
        let bytes = self.name_bytes?;
        let lo = *offsets.get(node)? as usize;
        let hi = *offsets.get(node + 1)? as usize;
        std::str::from_utf8(bytes.get(lo..hi)?).ok()
    }

    /// Deep validation: offset monotonicity/closure, pin bounds, degree
    /// agreement between the two CSR directions, weight finiteness, name
    /// consistency. O(file). Identical semantics to [`parse_hgb`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        validate_deep(
            self.num_nodes,
            self.num_nets,
            self.num_pins,
            self.node_offsets,
            self.node_pins,
            self.net_offsets,
            self.net_pins,
            self.net_weight_bits,
            self.node_weight_bits,
            self.name_offsets.zip(self.name_bytes),
        )?;
        Ok(())
    }

    /// Deep-validates and materializes an owned [`Hypergraph`] (straight
    /// memcpy of the validated arrays — the builder's counting-sort
    /// transpose is never re-run).
    pub fn to_hypergraph(&self) -> Result<Hypergraph, NetlistError> {
        self.validate()?;
        let node_names = self.name_offsets.zip(self.name_bytes).map(|(offsets, bytes)| {
            (0..self.num_nodes)
                .map(|i| {
                    let lo = offsets[i] as usize;
                    let hi = offsets[i + 1] as usize;
                    String::from_utf8(bytes[lo..hi].to_vec()).expect("validated UTF-8")
                })
                .collect()
        });
        Ok(Hypergraph::from_validated_parts(
            self.node_offsets.to_vec(),
            self.node_pins.iter().copied().map(NetId::from).collect(),
            self.net_offsets.to_vec(),
            self.net_pins.iter().copied().map(NodeId::from).collect(),
            self.net_weight_bits
                .iter()
                .map(|&b| f64::from_bits(b))
                .collect(),
            self.node_weight_bits
                .map(|bits| bits.iter().map(|&b| f64::from_bits(b)).collect()),
            node_names,
        ))
    }
}

/// Header-only circuit stats of a `.hgb` buffer, readable in O(header)
/// without touching any section (the daemon store's `circuits` listing
/// uses this).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HgbStats {
    /// Number of nodes.
    pub nodes: u64,
    /// Number of nets.
    pub nets: u64,
    /// Number of pins.
    pub pins: u64,
    /// Whether the file carries per-node weights.
    pub has_node_weights: bool,
    /// Whether the file carries node names.
    pub has_node_names: bool,
}

/// Reads the header-level stats of a `.hgb` image after structural
/// validation only (no section payload is touched).
pub fn peek_stats(bytes: &[u8]) -> Result<HgbStats, NetlistError> {
    let layout = parse_layout(bytes)?;
    Ok(HgbStats {
        nodes: layout.num_nodes as u64,
        nets: layout.num_nets as u64,
        pins: layout.num_pins as u64,
        has_node_weights: layout.node_weights.is_some(),
        has_node_names: layout.names.is_some(),
    })
}

// ---------------------------------------------------------------------------
// File backing: mmap fast path, aligned-read fallback
// ---------------------------------------------------------------------------

/// How an [`HgbFile`]'s bytes are backed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadMode {
    /// `mmap(2)`-backed: the load was O(header), pages fault in on use.
    Mmap,
    /// Buffered read into an aligned heap buffer (non-unix, empty file,
    /// or a refused mapping).
    Read,
}

impl fmt::Display for LoadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoadMode::Mmap => "mmap",
            LoadMode::Read => "read",
        })
    }
}

enum Backing {
    #[cfg(unix)]
    Map(raw::sys::Mapping),
    Heap(Vec<u64>),
}

/// An opened `.hgb` file: owns the bytes (mapping or aligned heap buffer)
/// and guarantees an 8-byte-aligned base, so [`HgbView::parse`] always
/// applies.
///
/// The store and the CLI treat `.hgb` files as immutable once written
/// (writes go to a temp file and `rename(2)` into place), which is what
/// makes handing out mmap-backed slices sound: no live mapping ever
/// observes a mutation.
pub struct HgbFile {
    backing: Backing,
    len: usize,
}

impl HgbFile {
    /// Opens `path`, memory-mapping it on unix when possible and falling
    /// back to a buffered aligned read otherwise.
    pub fn open(path: &Path) -> std::io::Result<HgbFile> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        #[cfg(unix)]
        if let Some(map) = raw::sys::Mapping::map(&file, len) {
            return Ok(HgbFile {
                backing: Backing::Map(map),
                len,
            });
        }
        Self::read_aligned(&mut file, len)
    }

    /// Opens `path` through the buffered-read path unconditionally (used
    /// to prove mmap and read loads are byte-identical, and by callers
    /// that must not hold a mapping).
    pub fn open_buffered(path: &Path) -> std::io::Result<HgbFile> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        Self::read_aligned(&mut file, len)
    }

    fn read_aligned(file: &mut File, len: usize) -> std::io::Result<HgbFile> {
        let mut words = vec![0u64; len.div_ceil(8)];
        file.read_exact(&mut raw::words_as_bytes_mut(&mut words)[..len])?;
        Ok(HgbFile {
            backing: Backing::Heap(words),
            len,
        })
    }

    /// Which backing this file ended up with.
    pub fn mode(&self) -> LoadMode {
        match self.backing {
            #[cfg(unix)]
            Backing::Map(_) => LoadMode::Mmap,
            Backing::Heap(_) => LoadMode::Read,
        }
    }

    /// The raw file bytes; base address is always 8-byte aligned.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => m.bytes(),
            Backing::Heap(words) => &raw::words_as_bytes(words)[..self.len],
        }
    }

    /// A validated zero-copy view over the file.
    pub fn view(&self) -> Result<HgbView<'_>, NetlistError> {
        HgbView::parse(self.bytes())
    }
}

/// What [`load_hgb`] did: backing mode, file size, and wall time.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Mmap fast path or buffered read.
    pub mode: LoadMode,
    /// File size in bytes.
    pub bytes: usize,
    /// Wall-clock milliseconds for open + validate + materialize.
    pub millis: f64,
}

/// An error from [`load_hgb`]: either the file could not be read at all,
/// or its content failed `.hgb` validation.
#[derive(Debug)]
pub enum HgbLoadError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The bytes are not a valid `.hgb` image.
    Format(NetlistError),
}

impl fmt::Display for HgbLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HgbLoadError::Io(e) => write!(f, "io: {e}"),
            HgbLoadError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HgbLoadError {}

impl From<NetlistError> for HgbLoadError {
    fn from(e: NetlistError) -> Self {
        HgbLoadError::Format(e)
    }
}

impl From<std::io::Error> for HgbLoadError {
    fn from(e: std::io::Error) -> Self {
        HgbLoadError::Io(e)
    }
}

/// Opens, validates, and materializes a `.hgb` file: mmap + zero-copy
/// view on little-endian hosts, buffered byte-swapping parse elsewhere.
/// Returns the graph and a [`LoadReport`] describing how the load went.
pub fn load_hgb(path: &Path) -> Result<(Hypergraph, LoadReport), HgbLoadError> {
    let start = Instant::now();
    let file = HgbFile::open(path)?;
    let graph = if cfg!(target_endian = "little") {
        file.view()?.to_hypergraph()?
    } else {
        parse_hgb(file.bytes())?
    };
    Ok((
        graph,
        LoadReport {
            mode: file.mode(),
            bytes: file.bytes().len(),
            millis: start.elapsed().as_secs_f64() * 1e3,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.add_net(2.5, [2, 3]).unwrap();
        b.add_net(0.75, [0, 3, 4]).unwrap();
        b.build().unwrap()
    }

    fn decorated() -> Hypergraph {
        let mut b = HypergraphBuilder::new(3);
        b.set_node_weights(vec![1.5, 2.0, 0.5]).unwrap();
        b.set_node_names(vec!["alpha".into(), "".into(), "γ".into()]);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(3.0, [1, 2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_plain() {
        let g = sample();
        let bytes = write_hgb(&g);
        assert_eq!(parse_hgb(&bytes).unwrap(), g);
    }

    #[test]
    fn roundtrip_with_weights_and_names() {
        let g = decorated();
        let bytes = write_hgb(&g);
        let back = parse_hgb(&bytes).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.node_name(NodeId::new(2)), Some("γ"));
    }

    #[test]
    fn writer_is_canonical() {
        let g = sample();
        assert_eq!(write_hgb(&g), write_hgb(&g));
        assert_eq!(write_hgb(&g), write_hgb(&parse_hgb(&write_hgb(&g)).unwrap()));
    }

    #[test]
    fn peek_stats_reads_header_only() {
        let g = decorated();
        let bytes = write_hgb(&g);
        let stats = peek_stats(&bytes).unwrap();
        assert_eq!(
            stats,
            HgbStats {
                nodes: 3,
                nets: 2,
                pins: 4,
                has_node_weights: true,
                has_node_names: true,
            }
        );
    }

    #[test]
    fn file_roundtrip_both_modes() {
        let g = decorated();
        let dir = std::env::temp_dir().join(format!("hgb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("decorated.hgb");
        write_hgb_file(&g, &path).unwrap();

        let mapped = HgbFile::open(&path).unwrap();
        let buffered = HgbFile::open_buffered(&path).unwrap();
        assert_eq!(buffered.mode(), LoadMode::Read);
        assert_eq!(mapped.bytes(), buffered.bytes(), "backings are byte-identical");
        assert_eq!(mapped.view().unwrap().to_hypergraph().unwrap(), g);
        assert_eq!(buffered.view().unwrap().to_hypergraph().unwrap(), g);

        let (loaded, report) = load_hgb(&path).unwrap();
        assert_eq!(loaded, g);
        assert_eq!(report.bytes, mapped.bytes().len());

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn view_accessors_match_graph() {
        let g = sample();
        let bytes = write_hgb(&g);
        // Vec<u8> gives no alignment promise; round through the aligned
        // heap backing the way real callers do.
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        super::raw::words_as_bytes_mut(&mut words)[..bytes.len()].copy_from_slice(&bytes);
        let aligned = &super::raw::words_as_bytes(&words)[..bytes.len()];
        let view = HgbView::parse(aligned).unwrap();
        assert_eq!(view.num_nodes(), g.num_nodes());
        assert_eq!(view.num_nets(), g.num_nets());
        assert_eq!(view.num_pins(), g.num_pins());
        for v in 0..g.num_nodes() {
            let expect: Vec<u32> = g
                .nets_of(NodeId::new(v))
                .iter()
                .map(|&id| u32::from(id))
                .collect();
            assert_eq!(view.nets_of(v).unwrap(), expect.as_slice());
        }
        for e in 0..g.num_nets() {
            let expect: Vec<u32> = g
                .pins_of(NetId::new(e))
                .iter()
                .map(|&id| u32::from(id))
                .collect();
            assert_eq!(view.pins_of(e).unwrap(), expect.as_slice());
            assert_eq!(view.net_weight(e), Some(g.net_weight(NetId::new(e))));
        }
        assert_eq!(view.nets_of(g.num_nodes()), None, "OOB is None, not a panic");
        assert_eq!(view.pins_of(g.num_nets()), None);
        view.validate().unwrap();
    }

    #[test]
    fn truncated_and_corrupt_inputs_error() {
        let g = sample();
        let bytes = write_hgb(&g);
        assert!(matches!(
            parse_hgb(&bytes[..HEADER_LEN - 1]),
            Err(NetlistError::Hgb(HgbError::Truncated { .. }))
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            parse_hgb(&bad),
            Err(NetlistError::Hgb(HgbError::BadMagic))
        ));
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            parse_hgb(&bad),
            Err(NetlistError::Hgb(HgbError::UnsupportedVersion { version: 99 }))
        ));
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&HGB_ENDIAN_TAG.swap_bytes().to_le_bytes());
        assert!(matches!(
            parse_hgb(&bad),
            Err(NetlistError::Hgb(HgbError::ForeignEndianness { .. }))
        ));
        let mut bad = bytes;
        bad.truncate(bad.len() - 1);
        assert!(matches!(
            parse_hgb(&bad),
            Err(NetlistError::Hgb(HgbError::Truncated { .. }))
        ));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = HypergraphBuilder::new(2).build().unwrap();
        let bytes = write_hgb(&g);
        assert_eq!(parse_hgb(&bytes).unwrap(), g);
    }
}
