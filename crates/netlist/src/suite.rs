//! The Table-1 benchmark suite of the DAC-96 paper, realised as synthetic
//! proxies.
//!
//! Each [`CircuitSpec`] carries the published node/net/pin counts of one
//! ACM/SIGDA circuit; [`CircuitSpec::instantiate`] generates a deterministic
//! synthetic proxy with exactly those counts (see [`crate::generate`] for
//! why a substitution is necessary and what it preserves).
//!
//! ```
//! use prop_netlist::suite;
//!
//! let specs = suite::table1();
//! assert_eq!(specs.len(), 16);
//! let balu = suite::by_name("balu").unwrap();
//! let g = balu.instantiate().unwrap();
//! assert_eq!(g.num_nodes(), 801);
//! ```

use crate::error::NetlistError;
use crate::generate::{generate, GeneratorConfig};
use crate::hypergraph::Hypergraph;

/// Published characteristics of one benchmark circuit (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CircuitSpec {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of pins.
    pub pins: usize,
}

impl CircuitSpec {
    /// Generator configuration for this circuit's synthetic proxy. The seed
    /// is derived from the circuit name so every instantiation is identical
    /// across processes and platforms.
    pub fn generator_config(&self) -> GeneratorConfig {
        GeneratorConfig::new(self.nodes, self.nets, self.pins).with_seed(name_seed(self.name))
    }

    /// Generates the deterministic synthetic proxy for this circuit.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::InvalidGeneratorConfig`] — which cannot
    /// occur for the published Table-1 counts — so callers embedding custom
    /// specs get proper validation.
    pub fn instantiate(&self) -> Result<Hypergraph, NetlistError> {
        generate(&self.generator_config())
    }
}

/// FNV-1a hash of the circuit name, used as the per-circuit seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Table 1 of the paper: the 16 ACM/SIGDA circuits with their published
/// node, net, and pin counts.
pub const TABLE1: [CircuitSpec; 16] = [
    CircuitSpec { name: "balu", nodes: 801, nets: 735, pins: 2697 },
    CircuitSpec { name: "bm1", nodes: 882, nets: 903, pins: 2910 },
    CircuitSpec { name: "p1", nodes: 833, nets: 902, pins: 2908 },
    CircuitSpec { name: "p2", nodes: 3014, nets: 3029, pins: 11219 },
    CircuitSpec { name: "s13207", nodes: 8772, nets: 8651, pins: 20606 },
    CircuitSpec { name: "s15850", nodes: 10470, nets: 10383, pins: 24712 },
    CircuitSpec { name: "s9234", nodes: 5866, nets: 5844, pins: 14065 },
    CircuitSpec { name: "struct", nodes: 1952, nets: 1920, pins: 5471 },
    CircuitSpec { name: "19ks", nodes: 2844, nets: 3282, pins: 10547 },
    CircuitSpec { name: "biomed", nodes: 6514, nets: 5742, pins: 21040 },
    CircuitSpec { name: "industry2", nodes: 12637, nets: 13419, pins: 48404 },
    CircuitSpec { name: "t2", nodes: 1663, nets: 1720, pins: 6134 },
    CircuitSpec { name: "t3", nodes: 1607, nets: 1618, pins: 5807 },
    CircuitSpec { name: "t4", nodes: 1515, nets: 1658, pins: 5975 },
    CircuitSpec { name: "t5", nodes: 2595, nets: 2750, pins: 10076 },
    CircuitSpec { name: "t6", nodes: 1752, nets: 1541, pins: 6638 },
];

/// Beyond Table 1: the scaled proxy tier. `golem3` sits at the ~100k-node
/// scale the PARABOLI/MELO comparisons report; `golem4` (~1M nodes) and
/// `golem5` (~10M nodes) extend the ladder by successive 10× steps, each
/// preserving golem3's pins-per-net ratio (q ≈ 3.7), so the multilevel
/// engine and the `.hgb` load path can be measured at the million-node
/// instance sizes the n-level/deterministic-parallel literature uses.
/// Kept out of [`table1`] so the paper's 16-circuit protocol and the
/// quick gates stay unchanged; [`by_name`] resolves them for the
/// large-circuit benchmark path.
pub const LARGE: [CircuitSpec; 3] = [
    CircuitSpec { name: "golem3", nodes: 103_048, nets: 108_292, pins: 400_680 },
    CircuitSpec { name: "golem4", nodes: 1_030_480, nets: 1_082_920, pins: 4_006_800 },
    CircuitSpec { name: "golem5", nodes: 10_304_800, nets: 10_829_200, pins: 40_068_000 },
];

/// Returns the full Table-1 suite in the paper's order.
pub fn table1() -> Vec<CircuitSpec> {
    TABLE1.to_vec()
}

/// A small subset of the suite (the four smallest circuits) for quick
/// experiments and CI-friendly benchmark runs.
pub fn small_suite() -> Vec<CircuitSpec> {
    let mut v = table1();
    v.sort_by_key(|s| s.nodes);
    v.truncate(4);
    v
}

/// Looks up a circuit spec by its paper name, covering both the Table-1
/// suite and the [`LARGE`] extension.
pub fn by_name(name: &str) -> Option<CircuitSpec> {
    TABLE1
        .iter()
        .chain(LARGE.iter())
        .copied()
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_published_counts() {
        let industry2 = by_name("industry2").unwrap();
        assert_eq!(industry2.nodes, 12637);
        assert_eq!(industry2.nets, 13419);
        assert_eq!(industry2.pins, 48404);
        assert!(by_name("ghost").is_none());
    }

    #[test]
    fn every_spec_instantiates_with_exact_counts() {
        // Only the small circuits here to keep unit tests fast; integration
        // tests cover the full sweep.
        for spec in small_suite() {
            let g = spec.instantiate().unwrap();
            assert_eq!(g.num_nodes(), spec.nodes, "{}", spec.name);
            assert_eq!(g.num_nets(), spec.nets, "{}", spec.name);
            assert_eq!(g.num_pins(), spec.pins, "{}", spec.name);
        }
    }

    #[test]
    fn golem3_resolves_but_stays_out_of_table1() {
        let golem3 = by_name("golem3").unwrap();
        assert_eq!(golem3.nodes, 103_048);
        assert_eq!(golem3.nets, 108_292);
        assert_eq!(golem3.pins, 400_680);
        assert!(golem3.generator_config().seed != 0, "name-derived seed");
        // The paper protocol and the quick gates must not grow.
        assert_eq!(table1().len(), 16);
        assert!(table1().iter().all(|s| s.name != "golem3"));
        assert!(small_suite().iter().all(|s| s.name != "golem3"));
    }

    #[test]
    fn golem_tier_scales_by_ten_and_stays_out_of_table1() {
        let golem3 = by_name("golem3").unwrap();
        let golem4 = by_name("golem4").unwrap();
        let golem5 = by_name("golem5").unwrap();
        assert_eq!(golem4.nodes, 1_030_480);
        assert_eq!(golem4.nets, 1_082_920);
        assert_eq!(golem4.pins, 4_006_800);
        for (small, big) in [(golem3, golem4), (golem4, golem5)] {
            assert_eq!(big.nodes, small.nodes * 10, "{}", big.name);
            assert_eq!(big.nets, small.nets * 10, "{}", big.name);
            assert_eq!(big.pins, small.pins * 10, "{}", big.name);
        }
        for spec in [golem4, golem5] {
            // The scaled tier keeps golem3's circuit-like pin ratio and a
            // valid (instantiable) generator configuration without
            // actually instantiating millions of nodes in a unit test.
            let q = spec.pins as f64 / spec.nets as f64;
            assert!((2.0..6.0).contains(&q), "{}: q={q}", spec.name);
            spec.generator_config().validate().unwrap();
            assert!(table1().iter().all(|s| s.name != spec.name));
            assert!(small_suite().iter().all(|s| s.name != spec.name));
        }
        // Distinct name-derived seeds across the tier.
        assert_ne!(golem3.generator_config().seed, golem4.generator_config().seed);
        assert_ne!(golem4.generator_config().seed, golem5.generator_config().seed);
    }

    #[test]
    fn instantiation_is_deterministic() {
        let spec = by_name("balu").unwrap();
        assert_eq!(spec.instantiate().unwrap(), spec.instantiate().unwrap());
    }

    #[test]
    fn seeds_differ_per_circuit() {
        assert_ne!(name_seed("balu"), name_seed("bm1"));
        assert_ne!(name_seed("t2"), name_seed("t3"));
    }

    #[test]
    fn small_suite_is_smallest_four() {
        let small = small_suite();
        assert_eq!(small.len(), 4);
        let max_small = small.iter().map(|s| s.nodes).max().unwrap();
        let excluded_min = table1()
            .iter()
            .filter(|s| small.iter().all(|t| t.name != s.name))
            .map(|s| s.nodes)
            .min()
            .unwrap();
        assert!(max_small <= excluded_min);
    }

    #[test]
    fn pin_ratios_are_circuit_like() {
        for spec in TABLE1 {
            let q = spec.pins as f64 / spec.nets as f64;
            assert!((2.0..6.0).contains(&q), "{}: q={q}", spec.name);
        }
    }
}
