//! Property tests of the PROP engine and k-way driver on arbitrary
//! hypergraphs.

use proptest::prelude::*;
use prop_core::{
    probabilistic_gains, recursive_bisection, BalanceConstraint, Bipartition, CutState,
    Partitioner, Prop, PropConfig, Side,
};
use prop_netlist::{Hypergraph, HypergraphBuilder};

fn arb_graph() -> impl Strategy<Value = Hypergraph> {
    (4usize..36).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 2..60).prop_map(
            move |nets| {
                let mut b = HypergraphBuilder::new(n);
                for pins in nets {
                    b.add_net(1.0, pins).expect("valid pins");
                }
                b.build().expect("valid graph")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The locked-net special cases (Eqns. 5–6) are subsumed by the
    /// general formulas with locked probability 0: zeroing a node's
    /// probability and marking it locked yield identical gains for all
    /// *other* nodes.
    #[test]
    fn locked_equals_zero_probability(
        g in arb_graph(),
        mask in any::<u64>(),
        p in 0.1f64..0.95,
    ) {
        let n = g.num_nodes();
        let sides: Vec<Side> = (0..n)
            .map(|i| if i % 2 == 0 { Side::A } else { Side::B })
            .collect();
        let partition = Bipartition::from_sides(sides);
        let locked: Vec<bool> = (0..n).map(|i| (mask >> (i % 64)) & 1 == 1).collect();
        let probs = vec![p; n];
        let with_locks = probabilistic_gains(&g, &partition, &probs, &locked);
        // Same computation, expressing locks as probability-0 nodes.
        let zeroed: Vec<f64> = probs
            .iter()
            .zip(&locked)
            .map(|(&p, &l)| if l { 0.0 } else { p })
            .collect();
        let with_zeros = probabilistic_gains(&g, &partition, &zeroed, &vec![false; n]);
        for v in 0..n {
            if locked[v] {
                continue; // locked nodes report 0 by convention
            }
            prop_assert!(
                (with_locks[v] - with_zeros[v]).abs() < 1e-12,
                "node {v}: {} vs {}",
                with_locks[v],
                with_zeros[v]
            );
        }
    }

    /// PROP's improve is idempotent: a partition at a local minimum
    /// (Gmax ≤ 0) is left untouched by a second improve call.
    #[test]
    fn improve_is_idempotent(g in arb_graph(), seed in 0u64..500) {
        use rand::SeedableRng;
        let n = g.num_nodes();
        let balance = BalanceConstraint::bisection(n);
        let prop = Prop::new(PropConfig::calibrated());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut partition = Bipartition::random(n, &mut rng);
        prop.improve(&g, &mut partition, balance);
        let settled = partition.clone();
        prop.improve(&g, &mut partition, balance);
        prop_assert_eq!(partition, settled);
    }

    /// Pass traces are internally consistent and their committed gains
    /// sum to the total improvement.
    #[test]
    fn traces_account_for_the_improvement(g in arb_graph(), seed in 0u64..500) {
        use rand::SeedableRng;
        let n = g.num_nodes();
        let balance = BalanceConstraint::bisection(n);
        let prop = Prop::new(PropConfig::calibrated());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut partition = Bipartition::random(n, &mut rng);
        let before = CutState::new(&g, &partition).cut_cost();
        let (stats, traces) = prop.improve_traced(&g, &mut partition, balance);
        let after = CutState::new(&g, &partition).cut_cost();
        prop_assert_eq!(stats.cut_cost, after);
        prop_assert_eq!(stats.passes, traces.len());
        let total: f64 = traces.iter().map(|t| t.committed_gain).sum();
        prop_assert!((before - after - total).abs() < 1e-9);
        for t in &traces {
            prop_assert!(t.committed_moves <= t.tentative_moves);
            prop_assert!(t.max_drawdown <= 0.0);
            prop_assert!(t.committed_gain >= 0.0);
        }
    }

    /// Recursive bisection assigns every node to exactly one of k dense
    /// block ids, and its k-way cut is consistent.
    #[test]
    fn kway_assignment_is_total(g in arb_graph(), k in 1usize..5) {
        let n = g.num_nodes();
        prop_assume!(k <= n / 2 || k == 1);
        let prop = Prop::new(PropConfig::calibrated());
        let kp = recursive_bisection(&g, k, 0.4, 0.6, &prop, 1, 0).unwrap();
        prop_assert_eq!(kp.len(), n);
        let sizes = kp.block_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert!(kp.num_blocks() <= k);
        // Cut nets counted two ways agree.
        let by_filter = g
            .nets()
            .filter(|&net| kp.is_cut(&g, net))
            .count();
        prop_assert_eq!(by_filter, kp.cut_nets(&g));
    }
}
