//! Salted splitmix64 seed streams.
//!
//! Deterministic components that need several independent randomness
//! streams from one engine seed (the multilevel V-cycle's matching /
//! start / run streams, the k-way driver's per-recursion-node seeds)
//! derive each stream seed through the same splitmix64-style finalizer:
//! `finalize(seed + salt + index · γ)`. Each `(salt, index)` pair yields
//! a statistically independent seed, no stream ever consumes another
//! stream's draws, and the derivation is *prefix-stable* — adding
//! streams or raising an index bound leaves every existing stream's
//! randomness untouched.

/// Derives the seed of the stream identified by `(salt, index)` from an
/// engine seed.
///
/// The finalizer is the splitmix64 output mix; `salt` separates stream
/// *families* (each family picks one fixed odd constant) and `index`
/// separates streams within a family.
#[must_use]
pub fn salted_stream_seed(seed: u64, salt: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_separated() {
        let a = salted_stream_seed(7, 0x9e37_79b9_7f4a_7c15, 0);
        assert_eq!(a, salted_stream_seed(7, 0x9e37_79b9_7f4a_7c15, 0));
        // Different salt, index, or seed each move the stream.
        assert_ne!(a, salted_stream_seed(7, 0xd1b5_4a32_d192_ed03, 0));
        assert_ne!(a, salted_stream_seed(7, 0x9e37_79b9_7f4a_7c15, 1));
        assert_ne!(a, salted_stream_seed(8, 0x9e37_79b9_7f4a_7c15, 0));
    }

    #[test]
    fn pinned_finalizer_values() {
        // The exact finalizer output is part of the determinism contract
        // (committed golden results depend on it), so pin a few values.
        assert_eq!(salted_stream_seed(0, 0, 0), 0);
        assert_eq!(salted_stream_seed(0, 0x9e37_79b9_7f4a_7c15, 0), 0xe220_a839_7b1d_cdaf);
    }
}
