//! Configuration of the PROP partitioner.

use crate::error::PartitionError;

/// How the chicken-and-egg cycle between gains and probabilities is
/// seeded at the start of each pass (§3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GainInit {
    /// Every node starts at the same probability `p_init` ("blind" method).
    #[default]
    Uniform,
    /// Probabilities are seeded from the deterministic FM gains (Eqn. 1),
    /// mapped through the probability function.
    Deterministic,
}

/// The ordered-gain container the move phase selects from (§3.5 discusses
/// the ranking structure; all backends produce bit-identical runs —
/// selection keys are unique, so every ordered container picks the same
/// node every time).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SelectionBackend {
    /// Balanced AVL trees, one per side — the structure the paper's
    /// complexity analysis assumes. Every §3.4 refresh pays two O(log n)
    /// pointer-chasing rebalancing walks (remove + insert).
    AvlTree,
    /// Lazy-deletion binary max-heaps, one per side. A refresh is a single
    /// contiguous sift-up push; superseded and locked entries are filtered
    /// by a liveness check when they surface at the top of a query pop.
    /// The per-move top-k refresh must pop (and restore) its candidates to
    /// sweep dead entries aside, which is where this backend loses to the
    /// indexed heap.
    LazyHeap,
    /// Position-mapped binary max-heaps with eager removal, one per side —
    /// no dead entries, so a reposition is one in-place sift and the §3.4
    /// top-k refresh plus the balance probe are read-only best-first walks
    /// over the flat array. The default: the cheapest per-move constant of
    /// the three.
    #[default]
    IndexedHeap,
}

/// Parameters of PROP. The defaults are the settings used for every
/// experiment in the paper (§4): `p_init = p_max = 0.95`, `p_min = 0.4`,
/// the linear probability function with thresholds `g_up = 1`,
/// `g_lo = −1`, two gain/probability refinement iterations, and a top-5
/// refresh per side after each move.
///
/// ```
/// use prop_core::PropConfig;
///
/// let cfg = PropConfig::default();
/// assert_eq!(cfg.p_init, 0.95);
/// assert_eq!(cfg.p_min, 0.4);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct PropConfig {
    /// Initial node probability for the [`GainInit::Uniform`] seeding.
    pub p_init: f64,
    /// Upper clamp on node probabilities (`p_max ≤ 1`; the paper notes
    /// `p_max = 1` is not unreasonable).
    pub p_max: f64,
    /// Lower clamp on node probabilities. Must be strictly positive: a
    /// zero probability is reserved for locked nodes.
    pub p_min: f64,
    /// Gain threshold at and above which a node gets `p_max`.
    pub g_up: f64,
    /// Gain threshold below which a node gets `p_min`.
    pub g_lo: f64,
    /// Probability seeding method.
    pub init: GainInit,
    /// Number of (gain → probability) refinement iterations before the
    /// move phase of each pass. The paper uses 2.
    pub refine_iterations: usize,
    /// Number of top-ranked nodes per side whose gains are recomputed
    /// after every move, in addition to the moved node's neighbors
    /// (§3.4; the paper suggests five).
    pub top_k_refresh: usize,
    /// Safety bound on passes per run. The paper observes convergence in
    /// two to four passes; this bound only guards pathological inputs.
    pub max_passes: usize,
    /// Bound on how many candidates the weighted-balance move selection
    /// probes per side, walking each gain tree in descending order, before
    /// declaring the side blocked for this move. `None` (the default)
    /// scans until a feasible node is found — the exact baseline
    /// behaviour; a small bound trades a little selection quality for a
    /// per-move cost independent of tree size on weight-skewed circuits.
    /// Ignored under count-based (unit-weight) balance, where feasibility
    /// is per side rather than per node. Must be at least 1 when set.
    pub balance_probe_depth: Option<usize>,
    /// Ordered-gain container used by the move phase. All backends make
    /// bit-identical runs; [`SelectionBackend::IndexedHeap`] (the default)
    /// has the cheapest per-move constants, the others are kept selectable
    /// as the paper's reference structure and for differential testing.
    pub selection: SelectionBackend,
}

impl Default for PropConfig {
    fn default() -> Self {
        PropConfig {
            p_init: 0.95,
            p_max: 0.95,
            p_min: 0.4,
            g_up: 1.0,
            g_lo: -1.0,
            init: GainInit::Uniform,
            refine_iterations: 2,
            top_k_refresh: 5,
            max_passes: 64,
            balance_probe_depth: None,
            selection: SelectionBackend::IndexedHeap,
        }
    }
}

impl PropConfig {
    /// The profile used by this suite's experiment harness: the paper's
    /// parameters with the probability floor raised from 0.4 to 0.85.
    ///
    /// On the synthetic proxy circuits (see `prop-netlist::generate`) the
    /// quality of PROP is monotone in `p_min` over `[0.4, 0.95]`: a high
    /// floor keeps the per-net products optimistic enough for whole
    /// clusters to migrate within a pass, which is where PROP's margin
    /// over FM comes from. The published floor of 0.4 was tuned on the
    /// real ACM/SIGDA circuits; on the proxies it erases the margin. The
    /// ablation benchmark (`cargo bench -p prop-bench --bench ablation`)
    /// regenerates this sensitivity curve.
    pub fn calibrated() -> Self {
        PropConfig {
            p_min: 0.85,
            ..PropConfig::default()
        }
    }

    /// Checks parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] when probabilities leave
    /// `(0, 1]`, the clamps are inverted, the thresholds are inverted, or
    /// the pass bound is zero.
    pub fn validate(&self) -> Result<(), PartitionError> {
        let fail = |message: String| Err(PartitionError::InvalidConfig { message });
        if !(self.p_min > 0.0 && self.p_min <= self.p_max && self.p_max <= 1.0) {
            return fail(format!(
                "need 0 < p_min <= p_max <= 1, got p_min={} p_max={}",
                self.p_min, self.p_max
            ));
        }
        if !(self.p_init > 0.0 && self.p_init <= 1.0) {
            return fail(format!("p_init={} outside (0, 1]", self.p_init));
        }
        if !(self.g_lo.is_finite() && self.g_up.is_finite() && self.g_lo < self.g_up) {
            return fail(format!(
                "need finite g_lo < g_up, got g_lo={} g_up={}",
                self.g_lo, self.g_up
            ));
        }
        if self.max_passes == 0 {
            return fail("max_passes must be at least 1".into());
        }
        if self.balance_probe_depth == Some(0) {
            return fail("balance_probe_depth must be at least 1 when set".into());
        }
        Ok(())
    }

    /// The linear probability function of §3.2: monotone in the gain,
    /// clamped to `[p_min, p_max]`, with saturation thresholds `g_lo` and
    /// `g_up`.
    pub fn probability_of(&self, gain: f64) -> f64 {
        if gain >= self.g_up {
            self.p_max
        } else if gain < self.g_lo {
            self.p_min
        } else {
            let t = (gain - self.g_lo) / (self.g_up - self.g_lo);
            self.p_min + t * (self.p_max - self.p_min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_settings() {
        let c = PropConfig::default();
        assert_eq!((c.p_init, c.p_max, c.p_min), (0.95, 0.95, 0.4));
        assert_eq!((c.g_up, c.g_lo), (1.0, -1.0));
        assert_eq!(c.refine_iterations, 2);
        assert_eq!(c.top_k_refresh, 5);
        assert_eq!(c.init, GainInit::Uniform);
        assert_eq!(c.balance_probe_depth, None);
        assert_eq!(c.selection, SelectionBackend::IndexedHeap);
        c.validate().unwrap();
    }

    #[test]
    fn probability_function_is_monotone_and_clamped() {
        let c = PropConfig::default();
        assert_eq!(c.probability_of(5.0), 0.95);
        assert_eq!(c.probability_of(1.0), 0.95);
        assert_eq!(c.probability_of(-1.5), 0.4);
        let mid = c.probability_of(0.0);
        assert!((mid - 0.675).abs() < 1e-12); // midpoint of [0.4, 0.95]
        let mut prev = f64::NEG_INFINITY;
        for i in -40..=40 {
            let p = c.probability_of(f64::from(i) * 0.1);
            assert!(p >= prev - 1e-15);
            assert!((c.p_min..=c.p_max).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn boundary_at_g_lo_uses_linear_branch() {
        let c = PropConfig::default();
        assert_eq!(c.probability_of(c.g_lo), c.p_min);
    }

    #[test]
    fn invalid_configs() {
        let bad = |f: fn(&mut PropConfig)| {
            let mut c = PropConfig::default();
            f(&mut c);
            assert!(c.validate().is_err(), "{c:?}");
        };
        bad(|c| c.p_min = 0.0);
        bad(|c| c.p_min = 0.99); // > p_max
        bad(|c| c.p_max = 1.5);
        bad(|c| c.p_init = 0.0);
        bad(|c| c.p_init = 1.1);
        bad(|c| c.g_lo = 2.0); // >= g_up
        bad(|c| c.g_up = f64::INFINITY);
        bad(|c| c.max_passes = 0);
        bad(|c| c.balance_probe_depth = Some(0));
    }

    #[test]
    fn bounded_probe_depth_is_legal() {
        let mut c = PropConfig::default();
        c.balance_probe_depth = Some(8);
        c.validate().unwrap();
    }

    #[test]
    fn pmax_one_is_legal() {
        let mut c = PropConfig::default();
        c.p_max = 1.0;
        c.validate().unwrap();
        assert_eq!(c.probability_of(10.0), 1.0);
    }
}
