//! The per-pass PROP engine: probability refinement, product maintenance,
//! move selection, and prefix commit.
//!
//! # Hot-state layout
//!
//! All per-pass scratch state lives in flat arrays indexed by node or net
//! id and walked through the netlist CSR, never through per-entity
//! allocations:
//!
//! * per node — probability, gain, lock flag, epoch mark, recency stamp
//!   (five parallel `Vec`s);
//! * per net — one packed [`NetHot`] record holding both sides' unlocked
//!   products, pin counts, and locked-pin counts plus the net weight, so
//!   the gain inner loop ([`Engine::compute_gain`]) touches exactly one
//!   cache line per incident net instead of gathering from four separate
//!   arrays (products, locked counts, cut pin counts, net weights).
//!
//! The refinement fixed point is *dirty-net incremental*: after the first
//! full product/gain sweep, an iteration only recomputes the nets touched
//! by a changed probability and only re-gains the nodes on those nets —
//! bit-identical to the full sweeps, because an untouched net's product
//! recomputation would multiply the same factors in the same order, and a
//! node whose own probability and incident products are all unchanged
//! would recompute to the same gain.

use crate::balance::BalanceConstraint;
use crate::cut::CutState;
use crate::gain::fm_gains;
use crate::partition::{Bipartition, Side, SideWeights};
use crate::prof;
use crate::prop::config::{GainInit, PropConfig, SelectionBackend};
use prop_dstruct::{AvlTree, IndexedMaxHeap, LazyMaxHeap, OrderedF64, PrefixTracker};
use prop_netlist::{Hypergraph, NetId, NodeId};

/// Selection key: gain first, then a monotonically increasing *recency
/// stamp*, then the node id. The maximum is the paper's "node with the
/// best gain"; among equal gains the most recently (re)inserted node wins,
/// matching the LIFO tie-breaking of the classic FM bucket structure —
/// which is known to matter for cut quality. Keys are unique (the id
/// breaks all remaining ties), so every ordered container over them
/// selects the same node. Stamps restart at zero each pass (the stores
/// are cleared and refilled, so no cross-pass key ever compares), which
/// keeps the key at 16 bytes — two per cache line in the heap backend.
type GainKey = (OrderedF64, u32, u32);

/// Packed per-net hot state: everything [`Engine::compute_gain`] needs
/// about one net, in one record.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NetHot {
    /// Per side: product of `p(x)` over *unlocked* pins (Eqn. 2).
    pub prod: [f64; 2],
    /// Per side: total pin count — the cut-ness test of Eqns. 3–4.
    /// Maintained by the same per-net recomputation as the products, so
    /// it always agrees with the incremental [`CutState`].
    pub pins: [u32; 2],
    /// Per side: number of locked pins. A positive count zeroes the
    /// side's effective product (locked probability is 0).
    pub locked: [u32; 2],
    /// The net weight, copied from the graph at engine construction so
    /// the gain loop reads no second array.
    pub weight: f64,
}

/// The ordered-gain container pair (one per side) behind move selection.
/// All variants rank by [`GainKey`] and are observationally identical;
/// see [`SelectionBackend`] for the tradeoffs.
enum GainStore {
    Avl([AvlTree<GainKey>; 2]),
    Heap([LazyMaxHeap<GainKey>; 2]),
    Indexed([IndexedMaxHeap<GainKey>; 2]),
}

pub(crate) struct Engine<'a> {
    graph: &'a Hypergraph,
    config: &'a PropConfig,
    balance: BalanceConstraint,
    /// Node probabilities; 0 exactly when locked.
    p: Vec<f64>,
    /// Current probabilistic gains.
    gain: Vec<f64>,
    locked: Vec<bool>,
    /// Per-net packed products / pin counts / locked counts / weight.
    nets: Vec<NetHot>,
    /// Unlocked nodes of each side ranked by gain.
    store: GainStore,
    /// Epoch marks for node de-duplication (dirty-gain sweep in
    /// refinement, neighbor + top-k sweep per move).
    mark: Vec<u32>,
    epoch: u32,
    /// Epoch marks de-duplicating the dirty-net queue of a refinement
    /// iteration.
    net_mark: Vec<u32>,
    net_epoch: u32,
    /// Nets whose products must be recomputed this refinement iteration.
    dirty_nets: Vec<u32>,
    /// Monotonic product clock: bumped before every batch of per-net
    /// product modifications. Orders product writes against gain reads.
    clock: u64,
    /// Per net: clock value of its last product modification.
    net_tick: Vec<u64>,
    /// Per node: clock value at which its stored gain's inputs were read.
    /// A node none of whose nets ticked since is *provably fresh*: a
    /// refresh would recompute the bit-identical gain (same products,
    /// same own probability — a probability change always ticks the
    /// node's own nets), push nothing, and change no probability, so it
    /// is skipped outright ([`Engine::refresh_node`]).
    node_tick: Vec<u64>,
    /// Per-node recency stamp of its current selection key.
    stamp: Vec<u32>,
    next_stamp: u32,
    /// Running per-side node weights (size-constrained balance).
    side_weights: SideWeights,
    moves: Vec<NodeId>,
    prefix: PrefixTracker,
    /// Reusable buffer for the §3.4 top-k refresh: the candidate ids are
    /// snapshotted here before refreshing (refreshes reposition container
    /// entries, which would invalidate a live traversal). Kept on the
    /// engine so the per-move hot path never allocates.
    topk_scratch: Vec<u32>,
    /// Reusable buffer of keys popped off a heap during selection probes
    /// and top-k snapshots, pushed back afterwards.
    popped_scratch: Vec<GainKey>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        graph: &'a Hypergraph,
        config: &'a PropConfig,
        balance: BalanceConstraint,
    ) -> Self {
        let n = graph.num_nodes();
        let e = graph.num_nets();
        let nets = graph
            .nets()
            .map(|net| NetHot {
                prod: [1.0; 2],
                pins: [0; 2],
                locked: [0; 2],
                weight: graph.net_weight(net),
            })
            .collect();
        let store = match config.selection {
            SelectionBackend::AvlTree => GainStore::Avl([AvlTree::new(), AvlTree::new()]),
            SelectionBackend::LazyHeap => {
                GainStore::Heap([LazyMaxHeap::with_capacity(n), LazyMaxHeap::with_capacity(n)])
            }
            SelectionBackend::IndexedHeap => {
                GainStore::Indexed([IndexedMaxHeap::with_ids(n), IndexedMaxHeap::with_ids(n)])
            }
        };
        Engine {
            graph,
            config,
            balance,
            p: vec![0.0; n],
            gain: vec![0.0; n],
            locked: vec![false; n],
            nets,
            store,
            mark: vec![0; n],
            epoch: 0,
            net_mark: vec![0; e],
            net_epoch: 0,
            dirty_nets: Vec::with_capacity(e),
            clock: 0,
            net_tick: vec![0; e],
            node_tick: vec![0; n],
            stamp: vec![0; n],
            next_stamp: 0,
            side_weights: SideWeights::new(graph, &Bipartition::from_sides(vec![Side::A; n])),
            moves: Vec::with_capacity(n),
            prefix: PrefixTracker::with_capacity(n),
            topk_scratch: Vec::with_capacity(2 * config.top_k_refresh),
            popped_scratch: Vec::new(),
        }
    }

    fn key_of(&self, v: NodeId) -> GainKey {
        (
            OrderedF64::new(self.gain[v.index()]),
            self.stamp[v.index()],
            v.index() as u32,
        )
    }

    /// Stamps `v` and inserts its key into side `side_index`'s container,
    /// superseding any key `v` already holds there (the AVL caller removes
    /// the old key first, the lazy heap's old entry dies by the stamp
    /// bump, and the indexed heap repositions in place).
    fn store_insert(&mut self, v: NodeId, side_index: usize) {
        self.next_stamp = self
            .next_stamp
            .checked_add(1)
            .expect("more than u32::MAX store insertions in one pass");
        self.stamp[v.index()] = self.next_stamp;
        let key = self.key_of(v);
        match &mut self.store {
            GainStore::Avl(trees) => {
                let inserted = trees[side_index].insert(key);
                debug_assert!(inserted, "duplicate selection key");
            }
            GainStore::Heap(heaps) => heaps[side_index].push(key),
            GainStore::Indexed(heaps) => {
                if heaps[side_index].contains(v.index()) {
                    heaps[side_index].update(v.index(), key);
                } else {
                    heaps[side_index].insert(v.index(), key);
                }
            }
        }
    }

    /// Runs one pass (steps 3–10 of Fig. 2) and returns the committed gain
    /// (0 when the pass found no improving prefix and was fully rolled
    /// back, which terminates the run) plus the pass trace.
    pub(crate) fn run_pass(
        &mut self,
        partition: &mut Bipartition,
        cut: &mut CutState,
    ) -> (f64, crate::prop::PassTrace) {
        let n = self.graph.num_nodes();
        if n == 0 {
            return (0.0, crate::prop::PassTrace::default());
        }
        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.begin_pass(&crate::audit::PassBegin {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                balance: self.balance,
            });
        });
        self.locked.iter_mut().for_each(|l| *l = false);
        self.moves.clear();
        self.prefix.clear();
        self.side_weights = SideWeights::new(self.graph, partition);

        let t = prof::start();
        self.seed_probabilities(partition, cut);
        // Alternate gain and probability recomputation (step 4). The first
        // sweep is full: every net's products and every node's gain. Each
        // refinement iteration then maps the gains of the *previous* sweep
        // to new probabilities and incrementally recomputes only what those
        // changes touch; once a sweep leaves every probability unchanged
        // the iteration is at a fixed point and all remaining sweeps —
        // including the final consistency sweep — would reproduce the
        // products and gains already in place, so they are skipped. The
        // loop therefore ends with gains and products consistent with the
        // final probabilities without a separate recomputation.
        self.rebuild_products(partition);
        self.recompute_all_gains(partition);
        prof::stop(prof::Phase::Seed, t);
        let t = prof::start();
        for _ in 0..self.config.refine_iterations {
            if !self.refine_dirty(partition) {
                break;
            }
        }
        prof::stop(prof::Phase::Refine, t);
        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.after_refinement(&crate::audit::RefinementRecord {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                probabilities: &self.p,
                gains: &self.gain,
                locked: &self.locked,
            });
        });

        match &mut self.store {
            GainStore::Avl(trees) => trees.iter_mut().for_each(AvlTree::clear),
            GainStore::Heap(heaps) => heaps.iter_mut().for_each(LazyMaxHeap::clear),
            GainStore::Indexed(heaps) => heaps.iter_mut().for_each(IndexedMaxHeap::clear),
        }
        // Stamps restart each pass: the stores were just cleared, so no
        // key from an earlier pass can ever be compared against, and the
        // relative order of this pass's stamps is all that matters.
        self.next_stamp = 0;
        for v in self.graph.nodes() {
            self.store_insert(v, partition.side(v).index());
        }

        // Move phase (steps 5–8).
        loop {
            let t = prof::start();
            let selected = self.select_move(partition);
            prof::stop(prof::Phase::Select, t);
            let Some(u) = selected else { break };
            self.apply_and_update(u, partition, cut);
        }

        // Commit the best feasible prefix (steps 9–10).
        let best = self.prefix.best();
        let commit = best.map_or(0, |b| b.moves);
        for i in (commit..self.moves.len()).rev() {
            cut.apply_move(self.graph, partition, self.moves[i]);
        }
        let committed_gain = best.map_or(0.0, |b| b.gain);
        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.after_pass(&crate::audit::PassRecord {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                balance: self.balance,
                moves: &self.moves,
                immediate_gains: self.prefix.gains(),
                feasible: self.prefix.feasibility(),
                committed_moves: commit,
                committed_gain,
            });
        });

        // Trace: how deep into negative territory the committed prefix
        // travelled — the paper's "moving such a node at the present time,
        // we expect that a future move will have a large immediate gain".
        let mut running = 0.0f64;
        let mut drawdown = 0.0f64;
        for &g in &self.prefix.gains()[..commit] {
            running += g;
            drawdown = drawdown.min(running);
        }
        let trace = crate::prop::PassTrace {
            tentative_moves: self.moves.len(),
            committed_moves: commit,
            committed_gain,
            max_drawdown: drawdown,
        };
        (committed_gain, trace)
    }

    /// Step 3: seed probabilities uniformly or from deterministic gains.
    fn seed_probabilities(&mut self, partition: &Bipartition, cut: &CutState) {
        match self.config.init {
            GainInit::Uniform => self.p.iter_mut().for_each(|p| *p = self.config.p_init),
            GainInit::Deterministic => {
                let det = fm_gains(self.graph, partition, cut);
                for (p, g) in self.p.iter_mut().zip(det) {
                    *p = self.config.probability_of(g);
                }
            }
        }
    }

    /// One incremental refinement iteration (the dirty-net replacement for
    /// a full probability + product + gain sweep). Returns `false` at the
    /// fixed point (no probability changed), leaving all state untouched.
    ///
    /// Bit-exactness: a net none of whose pins changed probability keeps a
    /// product that a from-scratch recomputation would reproduce exactly
    /// (same factors, same CSR order); a node all of whose nets are clean
    /// also has an unchanged own-probability (a node is a pin of each of
    /// its nets, so a changed `p(v)` dirties every net of `v`), hence its
    /// gain recomputation would read identical inputs — skipping it keeps
    /// the gain table bit-identical to the full sweep.
    fn refine_dirty(&mut self, partition: &Bipartition) -> bool {
        let graph = self.graph;
        // Probability half: apply the gain → probability map, queueing the
        // nets incident to every changed node.
        self.dirty_nets.clear();
        self.net_epoch = bump_epoch(self.net_epoch, &mut self.net_mark);
        let mut changed = false;
        for v in 0..self.p.len() {
            let np = self.config.probability_of(self.gain[v]);
            if np != self.p[v] {
                self.p[v] = np;
                changed = true;
                for &net in graph.nets_of(NodeId::new(v)) {
                    let ni = net.index();
                    if self.net_mark[ni] != self.net_epoch {
                        self.net_mark[ni] = self.net_epoch;
                        self.dirty_nets.push(ni as u32);
                    }
                }
            }
        }
        if !changed {
            return false;
        }
        // Product half: exact per-net recomputation of the dirty nets.
        for i in 0..self.dirty_nets.len() {
            self.recompute_net(NetId::new(self.dirty_nets[i] as usize), partition);
        }
        // Gain half: only nodes on dirty nets can have changed gains. No
        // node is locked during refinement, and the sweep writes gains
        // computed purely from probabilities and products, so visiting in
        // dirty-net order (deduplicated by epoch mark) instead of id order
        // yields the identical gain table.
        self.epoch = bump_epoch(self.epoch, &mut self.mark);
        for i in 0..self.dirty_nets.len() {
            let net = NetId::new(self.dirty_nets[i] as usize);
            for &x in graph.pins_of(net) {
                if self.mark[x.index()] != self.epoch {
                    self.mark[x.index()] = self.epoch;
                    self.gain[x.index()] = self.compute_gain(x, partition);
                    self.node_tick[x.index()] = self.clock;
                }
            }
        }
        true
    }

    /// Rebuilds every net's products, pin counts, and locked counts.
    fn rebuild_products(&mut self, partition: &Bipartition) {
        for net in self.graph.nets() {
            self.recompute_net(net, partition);
        }
    }

    /// Exactly recomputes one net's hot record from current probabilities
    /// and sides — O(q); used for all nets incident to a moved node,
    /// avoiding multiplicative drift entirely. The per-side pin counts
    /// come for free from the same walk.
    fn recompute_net(&mut self, net: NetId, partition: &Bipartition) {
        let mut prod = [1.0f64; 2];
        let mut locked_cnt = [0u32; 2];
        let mut pins = [0u32; 2];
        for &x in self.graph.pins_of(net) {
            let s = partition.side(x).index();
            pins[s] += 1;
            if self.locked[x.index()] {
                locked_cnt[s] += 1;
            } else {
                prod[s] *= self.p[x.index()];
            }
        }
        let hot = &mut self.nets[net.index()];
        hot.prod = prod;
        hot.pins = pins;
        hot.locked = locked_cnt;
        self.clock += 1;
        self.net_tick[net.index()] = self.clock;
        prof::count_net_recompute();
    }

    fn recompute_all_gains(&mut self, partition: &Bipartition) {
        for v in self.graph.nodes() {
            if !self.locked[v.index()] {
                self.gain[v.index()] = self.compute_gain(v, partition);
                self.node_tick[v.index()] = self.clock;
            }
        }
    }

    /// Eqns. 3–4 through the packed per-net records: O(p(u)) per call and
    /// one sequential record read per incident net.
    fn compute_gain(&self, u: NodeId, partition: &Bipartition) -> f64 {
        let s = partition.side(u);
        let (si, oi) = (s.index(), s.other().index());
        let pu = self.p[u.index()];
        debug_assert!(pu > 0.0, "gain of a locked node requested");
        prof::count_gain_recompute();
        let mut g = 0.0;
        for &net in self.graph.nets_of(u) {
            let hot = &self.nets[net.index()];
            let c = hot.weight;
            let same = if hot.locked[si] > 0 {
                0.0
            } else {
                (hot.prod[si] / pu).clamp(0.0, 1.0)
            };
            if hot.pins[oi] > 0 {
                let other = if hot.locked[oi] > 0 {
                    0.0
                } else {
                    hot.prod[oi].clamp(0.0, 1.0)
                };
                g += c * (same - other);
            } else {
                g -= c * (1.0 - same);
            }
        }
        g
    }

    /// Step 6: the best-gain node over both sides whose move keeps the
    /// destination within the pass-relaxed balance bound; when the global
    /// best is blocked, the best node of the other side is taken. Under a
    /// size-constrained balance the scan walks each side's ranking in
    /// descending gain order until a node that fits is found, giving up
    /// after [`PropConfig::balance_probe_depth`] candidates when that
    /// bound is set (unbounded by default, preserving the exact baseline
    /// choice). On the lazy-heap backend the walk pops live keys and
    /// pushes them back afterwards; liveness (`unlocked` and carrying the
    /// node's current stamp) filters superseded entries. On the indexed
    /// backend the walk is a read-only best-first descent. All backends
    /// see the identical candidate sequence.
    fn select_move(&mut self, partition: &Bipartition) -> Option<NodeId> {
        let counts = [partition.count(Side::A), partition.count(Side::B)];
        let weights = self.side_weights.as_array();
        let graph = self.graph;
        let balance = self.balance;
        let probe_limit = self.config.balance_probe_depth.unwrap_or(usize::MAX);
        let (locked, stamp) = (&self.locked, &self.stamp);
        let live = |k: &GainKey| !locked[k.2 as usize] && stamp[k.2 as usize] == k.1;
        let mut best: Option<GainKey> = None;
        let consider = |key: GainKey, best: &mut Option<GainKey>| {
            if best.is_none_or(|b| key > b) {
                *best = Some(key);
            }
        };
        match &mut self.store {
            GainStore::Avl(trees) => {
                for (si, tree) in trees.iter().enumerate() {
                    let side = Side::from_index(si);
                    if !balance.is_weighted() {
                        // Count-based feasibility is per side, not per node.
                        if !balance.allows_move(side, counts[0], counts[1]) {
                            continue;
                        }
                        if let Some(&key) = tree.max() {
                            consider(key, &mut best);
                        }
                        continue;
                    }
                    for (probed, &key) in tree.iter_desc().enumerate() {
                        if probed >= probe_limit {
                            break;
                        }
                        let v = NodeId::new(key.2 as usize);
                        if balance.allows_node_move(side, counts, weights, graph.node_weight(v))
                        {
                            consider(key, &mut best);
                            break;
                        }
                    }
                }
            }
            GainStore::Heap(heaps) => {
                let popped = &mut self.popped_scratch;
                for (si, heap) in heaps.iter_mut().enumerate() {
                    let side = Side::from_index(si);
                    if !balance.is_weighted() {
                        if !balance.allows_move(side, counts[0], counts[1]) {
                            continue;
                        }
                        if let Some(key) = heap.peek_live(live) {
                            consider(key, &mut best);
                        }
                        continue;
                    }
                    popped.clear();
                    while popped.len() < probe_limit {
                        let Some(key) = heap.pop_live(live) else { break };
                        popped.push(key);
                        let v = NodeId::new(key.2 as usize);
                        if balance.allows_node_move(side, counts, weights, graph.node_weight(v))
                        {
                            consider(key, &mut best);
                            break;
                        }
                    }
                    for &key in popped.iter() {
                        heap.push(key);
                    }
                }
            }
            GainStore::Indexed(heaps) => {
                for (si, heap) in heaps.iter_mut().enumerate() {
                    let side = Side::from_index(si);
                    if !balance.is_weighted() {
                        if !balance.allows_move(side, counts[0], counts[1]) {
                            continue;
                        }
                        if let Some((key, _)) = heap.peek() {
                            consider(key, &mut best);
                        }
                        continue;
                    }
                    // Read-only probe in exact descending order — every
                    // entry is live, so the candidate sequence equals the
                    // AVL traversal's.
                    let mut probed = 0;
                    heap.descend(|key, id| {
                        probed += 1;
                        let v = NodeId::new(id);
                        if balance.allows_node_move(side, counts, weights, graph.node_weight(v))
                        {
                            consider(key, &mut best);
                            return false;
                        }
                        probed < probe_limit
                    });
                }
            }
        }
        best.map(|(_, _, id)| NodeId::new(id as usize))
    }

    /// Steps 7–8: move `u`, lock it, note the immediate gain, and update
    /// the affected nets, its neighbors (gains *and* probabilities, per
    /// §3.4), and the top-k of each side.
    fn apply_and_update(
        &mut self,
        u: NodeId,
        partition: &mut Bipartition,
        cut: &mut CutState,
    ) {
        let t = prof::start();
        let graph = self.graph;
        let from = partition.side(u);
        match &mut self.store {
            GainStore::Avl(trees) => {
                let key = (
                    OrderedF64::new(self.gain[u.index()]),
                    self.stamp[u.index()],
                    u.index() as u32,
                );
                let removed = trees[from.index()].remove(&key);
                debug_assert!(removed, "selected node missing from its tree");
            }
            // Lazy heap: the entry goes dead through the lock flag below
            // and is discarded whenever it next surfaces.
            GainStore::Heap(_) => {}
            GainStore::Indexed(heaps) => {
                let removed = heaps[from.index()].remove(u.index());
                debug_assert!(removed.is_some(), "selected node missing from its heap");
            }
        }

        let immediate = cut.apply_move(graph, partition, u);
        self.side_weights.apply_move(from, graph.node_weight(u));
        self.locked[u.index()] = true;
        self.p[u.index()] = 0.0;
        for &net in graph.nets_of(u) {
            self.recompute_net(net, partition);
        }
        self.prefix.push(
            immediate,
            self.balance.is_feasible(
                [partition.count(Side::A), partition.count(Side::B)],
                self.side_weights.as_array(),
            ),
        );
        self.moves.push(u);
        prof::count_move();
        prof::stop(prof::Phase::Apply, t);

        // Refresh all unlocked neighbors (each once): new gain from the
        // updated products, then a new probability from the new gain —
        // propagated into the neighbor's nets' products. This is why §3.4
        // speaks of neighbors-of-neighbors "whose probabilities have been
        // updated": the top-k refresh below catches that second-order
        // staleness without a full cascade.
        let t = prof::start();
        self.epoch = bump_epoch(self.epoch, &mut self.mark);
        self.mark[u.index()] = self.epoch;
        for &net in graph.nets_of(u) {
            for &x in graph.pins_of(net) {
                if !self.locked[x.index()] && self.mark[x.index()] != self.epoch {
                    self.mark[x.index()] = self.epoch;
                    self.refresh_node(x, partition);
                }
            }
        }

        // §3.4: additionally refresh the few top-ranked nodes per side.
        // Candidates already carrying this move's epoch mark were refreshed
        // in the neighbor sweep above and are skipped, so every node is
        // refreshed at most once per move; the ones we do refresh take the
        // mark, keeping the guarantee across both sides' top-k lists. The
        // ids are snapshotted into the reusable scratch buffer because
        // refreshing repositions container entries under a live traversal.
        let k = self.config.top_k_refresh;
        if k > 0 {
            let mut top = std::mem::take(&mut self.topk_scratch);
            for si in 0..2 {
                top.clear();
                match &mut self.store {
                    GainStore::Avl(trees) => {
                        top.extend(trees[si].iter_desc().take(k).map(|&(_, _, id)| id));
                    }
                    GainStore::Heap(heaps) => {
                        // The k best live keys, in the same descending
                        // order the tree traversal yields, then restored.
                        // The pops double as garbage collection: they are
                        // what keeps dead entries from pooling at the top
                        // of this backend's heaps.
                        let (locked, stamp) = (&self.locked, &self.stamp);
                        let live =
                            |key: &GainKey| !locked[key.2 as usize] && stamp[key.2 as usize] == key.1;
                        let popped = &mut self.popped_scratch;
                        popped.clear();
                        while popped.len() < k {
                            let Some(key) = heaps[si].pop_live(live) else { break };
                            popped.push(key);
                        }
                        for &key in popped.iter() {
                            heaps[si].push(key);
                            top.push(key.2);
                        }
                    }
                    GainStore::Indexed(heaps) => {
                        // Read-only best-first walk — no dead entries, no
                        // restore sifts.
                        let mut left = k;
                        heaps[si].descend(|_, id| {
                            top.push(id as u32);
                            left -= 1;
                            left > 0
                        });
                    }
                }
                for &id in &top {
                    let x = NodeId::new(id as usize);
                    if self.mark[x.index()] != self.epoch {
                        self.mark[x.index()] = self.epoch;
                        self.refresh_node(x, partition);
                    }
                }
            }
            self.topk_scratch = top;
        }
        // Bound the heaps' dead-entry bloat: past 4x the node count a
        // query sift-down walks more dead levels than a rebuild costs
        // amortised, so retain the live entries and re-heapify. The live
        // set — and therefore every future selection — is unchanged.
        if let GainStore::Heap(heaps) = &mut self.store {
            let bound = (4 * self.graph.num_nodes()).max(64);
            let (locked, stamp) = (&self.locked, &self.stamp);
            let live = |key: &GainKey| !locked[key.2 as usize] && stamp[key.2 as usize] == key.1;
            for heap in heaps {
                if heap.len() > bound {
                    heap.compact(live);
                }
            }
        }
        prof::stop(prof::Phase::Refresh, t);

        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.after_move(&crate::audit::MoveRecord {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                balance: self.balance,
                moved: u,
                immediate_gain: immediate,
                gains: &self.gain,
                locked: &self.locked,
                probabilities: Some(&self.p),
                products: Some(&self.nets),
                fresh: Some((&self.mark, self.epoch)),
                side_weights: self.side_weights.as_array(),
            });
        });
    }

    /// Recomputes one unlocked node's gain, repositions it in its side's
    /// ranking, and propagates its refreshed probability into its nets'
    /// products.
    ///
    /// Provably redundant refreshes are elided: when no net of `x` ticked
    /// the product clock since `x`'s gain inputs were last read, the
    /// recomputation would reproduce the stored gain bit-for-bit (same
    /// products, same `p(x)`); when additionally `p(x)` already equals
    /// `probability_of` of that gain, the probability half is a no-op too
    /// (after refinement the two can disagree — the fixed iteration count
    /// ends on a gain sweep — so a first refresh may update products even
    /// with an unchanged gain). Both conditions together make the whole
    /// call a provable no-op, and it is skipped. This is the common case
    /// for §3.4 top-k candidates far from recent move activity, and is
    /// what keeps the per-move refresh cost proportional to *actual*
    /// state churn rather than to `2k + degree`.
    fn refresh_node(&mut self, x: NodeId, partition: &Bipartition) {
        let tick = self.node_tick[x.index()];
        if self.config.probability_of(self.gain[x.index()]) == self.p[x.index()]
            && self
                .graph
                .nets_of(x)
                .iter()
                .all(|net| self.net_tick[net.index()] <= tick)
        {
            return;
        }
        let new_gain = self.compute_gain(x, partition);
        self.node_tick[x.index()] = self.clock;
        let si = partition.side(x).index();
        if new_gain != self.gain[x.index()] {
            if let GainStore::Avl(trees) = &mut self.store {
                let old_key = (
                    OrderedF64::new(self.gain[x.index()]),
                    self.stamp[x.index()],
                    x.index() as u32,
                );
                let removed = trees[si].remove(&old_key);
                debug_assert!(removed, "refreshed node missing from its tree");
            }
            // Lazy heap: the old entry goes dead through the stamp bump in
            // `store_insert`. Indexed heap: `store_insert` repositions the
            // entry in place.
            self.gain[x.index()] = new_gain;
            self.store_insert(x, si);
        }
        let new_p = self.config.probability_of(new_gain);
        let old_p = self.p[x.index()];
        if new_p != old_p {
            // Incremental product update: x is unlocked and stays on its
            // side, so only its own factor changes. Probabilities are
            // bounded below by p_min > 0, making the division exact enough;
            // the per-pass product rebuild resets any residual drift.
            self.p[x.index()] = new_p;
            let ratio = new_p / old_p;
            self.clock += 1;
            for &net in self.graph.nets_of(x) {
                self.nets[net.index()].prod[si] *= ratio;
                self.net_tick[net.index()] = self.clock;
            }
        }
    }
}

/// Advances an epoch counter, resetting the mark array on the (in
/// practice unreachable) wrap so stale marks can never alias the new
/// epoch.
fn bump_epoch(epoch: u32, marks: &mut [u32]) -> u32 {
    let next = epoch.wrapping_add(1);
    if next == 0 {
        marks.iter_mut().for_each(|m| *m = u32::MAX);
        1
    } else {
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::probabilistic_gains;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The incremental product-based gains must match the naive Eqn. 3–4
    /// oracle at the start of the move phase.
    #[test]
    fn product_gains_match_naive_oracle() {
        let graph = generate(&GeneratorConfig::new(60, 70, 230).with_seed(21)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(60);
        let mut rng = StdRng::seed_from_u64(5);
        let partition = Bipartition::random(60, &mut rng);

        let mut engine = Engine::new(&graph, &config, balance);
        engine.p.iter_mut().for_each(|p| *p = 0.7);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition);

        let oracle = probabilistic_gains(&graph, &partition, &vec![0.7; 60], &[false; 60]);
        for v in 0..60 {
            assert!(
                (engine.gain[v] - oracle[v]).abs() < 1e-9,
                "node {v}: {} vs {}",
                engine.gain[v],
                oracle[v]
            );
        }
    }

    /// The dirty-net refinement iterations must leave exactly the state a
    /// full-sweep fixed point would: same probabilities, same products,
    /// same gains, bit-for-bit — on both selection backends.
    #[test]
    fn dirty_refinement_matches_full_sweeps() {
        let graph = generate(&GeneratorConfig::new(120, 140, 470).with_seed(91)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(120);
        let mut rng = StdRng::seed_from_u64(12);
        let partition = Bipartition::random(120, &mut rng);
        let cut = CutState::new(&graph, &partition);

        // Engine under test: seed + first full sweep + dirty iterations.
        let mut engine = Engine::new(&graph, &config, balance);
        engine.seed_probabilities(&partition, &cut);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition);
        for _ in 0..config.refine_iterations {
            if !engine.refine_dirty(&partition) {
                break;
            }
        }

        // Full-sweep mirror of the old schedule.
        let mut full = Engine::new(&graph, &config, balance);
        full.seed_probabilities(&partition, &cut);
        full.rebuild_products(&partition);
        full.recompute_all_gains(&partition);
        for _ in 0..config.refine_iterations {
            let mut changed = false;
            for v in 0..full.p.len() {
                let np = config.probability_of(full.gain[v]);
                if np != full.p[v] {
                    full.p[v] = np;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            full.rebuild_products(&partition);
            full.recompute_all_gains(&partition);
        }

        assert_eq!(engine.p, full.p);
        assert_eq!(engine.gain, full.gain);
        assert_eq!(engine.nets, full.nets);
    }

    /// After several locked moves, the engine's incremental gains must
    /// match the oracle evaluated with the current locks. Probabilities
    /// are pinned (`p_min == p_max`) so per-move probability refreshes are
    /// no-ops and every refreshed gain is exactly oracle-comparable.
    #[test]
    fn incremental_gains_match_oracle_after_moves() {
        let graph = generate(&GeneratorConfig::new(40, 48, 160).with_seed(33)).unwrap();
        let mut config = PropConfig::default();
        config.p_min = 0.7;
        config.p_max = 0.7;
        config.p_init = 0.7;
        let balance = BalanceConstraint::bisection(40);
        let mut rng = StdRng::seed_from_u64(6);
        let mut partition = Bipartition::random(40, &mut rng);
        let mut cut = CutState::new(&graph, &partition);

        let mut engine = Engine::new(&graph, &config, balance);
        engine.seed_probabilities(&partition, &cut);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition);
        for v in graph.nodes() {
            engine.store_insert(v, partition.side(v).index());
        }

        for step in 0..10 {
            let u = engine.select_move(&partition).expect("moves available");
            engine.apply_and_update(u, &mut partition, &mut cut);
            // Oracle gains under current probabilities and locks, for every
            // node the engine refreshed (its up-to-date neighbors). Nodes
            // the engine deliberately leaves stale are skipped — the paper
            // only refreshes neighbors and the top-k.
            let oracle = probabilistic_gains(&graph, &partition, &engine.p, &engine.locked);
            let mut checked = 0;
            for x in graph.nodes() {
                if engine.locked[x.index()] || engine.mark[x.index()] != engine.epoch {
                    continue;
                }
                assert!(
                    (engine.gain[x.index()] - oracle[x.index()]).abs() < 1e-9,
                    "step {step}, node {x}"
                );
                checked += 1;
            }
            assert!(checked > 0, "step {step} refreshed no neighbors");
        }
    }

    /// With the default (probability-refreshing) configuration, the per-net
    /// records must stay exactly consistent with a from-scratch rebuild
    /// from the current probabilities after every move.
    #[test]
    fn products_stay_consistent_under_probability_refresh() {
        let graph = generate(&GeneratorConfig::new(40, 48, 160).with_seed(34)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(40);
        let mut rng = StdRng::seed_from_u64(7);
        let mut partition = Bipartition::random(40, &mut rng);
        let mut cut = CutState::new(&graph, &partition);

        let mut engine = Engine::new(&graph, &config, balance);
        engine.seed_probabilities(&partition, &cut);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition);
        for v in graph.nodes() {
            engine.store_insert(v, partition.side(v).index());
        }
        for _ in 0..12 {
            let u = engine.select_move(&partition).expect("moves available");
            engine.apply_and_update(u, &mut partition, &mut cut);
            let snapshot = engine.nets.clone();
            engine.rebuild_products(&partition);
            for net in graph.nets() {
                let i = net.index();
                assert_eq!(snapshot[i].locked, engine.nets[i].locked, "net {net}");
                assert_eq!(snapshot[i].pins, engine.nets[i].pins, "net {net}");
                for s in 0..2 {
                    assert!(
                        (snapshot[i].prod[s] - engine.nets[i].prod[s]).abs() < 1e-12,
                        "net {net} side {s}"
                    );
                }
            }
        }
    }

    /// A full pass must leave the cut state exactly consistent with a
    /// from-scratch recount, and the partition feasible.
    #[test]
    fn pass_leaves_consistent_state() {
        let graph = generate(&GeneratorConfig::new(80, 96, 330).with_seed(55)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(80);
        let mut rng = StdRng::seed_from_u64(9);
        let mut partition = Bipartition::random(80, &mut rng);
        let mut cut = CutState::new(&graph, &partition);
        let before = cut.cut_cost();

        let mut engine = Engine::new(&graph, &config, balance);
        let (committed, trace) = engine.run_pass(&mut partition, &mut cut);
        assert_eq!(trace.committed_gain, committed);
        assert!(trace.committed_moves <= trace.tentative_moves);
        assert!(trace.max_drawdown <= 0.0);
        let fresh = CutState::new(&graph, &partition);
        assert_eq!(cut, fresh);
        assert!((before - cut.cut_cost() - committed).abs() < 1e-9);
        assert!(partition.is_balanced(balance));
    }

    /// Every tentative move of a pass touches each node at most once: the
    /// pass locks nodes monotonically.
    #[test]
    fn pass_moves_each_node_at_most_once() {
        let graph = generate(&GeneratorConfig::new(30, 36, 120).with_seed(77)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(30);
        let mut rng = StdRng::seed_from_u64(10);
        let mut partition = Bipartition::random(30, &mut rng);
        let mut cut = CutState::new(&graph, &partition);
        let mut engine = Engine::new(&graph, &config, balance);
        engine.run_pass(&mut partition, &mut cut);
        let mut seen = [false; 30];
        for &u in &engine.moves {
            assert!(!seen[u.index()], "node {u} moved twice");
            seen[u.index()] = true;
        }
        assert!(!engine.moves.is_empty());
    }

    /// Both selection backends must produce bit-identical passes: same
    /// moves, same commit, same final partition and cut.
    #[test]
    fn selection_backends_are_bit_identical() {
        let graph = generate(&GeneratorConfig::new(150, 170, 580).with_seed(66)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 150).unwrap();
        for seed in 0..4u64 {
            let mut results = Vec::new();
            for selection in [
                SelectionBackend::AvlTree,
                SelectionBackend::LazyHeap,
                SelectionBackend::IndexedHeap,
            ] {
                let mut config = PropConfig::default();
                config.selection = selection;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut partition = Bipartition::random(150, &mut rng);
                let mut cut = CutState::new(&graph, &partition);
                let mut engine = Engine::new(&graph, &config, balance);
                let mut passes = Vec::new();
                loop {
                    let (committed, trace) = engine.run_pass(&mut partition, &mut cut);
                    passes.push((engine.moves.clone(), trace));
                    if committed <= 0.0 {
                        break;
                    }
                }
                results.push((partition, cut.cut_cost(), passes));
            }
            assert_eq!(results[0], results[1], "avl vs lazy heap, seed {seed}");
            assert_eq!(results[0], results[2], "avl vs indexed heap, seed {seed}");
        }
    }
}
