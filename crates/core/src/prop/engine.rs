//! The per-pass PROP engine: probability refinement, product maintenance,
//! move selection, and prefix commit.

use crate::balance::BalanceConstraint;
use crate::cut::CutState;
use crate::gain::fm_gains;
use crate::partition::{Bipartition, Side, SideWeights};
use crate::prop::config::{GainInit, PropConfig};
use prop_dstruct::{AvlTree, OrderedF64, PrefixTracker};
use prop_netlist::{Hypergraph, NetId, NodeId};

/// AVL key: gain first, then a monotonically increasing *recency stamp*,
/// then the node id. `max()` is the paper's "node with the best gain";
/// among equal gains the most recently (re)inserted node wins, matching
/// the LIFO tie-breaking of the classic FM bucket structure — which is
/// known to matter for cut quality.
type GainKey = (OrderedF64, u64, u32);

pub(crate) struct Engine<'a> {
    graph: &'a Hypergraph,
    config: &'a PropConfig,
    balance: BalanceConstraint,
    /// Node probabilities; 0 exactly when locked.
    p: Vec<f64>,
    /// Current probabilistic gains.
    gain: Vec<f64>,
    locked: Vec<bool>,
    /// Per net and side: product of `p(x)` over *unlocked* pins.
    prod: Vec<[f64; 2]>,
    /// Per net and side: number of locked pins. A positive count zeroes
    /// the side's effective product (locked probability is 0).
    locked_cnt: Vec<[u32; 2]>,
    /// Unlocked nodes of each side ranked by gain.
    trees: [AvlTree<GainKey>; 2],
    /// Epoch marks for neighbor de-duplication.
    mark: Vec<u32>,
    epoch: u32,
    /// Per-node recency stamp of its current tree key.
    stamp: Vec<u64>,
    next_stamp: u64,
    /// Running per-side node weights (size-constrained balance).
    side_weights: SideWeights,
    moves: Vec<NodeId>,
    prefix: PrefixTracker,
    /// Reusable buffer for the §3.4 top-k refresh: the candidate ids are
    /// snapshotted here before refreshing (refreshes reposition tree
    /// nodes, which would invalidate a live iterator). Kept on the engine
    /// so the per-move hot path never allocates.
    topk_scratch: Vec<u32>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        graph: &'a Hypergraph,
        config: &'a PropConfig,
        balance: BalanceConstraint,
    ) -> Self {
        let n = graph.num_nodes();
        let e = graph.num_nets();
        Engine {
            graph,
            config,
            balance,
            p: vec![0.0; n],
            gain: vec![0.0; n],
            locked: vec![false; n],
            prod: vec![[1.0; 2]; e],
            locked_cnt: vec![[0; 2]; e],
            trees: [AvlTree::new(), AvlTree::new()],
            mark: vec![0; n],
            epoch: 0,
            stamp: vec![0; n],
            next_stamp: 0,
            side_weights: SideWeights::new(graph, &Bipartition::from_sides(vec![Side::A; n])),
            moves: Vec::with_capacity(n),
            prefix: PrefixTracker::with_capacity(n),
            topk_scratch: Vec::with_capacity(2 * config.top_k_refresh),
        }
    }

    fn key_of(&self, v: NodeId) -> GainKey {
        (
            OrderedF64::new(self.gain[v.index()]),
            self.stamp[v.index()],
            v.index() as u32,
        )
    }

    fn tree_insert(&mut self, v: NodeId, side_index: usize) {
        self.next_stamp += 1;
        self.stamp[v.index()] = self.next_stamp;
        let key = self.key_of(v);
        let inserted = self.trees[side_index].insert(key);
        debug_assert!(inserted, "duplicate tree key");
    }

    /// Runs one pass (steps 3–10 of Fig. 2) and returns the committed gain
    /// (0 when the pass found no improving prefix and was fully rolled
    /// back, which terminates the run) plus the pass trace.
    pub(crate) fn run_pass(
        &mut self,
        partition: &mut Bipartition,
        cut: &mut CutState,
    ) -> (f64, crate::prop::PassTrace) {
        let n = self.graph.num_nodes();
        if n == 0 {
            return (0.0, crate::prop::PassTrace::default());
        }
        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.begin_pass(&crate::audit::PassBegin {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                balance: self.balance,
            });
        });
        self.locked.iter_mut().for_each(|l| *l = false);
        self.moves.clear();
        self.prefix.clear();
        self.side_weights = SideWeights::new(self.graph, partition);

        self.seed_probabilities(partition, cut);
        // Alternate gain and probability recomputation (step 4). Each
        // refinement iteration maps the gains of the *previous* sweep to new
        // probabilities; once a sweep leaves every probability unchanged the
        // iteration is at a fixed point and all remaining sweeps — including
        // the final consistency sweep — would reproduce the products and
        // gains already in place, so they are skipped. The loop therefore
        // ends with gains and products consistent with the final
        // probabilities without a separate recomputation.
        self.rebuild_products(partition);
        self.recompute_all_gains(partition, cut);
        for _ in 0..self.config.refine_iterations {
            if !self.refresh_probabilities() {
                break;
            }
            self.rebuild_products(partition);
            self.recompute_all_gains(partition, cut);
        }
        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.after_refinement(&crate::audit::RefinementRecord {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                probabilities: &self.p,
                gains: &self.gain,
                locked: &self.locked,
            });
        });

        self.trees[0].clear();
        self.trees[1].clear();
        for v in self.graph.nodes() {
            self.tree_insert(v, partition.side(v).index());
        }

        // Move phase (steps 5–8).
        while let Some(u) = self.select_move(partition) {
            self.apply_and_update(u, partition, cut);
        }

        // Commit the best feasible prefix (steps 9–10).
        let best = self.prefix.best();
        let commit = best.map_or(0, |b| b.moves);
        for i in (commit..self.moves.len()).rev() {
            cut.apply_move(self.graph, partition, self.moves[i]);
        }
        let committed_gain = best.map_or(0.0, |b| b.gain);
        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.after_pass(&crate::audit::PassRecord {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                balance: self.balance,
                moves: &self.moves,
                immediate_gains: self.prefix.gains(),
                feasible: self.prefix.feasibility(),
                committed_moves: commit,
                committed_gain,
            });
        });

        // Trace: how deep into negative territory the committed prefix
        // travelled — the paper's "moving such a node at the present time,
        // we expect that a future move will have a large immediate gain".
        let mut running = 0.0f64;
        let mut drawdown = 0.0f64;
        for &g in &self.prefix.gains()[..commit] {
            running += g;
            drawdown = drawdown.min(running);
        }
        let trace = crate::prop::PassTrace {
            tentative_moves: self.moves.len(),
            committed_moves: commit,
            committed_gain,
            max_drawdown: drawdown,
        };
        (committed_gain, trace)
    }

    /// Step 3: seed probabilities uniformly or from deterministic gains.
    fn seed_probabilities(&mut self, partition: &Bipartition, cut: &CutState) {
        match self.config.init {
            GainInit::Uniform => self.p.iter_mut().for_each(|p| *p = self.config.p_init),
            GainInit::Deterministic => {
                let det = fm_gains(self.graph, partition, cut);
                for (p, g) in self.p.iter_mut().zip(det) {
                    *p = self.config.probability_of(g);
                }
            }
        }
    }

    /// Maps every node's current gain to a fresh probability (step 4's
    /// probability half) and reports whether any probability changed — the
    /// fixed-point test of the refinement loop. Runs before any node is
    /// locked, so all nodes participate.
    fn refresh_probabilities(&mut self) -> bool {
        let mut changed = false;
        for v in 0..self.p.len() {
            let np = self.config.probability_of(self.gain[v]);
            if np != self.p[v] {
                self.p[v] = np;
                changed = true;
            }
        }
        changed
    }

    /// Rebuilds every net's per-side unlocked products and locked counts.
    fn rebuild_products(&mut self, partition: &Bipartition) {
        for net in self.graph.nets() {
            self.recompute_net(net, partition);
        }
    }

    /// Exactly recomputes one net's products from current probabilities —
    /// O(q); used for all nets incident to a moved node, avoiding
    /// multiplicative drift entirely.
    fn recompute_net(&mut self, net: NetId, partition: &Bipartition) {
        let mut prod = [1.0f64; 2];
        let mut cnt = [0u32; 2];
        for &x in self.graph.pins_of(net) {
            let s = partition.side(x).index();
            if self.locked[x.index()] {
                cnt[s] += 1;
            } else {
                prod[s] *= self.p[x.index()];
            }
        }
        self.prod[net.index()] = prod;
        self.locked_cnt[net.index()] = cnt;
    }

    fn recompute_all_gains(&mut self, partition: &Bipartition, cut: &CutState) {
        for v in self.graph.nodes() {
            if !self.locked[v.index()] {
                self.gain[v.index()] = self.compute_gain(v, partition, cut);
            }
        }
    }

    /// Eqns. 3–4 through the per-net products: O(p(u)) per call.
    fn compute_gain(&self, u: NodeId, partition: &Bipartition, cut: &CutState) -> f64 {
        let s = partition.side(u);
        let (si, oi) = (s.index(), s.other().index());
        let pu = self.p[u.index()];
        debug_assert!(pu > 0.0, "gain of a locked node requested");
        let mut g = 0.0;
        for &net in self.graph.nets_of(u) {
            let ni = net.index();
            let c = self.graph.net_weight(net);
            let same = if self.locked_cnt[ni][si] > 0 {
                0.0
            } else {
                (self.prod[ni][si] / pu).clamp(0.0, 1.0)
            };
            if cut.pins_on(net, s.other()) > 0 {
                let other = if self.locked_cnt[ni][oi] > 0 {
                    0.0
                } else {
                    self.prod[ni][oi].clamp(0.0, 1.0)
                };
                g += c * (same - other);
            } else {
                g -= c * (1.0 - same);
            }
        }
        g
    }

    /// Step 6: the best-gain node over both sides whose move keeps the
    /// destination within the pass-relaxed balance bound; when the global
    /// best is blocked, the best node of the other side is taken. Under a
    /// size-constrained balance the scan walks each tree in descending
    /// gain order until a node that fits is found, giving up after
    /// [`PropConfig::balance_probe_depth`] candidates when that bound is
    /// set (unbounded by default, preserving the exact baseline choice).
    fn select_move(&self, partition: &Bipartition) -> Option<NodeId> {
        let counts = [partition.count(Side::A), partition.count(Side::B)];
        let weights = self.side_weights.as_array();
        let mut best: Option<GainKey> = None;
        for si in 0..2 {
            let side = Side::from_index(si);
            if !self.balance.is_weighted() {
                // Count-based feasibility is per side, not per node.
                if !self.balance.allows_move(side, counts[0], counts[1]) {
                    continue;
                }
                if let Some(&key) = self.trees[si].max() {
                    if best.is_none_or(|b| key > b) {
                        best = Some(key);
                    }
                }
                continue;
            }
            let probe_limit = self.config.balance_probe_depth.unwrap_or(usize::MAX);
            for (probed, &key) in self.trees[si].iter_desc().enumerate() {
                if probed >= probe_limit {
                    break;
                }
                let v = NodeId::new(key.2 as usize);
                if self.balance.allows_node_move(
                    side,
                    counts,
                    weights,
                    self.graph.node_weight(v),
                ) {
                    if best.is_none_or(|b| key > b) {
                        best = Some(key);
                    }
                    break;
                }
            }
        }
        best.map(|(_, _, id)| NodeId::new(id as usize))
    }

    /// Steps 7–8: move `u`, lock it, note the immediate gain, and update
    /// the affected nets, its neighbors (gains *and* probabilities, per
    /// §3.4), and the top-k of each side.
    fn apply_and_update(
        &mut self,
        u: NodeId,
        partition: &mut Bipartition,
        cut: &mut CutState,
    ) {
        let graph = self.graph;
        let from = partition.side(u);
        let key = self.key_of(u);
        let removed = self.trees[from.index()].remove(&key);
        debug_assert!(removed, "selected node missing from its tree");

        let immediate = cut.apply_move(graph, partition, u);
        self.side_weights.apply_move(from, graph.node_weight(u));
        self.locked[u.index()] = true;
        self.p[u.index()] = 0.0;
        for &net in graph.nets_of(u) {
            self.recompute_net(net, partition);
        }
        self.prefix.push(
            immediate,
            self.balance.is_feasible(
                [partition.count(Side::A), partition.count(Side::B)],
                self.side_weights.as_array(),
            ),
        );
        self.moves.push(u);

        // Refresh all unlocked neighbors (each once): new gain from the
        // updated products, then a new probability from the new gain —
        // propagated into the neighbor's nets' products. This is why §3.4
        // speaks of neighbors-of-neighbors "whose probabilities have been
        // updated": the top-k refresh below catches that second-order
        // staleness without a full cascade.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.iter_mut().for_each(|m| *m = u32::MAX);
            self.epoch = 1;
        }
        self.mark[u.index()] = self.epoch;
        for &net in graph.nets_of(u) {
            for &x in graph.pins_of(net) {
                if !self.locked[x.index()] && self.mark[x.index()] != self.epoch {
                    self.mark[x.index()] = self.epoch;
                    self.refresh_node(x, partition, cut);
                }
            }
        }

        // §3.4: additionally refresh the few top-ranked nodes per side.
        // Candidates already carrying this move's epoch mark were refreshed
        // in the neighbor sweep above and are skipped, so every node is
        // refreshed at most once per move; the ones we do refresh take the
        // mark, keeping the guarantee across both sides' top-k lists. The
        // ids are snapshotted into the reusable scratch buffer because
        // refreshing repositions tree nodes under a live iterator.
        let k = self.config.top_k_refresh;
        if k > 0 {
            let mut top = std::mem::take(&mut self.topk_scratch);
            for si in 0..2 {
                top.clear();
                top.extend(self.trees[si].iter_desc().take(k).map(|&(_, _, id)| id));
                for &id in &top {
                    let x = NodeId::new(id as usize);
                    if self.mark[x.index()] != self.epoch {
                        self.mark[x.index()] = self.epoch;
                        self.refresh_node(x, partition, cut);
                    }
                }
            }
            self.topk_scratch = top;
        }

        #[cfg(feature = "debug-audit")]
        crate::audit::with_auditor(|a| {
            a.after_move(&crate::audit::MoveRecord {
                engine: "PROP",
                graph: self.graph,
                partition,
                cut,
                balance: self.balance,
                moved: u,
                immediate_gain: immediate,
                gains: &self.gain,
                locked: &self.locked,
                probabilities: Some(&self.p),
                products: Some((&self.prod, &self.locked_cnt)),
                fresh: Some((&self.mark, self.epoch)),
                side_weights: self.side_weights.as_array(),
            });
        });
    }

    /// Recomputes one unlocked node's gain, repositions it in its tree,
    /// and propagates its refreshed probability into its nets' products.
    fn refresh_node(&mut self, x: NodeId, partition: &Bipartition, cut: &CutState) {
        let new_gain = self.compute_gain(x, partition, cut);
        let si = partition.side(x).index();
        if new_gain != self.gain[x.index()] {
            let old_key = self.key_of(x);
            let removed = self.trees[si].remove(&old_key);
            debug_assert!(removed, "refreshed node missing from its tree");
            self.gain[x.index()] = new_gain;
            self.tree_insert(x, si);
        }
        let new_p = self.config.probability_of(new_gain);
        let old_p = self.p[x.index()];
        if new_p != old_p {
            // Incremental product update: x is unlocked and stays on its
            // side, so only its own factor changes. Probabilities are
            // bounded below by p_min > 0, making the division exact enough;
            // the per-pass product rebuild resets any residual drift.
            self.p[x.index()] = new_p;
            let ratio = new_p / old_p;
            for &net in self.graph.nets_of(x) {
                self.prod[net.index()][si] *= ratio;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::probabilistic_gains;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The incremental product-based gains must match the naive Eqn. 3–4
    /// oracle at the start of the move phase.
    #[test]
    fn product_gains_match_naive_oracle() {
        let graph = generate(&GeneratorConfig::new(60, 70, 230).with_seed(21)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(60);
        let mut rng = StdRng::seed_from_u64(5);
        let partition = Bipartition::random(60, &mut rng);
        let cut = CutState::new(&graph, &partition);

        let mut engine = Engine::new(&graph, &config, balance);
        engine.p.iter_mut().for_each(|p| *p = 0.7);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition, &cut);

        let oracle = probabilistic_gains(&graph, &partition, &vec![0.7; 60], &[false; 60]);
        for v in 0..60 {
            assert!(
                (engine.gain[v] - oracle[v]).abs() < 1e-9,
                "node {v}: {} vs {}",
                engine.gain[v],
                oracle[v]
            );
        }
    }

    /// After several locked moves, the engine's incremental gains must
    /// match the oracle evaluated with the current locks. Probabilities
    /// are pinned (`p_min == p_max`) so per-move probability refreshes are
    /// no-ops and every refreshed gain is exactly oracle-comparable.
    #[test]
    fn incremental_gains_match_oracle_after_moves() {
        let graph = generate(&GeneratorConfig::new(40, 48, 160).with_seed(33)).unwrap();
        let mut config = PropConfig::default();
        config.p_min = 0.7;
        config.p_max = 0.7;
        config.p_init = 0.7;
        let balance = BalanceConstraint::bisection(40);
        let mut rng = StdRng::seed_from_u64(6);
        let mut partition = Bipartition::random(40, &mut rng);
        let mut cut = CutState::new(&graph, &partition);

        let mut engine = Engine::new(&graph, &config, balance);
        engine.seed_probabilities(&partition, &cut);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition, &cut);
        for v in graph.nodes() {
            engine.tree_insert(v, partition.side(v).index());
        }

        for step in 0..10 {
            let u = engine.select_move(&partition).expect("moves available");
            engine.apply_and_update(u, &mut partition, &mut cut);
            // Oracle gains under current probabilities and locks, for every
            // node the engine refreshed (its up-to-date neighbors). Nodes
            // the engine deliberately leaves stale are skipped — the paper
            // only refreshes neighbors and the top-k.
            let oracle = probabilistic_gains(&graph, &partition, &engine.p, &engine.locked);
            let mut checked = 0;
            for x in graph.nodes() {
                if engine.locked[x.index()] || engine.mark[x.index()] != engine.epoch {
                    continue;
                }
                assert!(
                    (engine.gain[x.index()] - oracle[x.index()]).abs() < 1e-9,
                    "step {step}, node {x}"
                );
                checked += 1;
            }
            assert!(checked > 0, "step {step} refreshed no neighbors");
        }
    }

    /// With the default (probability-refreshing) configuration, the per-net
    /// products must stay exactly consistent with a from-scratch rebuild
    /// from the current probabilities after every move.
    #[test]
    fn products_stay_consistent_under_probability_refresh() {
        let graph = generate(&GeneratorConfig::new(40, 48, 160).with_seed(34)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(40);
        let mut rng = StdRng::seed_from_u64(7);
        let mut partition = Bipartition::random(40, &mut rng);
        let mut cut = CutState::new(&graph, &partition);

        let mut engine = Engine::new(&graph, &config, balance);
        engine.seed_probabilities(&partition, &cut);
        engine.rebuild_products(&partition);
        engine.recompute_all_gains(&partition, &cut);
        for v in graph.nodes() {
            engine.tree_insert(v, partition.side(v).index());
        }
        for _ in 0..12 {
            let u = engine.select_move(&partition).expect("moves available");
            engine.apply_and_update(u, &mut partition, &mut cut);
            let (prod_snapshot, cnt_snapshot) =
                (engine.prod.clone(), engine.locked_cnt.clone());
            engine.rebuild_products(&partition);
            for net in graph.nets() {
                let i = net.index();
                assert_eq!(cnt_snapshot[i], engine.locked_cnt[i], "net {net}");
                for s in 0..2 {
                    assert!(
                        (prod_snapshot[i][s] - engine.prod[i][s]).abs() < 1e-12,
                        "net {net} side {s}"
                    );
                }
            }
        }
    }

    /// A full pass must leave the cut state exactly consistent with a
    /// from-scratch recount, and the partition feasible.
    #[test]
    fn pass_leaves_consistent_state() {
        let graph = generate(&GeneratorConfig::new(80, 96, 330).with_seed(55)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(80);
        let mut rng = StdRng::seed_from_u64(9);
        let mut partition = Bipartition::random(80, &mut rng);
        let mut cut = CutState::new(&graph, &partition);
        let before = cut.cut_cost();

        let mut engine = Engine::new(&graph, &config, balance);
        let (committed, trace) = engine.run_pass(&mut partition, &mut cut);
        assert_eq!(trace.committed_gain, committed);
        assert!(trace.committed_moves <= trace.tentative_moves);
        assert!(trace.max_drawdown <= 0.0);
        let fresh = CutState::new(&graph, &partition);
        assert_eq!(cut, fresh);
        assert!((before - cut.cut_cost() - committed).abs() < 1e-9);
        assert!(partition.is_balanced(balance));
    }

    /// Every tentative move of a pass touches each node at most once: the
    /// pass locks nodes monotonically.
    #[test]
    fn pass_moves_each_node_at_most_once() {
        let graph = generate(&GeneratorConfig::new(30, 36, 120).with_seed(77)).unwrap();
        let config = PropConfig::default();
        let balance = BalanceConstraint::bisection(30);
        let mut rng = StdRng::seed_from_u64(10);
        let mut partition = Bipartition::random(30, &mut rng);
        let mut cut = CutState::new(&graph, &partition);
        let mut engine = Engine::new(&graph, &config, balance);
        engine.run_pass(&mut partition, &mut cut);
        let mut seen = [false; 30];
        for &u in &engine.moves {
            assert!(!seen[u.index()], "node {u} moved twice");
            seen[u.index()] = true;
        }
        assert!(!engine.moves.is_empty());
    }
}
