//! The PROP probabilistic-gain partitioner (§3 of the paper).
//!
//! Each pass proceeds in two phases:
//!
//! 1. **Refinement** (steps 3–4 of Fig. 2): node probabilities are seeded
//!    (uniformly at `p_init`, or from deterministic gains), then gains and
//!    probabilities are alternately recomputed for a fixed number of
//!    iterations — gains from per-net probability products (Eqns. 3–4),
//!    probabilities from gains through the clamped linear map (§3.2).
//! 2. **Moves** (steps 5–8): the best-gain balance-feasible node moves and
//!    locks (its probability drops to 0), the affected nets' products are
//!    rebuilt, its neighbors' gains are recomputed, and the top-k nodes of
//!    each side are additionally refreshed (§3.4). The exact immediate cut
//!    gain of every move feeds a prefix tracker; the best feasible prefix
//!    is committed (steps 9–10), everything beyond it is rolled back.
//!
//! Nodes are ranked per side in an ordered gain store keyed by
//! `(gain, recency, node)` — either the AVL tree the paper's complexity
//! analysis (§3.5) assumes, or a faster lazy-deletion max-heap producing
//! bit-identical runs (see [`SelectionBackend`]). Per-net hot state is
//! packed into [`NetHot`] records so the gain inner loop is one
//! sequential read per incident net.

mod config;
mod engine;

pub use config::{GainInit, PropConfig, SelectionBackend};
pub use engine::NetHot;

use crate::balance::BalanceConstraint;
use crate::cut::CutState;
use crate::partition::Bipartition;
use crate::partitioner::{ImproveStats, Partitioner};
use engine::Engine;
use prop_netlist::Hypergraph;

/// Per-pass diagnostics of a PROP run.
///
/// The paper's key behavioural claim is that probabilistic selection
/// rides through *valleys* — sequences of moves whose immediate gains are
/// negative — to reach larger payoffs. [`PassTrace::max_drawdown`]
/// measures exactly how deep each committed prefix dipped.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PassTrace {
    /// Nodes tentatively moved in the pass.
    pub tentative_moves: usize,
    /// Length of the committed prefix.
    pub committed_moves: usize,
    /// Total cut improvement of the committed prefix.
    pub committed_gain: f64,
    /// The most negative running sum of immediate gains within the
    /// committed prefix (0 when the pass never went below its start).
    pub max_drawdown: f64,
}

/// The PROP partitioner.
///
/// ```
/// use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(80, 90, 300).with_seed(5))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let result = Prop::new(PropConfig::default()).run_seeded(&graph, balance, 1)?;
/// assert!(result.partition.is_balanced(balance));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Prop {
    config: PropConfig,
}

impl Prop {
    /// Creates a PROP partitioner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`PropConfig::validate`] first when the parameters are not
    /// statically known.
    pub fn new(config: PropConfig) -> Self {
        config
            .validate()
            .expect("invalid PROP configuration");
        Prop { config }
    }

    /// The configuration this partitioner runs with.
    pub fn config(&self) -> &PropConfig {
        &self.config
    }

    /// Like [`Partitioner::improve`], additionally returning one
    /// [`PassTrace`] per executed pass — the instrumentation behind the
    /// valley-crossing analysis (see the `valley_crossing` example).
    pub fn improve_traced(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> (ImproveStats, Vec<PassTrace>) {
        let mut cut = CutState::new(graph, partition);
        let mut engine = Engine::new(graph, &self.config, balance);
        let mut traces = Vec::new();
        while traces.len() < self.config.max_passes {
            // Cooperative cancellation: stop at the pass boundary, where
            // the partition is feasible (each pass commits its best
            // feasible prefix). No-op unless a tripped token is installed.
            if crate::cancel::requested() {
                break;
            }
            let (committed, trace) = engine.run_pass(partition, &mut cut);
            traces.push(trace);
            if committed <= 0.0 {
                break;
            }
        }
        (
            ImproveStats {
                passes: traces.len(),
                cut_cost: cut.cut_cost(),
            },
            traces,
        )
    }
}

impl Default for Prop {
    fn default() -> Self {
        Prop::new(PropConfig::default())
    }
}

impl Partitioner for Prop {
    fn name(&self) -> &str {
        "PROP"
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        self.improve_traced(graph, partition, balance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::cut_cost;
    use crate::partition::Side;
    use prop_netlist::generate::{generate, GeneratorConfig};
    use prop_netlist::HypergraphBuilder;

    #[test]
    fn improves_an_obviously_bad_partition() {
        // Two 4-cliques of 2-pin nets joined by a single bridge net; the
        // alternating initial partition cuts many nets, the optimum cuts 1.
        let mut b = HypergraphBuilder::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_net(1.0, [i, j]).unwrap();
                b.add_net(1.0, [i + 4, j + 4]).unwrap();
            }
        }
        b.add_net(1.0, [3, 4]).unwrap();
        let g = b.build().unwrap();
        let balance = BalanceConstraint::bisection(8);
        let mut part = Bipartition::from_sides(vec![
            Side::A,
            Side::B,
            Side::A,
            Side::B,
            Side::A,
            Side::B,
            Side::A,
            Side::B,
        ]);
        let before = cut_cost(&g, &part);
        assert!(before > 1.0);
        let stats = Prop::default().improve(&g, &mut part, balance);
        let after = cut_cost(&g, &part);
        assert_eq!(stats.cut_cost, after);
        assert_eq!(after, 1.0, "optimal bridge cut should be found");
        assert!(part.is_balanced(balance));
    }

    #[test]
    fn both_init_methods_work() {
        let g = generate(&GeneratorConfig::new(120, 130, 440).with_seed(8)).unwrap();
        let balance = BalanceConstraint::bisection(g.num_nodes());
        for init in [GainInit::Uniform, GainInit::Deterministic] {
            let mut cfg = PropConfig::default();
            cfg.init = init;
            let res = Prop::new(cfg).run_seeded(&g, balance, 3).unwrap();
            assert!(res.partition.is_balanced(balance), "{init:?}");
            assert_eq!(res.cut_cost, cut_cost(&g, &res.partition));
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let g = generate(&GeneratorConfig::new(90, 100, 330).with_seed(4)).unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, g.num_nodes()).unwrap();
        let p = Prop::default();
        let a = p.run_multi(&g, balance, 3, 7).unwrap();
        let b = p.run_multi(&g, balance, 3, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn never_worsens_a_feasible_partition() {
        let g = generate(&GeneratorConfig::new(64, 70, 240).with_seed(2)).unwrap();
        let balance = BalanceConstraint::bisection(64);
        for seed in 0..5u64 {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let mut part = Bipartition::random(64, &mut rng);
            let before = cut_cost(&g, &part);
            Prop::default().improve(&g, &mut part, balance);
            let after = cut_cost(&g, &part);
            assert!(after <= before, "seed {seed}: {after} > {before}");
            assert!(part.is_balanced(balance));
        }
    }

    #[test]
    #[should_panic(expected = "invalid PROP configuration")]
    fn invalid_config_panics() {
        let mut cfg = PropConfig::default();
        cfg.p_min = 0.0;
        let _ = Prop::new(cfg);
    }

    #[test]
    fn name_and_config_access() {
        let p = Prop::default();
        assert_eq!(p.name(), "PROP");
        assert_eq!(p.config().top_k_refresh, 5);
    }
}
