//! Recursive k-way partitioning with per-part area budgets.
//!
//! The paper's §1: "Each subset is further partitioned into two smaller
//! subsets with a minimum cut, and so forth until we have recursively
//! partitioned the circuit into either a prespecified number k of
//! subsets…". This module drives any 2-way [`Partitioner`] through that
//! recursion. Two modes share one driver:
//!
//! * **Uniform** (`budgets: None`) — every level applies the `(r1, r2)`
//!   ratio balance (widened for uneven part counts when `k` is not a
//!   power of two), exactly like classic recursive bisection. With
//!   `k = 2` the driver reduces *byte-identically* to the existing
//!   bipartition harness: same constraint, same seeds, same engine call.
//! * **Budgeted** (`budgets: Some(vec)`) — each part carries an absolute
//!   area budget (multi-FPGA style; budgets need not be uniform). Every
//!   recursion node derives asymmetric per-side weight caps from the
//!   budget sums of its two part groups, widened by an *adaptive
//!   epsilon*: with sub-weight `W`, group budgets `B_L`/`B_R`, depth
//!   `d = ⌈log₂ k'⌉` and total slack `σ = (B_L + B_R)/W ≥ 1`, each level
//!   may use the per-level factor `f = σ^(1/d)`, so the slack is spent
//!   evenly across the remaining levels and leaf parts still land inside
//!   their budgets. Caps are floored at `W − B_other` so the two sides
//!   always cover `W`.
//!
//! **Determinism.** Every recursion node draws its harness seed from the
//! salted stream discipline of [`crate::seed`], keyed by the node's path
//! in the recursion tree (root = 1, children = `2·path` and
//! `2·path + 1`). The 2-way harness underneath is bit-identical at every
//! thread count, so the assembled k-way result is too — and it is stable
//! under `k` changes in the sense that the root bisection of `k = 2`
//! equals the plain bipartition at the same seed.
//!
//! **Cancellation.** The driver polls its [`CancelToken`] at recursion
//! node boundaries (the engines poll it at pass boundaries). Once
//! tripped, every remaining group is packed deterministically
//! (worst-fit decreasing) into its parts, so a cancelled run still
//! yields a complete, feasible assignment.

use crate::balance::BalanceConstraint;
use crate::cancel::CancelToken;
use crate::error::PartitionError;
use crate::parallel::{ParallelPolicy, RunStatus};
use crate::partition::{Bipartition, Side, SideWeights};
use crate::partitioner::{ImproveStats, Partitioner};
use crate::seed::salted_stream_seed;
use prop_netlist::{Hypergraph, NetId, NodeId};

/// Stream-family salt of the per-recursion-node harness seeds (see
/// [`crate::seed::salted_stream_seed`]); the index is the node's path.
const KWAY_SEED_SALT: u64 = 0xa076_1d64_78bd_642f;

/// Weight-comparison tolerance, mirroring the balance constraint's.
const WEIGHT_EPS: f64 = 1e-9;

/// Configuration of one recursive k-way run.
#[derive(Clone, PartialEq, Debug)]
pub struct KwayConfig {
    /// Number of parts.
    pub k: usize,
    /// Absolute per-part area budgets (`budgets[i]` caps part `i`'s
    /// total node weight). `None` = uniform mode: ratio balance at every
    /// level, no budget enforcement.
    pub budgets: Option<Vec<f64>>,
    /// Multi-start runs per bisection.
    pub runs: usize,
    /// Base seed; per-node seeds derive from it by recursion path.
    pub seed: u64,
    /// Lower balance ratio of each bisection (uniform mode).
    pub r1: f64,
    /// Upper balance ratio of each bisection (uniform mode).
    pub r2: f64,
    /// Run-level fan-out policy handed to the 2-way harness. Results are
    /// bit-identical for every policy.
    pub policy: ParallelPolicy,
}

impl KwayConfig {
    /// The default protocol at `k` parts: best-of-20 runs, seed 0, the
    /// paper's 45–55% window, sequential fan-out, no budgets.
    pub fn new(k: usize) -> Self {
        KwayConfig {
            k,
            budgets: None,
            runs: 20,
            seed: 0,
            r1: 0.45,
            r2: 0.55,
            policy: ParallelPolicy::Sequential,
        }
    }
}

/// An assignment of every node to one of `k` parts, with the per-part
/// weights tallied at assembly.
#[derive(Clone, PartialEq, Debug)]
pub struct KwayPartition {
    assignment: Vec<u32>,
    k: usize,
    part_weights: Vec<f64>,
}

impl KwayPartition {
    /// The part of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn block(&self, node: NodeId) -> usize {
        self.assignment[node.index()] as usize
    }

    /// Number of parts `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parts `k` (alias of [`k`](KwayPartition::k), kept for
    /// the recursive-bisection vocabulary).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.k
    }

    /// The flat `node → part` assignment.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Total node weight of each part, accumulated in node order at
    /// assembly (the same order as the verification oracles, so the sums
    /// agree bit-for-bit).
    #[inline]
    pub fn part_weights(&self) -> &[f64] {
        &self.part_weights
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` for the empty assignment.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Node counts per part.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &b in &self.assignment {
            sizes[b as usize] += 1;
        }
        sizes
    }

    /// Node weights per part, recounted from `graph` (equal to
    /// [`part_weights`](KwayPartition::part_weights) when `graph` is the
    /// circuit the partition was built from).
    pub fn block_weights(&self, graph: &Hypergraph) -> Vec<f64> {
        let mut weights = vec![0.0; self.k];
        for v in graph.nodes() {
            weights[self.block(v)] += graph.node_weight(v);
        }
        weights
    }

    /// Whether `net` spans two or more parts.
    pub fn is_cut(&self, graph: &Hypergraph, net: NetId) -> bool {
        let mut blocks = graph.pins_of(net).iter().map(|&v| self.block(v));
        match blocks.next() {
            None => false,
            Some(first) => blocks.any(|b| b != first),
        }
    }

    /// The hyperedge-cut objective: total weight of nets spanning ≥ 2
    /// parts, accumulated in net order.
    pub fn cut_cost(&self, graph: &Hypergraph) -> f64 {
        graph
            .nets()
            .filter(|&net| self.is_cut(graph, net))
            .map(|net| graph.net_weight(net))
            .sum()
    }

    /// The connectivity (λ − 1) objective: `Σ (λ(net) − 1) · w(net)`
    /// over nets, where λ is the number of distinct parts a net's pins
    /// touch, accumulated in net order. For `k = 2` this equals
    /// [`cut_cost`](KwayPartition::cut_cost).
    pub fn connectivity_cost(&self, graph: &Hypergraph) -> f64 {
        let mut seen = vec![u64::MAX; self.k];
        let mut cost = 0.0;
        for (stamp, net) in graph.nets().enumerate() {
            let mut lambda = 0u32;
            for &v in graph.pins_of(net) {
                let part = self.assignment[v.index()] as usize;
                if seen[part] != stamp as u64 {
                    seen[part] = stamp as u64;
                    lambda += 1;
                }
            }
            if lambda >= 2 {
                cost += f64::from(lambda - 1) * graph.net_weight(net);
            }
        }
        cost
    }

    /// Number of cut nets.
    pub fn cut_nets(&self, graph: &Hypergraph) -> usize {
        graph.nets().filter(|&net| self.is_cut(graph, net)).count()
    }
}

/// Outcome of one k-way drive.
#[derive(Clone, PartialEq, Debug)]
pub struct KwayReport {
    /// The assembled partition.
    pub partition: KwayPartition,
    /// `Completed`, or `Cancelled` when the token tripped mid-recursion
    /// (the assignment is still complete: remaining groups were packed).
    pub status: RunStatus,
    /// Total engine passes across every bisection.
    pub total_passes: usize,
}

/// Recursively partitions `graph` into `config.k` parts with `engine`.
///
/// See the module docs for the two modes (uniform ratios vs per-part
/// budgets), the seed-path discipline, and the adaptive-epsilon cap
/// derivation.
///
/// # Errors
///
/// * [`PartitionError::EmptyGraph`] for a node-less graph.
/// * [`PartitionError::InvalidConfig`] when `k == 0`, `k` exceeds the
///   node count, `runs == 0`, a budget vector's arity is not `k`, or a
///   budget is non-finite or non-positive.
/// * [`PartitionError::InvalidBalance`] for unsatisfiable ratios.
/// * [`PartitionError::InfeasibleBudgets`] when the budgets sum below
///   the total node weight, any budget is below the heaviest node, or no
///   packing within the caps was found.
pub fn partition_kway<P: Partitioner + ?Sized>(
    graph: &Hypergraph,
    engine: &P,
    config: &KwayConfig,
) -> Result<KwayReport, PartitionError> {
    partition_kway_cancellable(graph, engine, config, &CancelToken::new())
}

/// Like [`partition_kway`], under a cooperative cancellation token: the
/// driver polls it at recursion-node boundaries and the engines at pass
/// boundaries. With a token that never trips the report is bit-identical
/// to [`partition_kway`].
///
/// # Errors
///
/// Same as [`partition_kway`].
pub fn partition_kway_cancellable<P: Partitioner + ?Sized>(
    graph: &Hypergraph,
    engine: &P,
    config: &KwayConfig,
    token: &CancelToken,
) -> Result<KwayReport, PartitionError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    let k = config.k;
    if k == 0 || k > n {
        return Err(PartitionError::InvalidConfig {
            message: format!("cannot split {n} nodes into {k} parts"),
        });
    }
    if config.runs == 0 {
        return Err(PartitionError::InvalidConfig {
            message: "runs must be at least 1".into(),
        });
    }
    // Validate the ratios once up front.
    let _ = BalanceConstraint::new(config.r1, config.r2, n)?;
    if let Some(budgets) = &config.budgets {
        if budgets.len() != k {
            return Err(PartitionError::InvalidConfig {
                message: format!("{} budgets supplied for k = {k} parts", budgets.len()),
            });
        }
        if budgets.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err(PartitionError::InvalidConfig {
                message: "budgets must be finite and positive".into(),
            });
        }
        let total = graph.total_node_weight();
        let sum: f64 = budgets.iter().sum();
        if sum < total - WEIGHT_EPS {
            return Err(PartitionError::InfeasibleBudgets {
                message: format!("budgets sum to {sum}, below the total node weight {total}"),
            });
        }
        let w_max = graph.max_node_weight();
        if budgets.iter().any(|b| *b < w_max - WEIGHT_EPS) {
            return Err(PartitionError::InfeasibleBudgets {
                message: format!("a budget is below the heaviest node ({w_max})"),
            });
        }
    }

    let mut assignment = vec![0u32; n];
    let mut state = DriveState {
        total_passes: 0,
        cancelled: false,
    };
    let all: Vec<NodeId> = graph.nodes().collect();
    drive(
        graph,
        engine,
        config,
        token,
        &all,
        0,
        k,
        1,
        &mut assignment,
        &mut state,
    )?;

    // Assemble per-part weights in node order (the oracle's order).
    let mut part_weights = vec![0.0; k];
    for v in graph.nodes() {
        part_weights[assignment[v.index()] as usize] += graph.node_weight(v);
    }
    if let Some(budgets) = &config.budgets {
        if let Some(part) = (0..k).find(|&i| part_weights[i] > budgets[i] + WEIGHT_EPS) {
            return Err(PartitionError::InfeasibleBudgets {
                message: format!(
                    "no packing found: part {part} holds {} against budget {}",
                    part_weights[part], budgets[part]
                ),
            });
        }
    }
    Ok(KwayReport {
        partition: KwayPartition {
            assignment,
            k,
            part_weights,
        },
        status: if state.cancelled {
            RunStatus::Cancelled
        } else {
            RunStatus::Completed
        },
        total_passes: state.total_passes,
    })
}

/// Mutable bookkeeping threaded through the recursion.
struct DriveState {
    total_passes: usize,
    /// Sticky: set on the first tripped poll (or early-stopped engine
    /// report); every later group is packed instead of bisected.
    cancelled: bool,
}

/// One recursion node: bisect `nodes` into the part range
/// `first .. first + k`, where `path` identifies the node in the
/// recursion tree (root 1, children `2·path` / `2·path + 1`).
#[allow(clippy::too_many_arguments)] // a flat recursion frame
fn drive<P: Partitioner + ?Sized>(
    graph: &Hypergraph,
    engine: &P,
    config: &KwayConfig,
    token: &CancelToken,
    nodes: &[NodeId],
    first: u32,
    k: usize,
    path: u64,
    assignment: &mut [u32],
    state: &mut DriveState,
) -> Result<(), PartitionError> {
    if nodes.is_empty() {
        return Ok(());
    }
    if k == 1 {
        for &v in nodes {
            assignment[v.index()] = first;
        }
        return Ok(());
    }
    if token.is_cancelled() {
        state.cancelled = true;
    }
    let part_budgets = config
        .budgets
        .as_deref()
        .map(|b| &b[first as usize..first as usize + k]);
    if state.cancelled || nodes.len() <= 3 {
        // Cancelled, or too small to bisect meaningfully: deterministic
        // worst-fit-decreasing packing into the remaining parts.
        pack_parts(graph, nodes, first, k, part_budgets, assignment);
        return Ok(());
    }

    // The root works on `graph` directly: an induced subgraph of all
    // nodes would drop single-pin nets and renumber nothing, silently
    // breaking the k = 2 byte-identity with the plain bipartition path.
    let root = path == 1 && nodes.len() == graph.num_nodes();
    let (holder, back) = if root {
        (None, nodes.to_vec())
    } else {
        let (s, b) = graph.induced_subgraph(nodes);
        (Some(s), b)
    };
    let sub: &Hypergraph = holder.as_ref().unwrap_or(graph);

    let k_left = k.div_ceil(2);
    let k_right = k - k_left;
    let node_seed = if path == 1 {
        config.seed
    } else {
        salted_stream_seed(config.seed, KWAY_SEED_SALT, path)
    };

    let report;
    let caps;
    match part_budgets {
        Some(budgets) => {
            let (left_budgets, right_budgets) = budgets.split_at(k_left);
            let b_left: f64 = left_budgets.iter().sum();
            let b_right: f64 = right_budgets.iter().sum();
            let w = sub.total_node_weight();
            // Adaptive epsilon: spend the total budget slack σ evenly
            // over the remaining ⌈log₂ k⌉ levels, so every level gets
            // the same relative headroom and leaves still fit.
            let depth = k.next_power_of_two().trailing_zeros().max(1);
            let sigma = ((b_left + b_right) / w).max(1.0);
            let widen = sigma.powf(1.0 / f64::from(depth));
            let alpha = b_left / (b_left + b_right);
            let cap_a = b_left.min((alpha * w * widen).max(w - b_right));
            let cap_b = b_right.min(((1.0 - alpha) * w * widen).max(w - b_left));
            let balance = BalanceConstraint::budgeted(cap_a, cap_b, sub)?;
            // Random initial bisections target 50/50 and may start
            // outside an asymmetric window; the shim deterministically
            // repairs each start before the engine sees it.
            let shim = Repaired { inner: engine };
            report = shim.run_multi_cancellable(
                sub,
                balance,
                config.runs,
                node_seed,
                config.policy,
                token,
            )?;
            caps = Some((balance, cap_a, cap_b));
        }
        None => {
            // Uneven k: one branch receives ⌈k/2⌉ of the parts. The
            // ratio window is symmetric, so it is widened to admit the
            // ideal larger-side fraction, and after the split the
            // heavier side is handed the larger part count.
            let (r1_eff, r2_eff) = if k_left == k_right {
                (config.r1, config.r2)
            } else {
                let target = k_left as f64 / k as f64;
                let hi = config.r2.max(target + (config.r2 - config.r1) / 4.0).min(0.99);
                ((1.0 - hi).max(0.01), hi)
            };
            let balance = BalanceConstraint::weighted(r1_eff, r2_eff, sub)?;
            report = engine.run_multi_cancellable(
                sub,
                balance,
                config.runs,
                node_seed,
                config.policy,
                token,
            )?;
            caps = None;
        }
    }
    state.total_passes += report.result.total_passes;
    if report.status == RunStatus::Cancelled {
        state.cancelled = true;
    }
    let mut partition = report.result.partition;
    if let Some((balance, cap_a, cap_b)) = caps {
        // A pre-trip fallback (token tripped before any run) skips
        // `improve`, so the winner can still sit outside the caps;
        // repair it the same way the shim repairs starts.
        let counts = [partition.count(Side::A), partition.count(Side::B)];
        let weights = SideWeights::new(sub, &partition).as_array();
        if !balance.is_feasible(counts, weights) {
            repair_into_window(sub, &mut partition, balance);
            let counts = [partition.count(Side::A), partition.count(Side::B)];
            let weights = SideWeights::new(sub, &partition).as_array();
            if !balance.is_feasible(counts, weights) {
                return Err(PartitionError::InfeasibleBudgets {
                    message: format!(
                        "no bisection fits the caps ({cap_a}, {cap_b}) at recursion path {path}"
                    ),
                });
            }
        }
    }

    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut weight = [0.0f64; 2];
    for v in sub.nodes() {
        weight[partition.side(v).index()] += sub.node_weight(v);
        if partition.side(v) == Side::A {
            left.push(back[v.index()]);
        } else {
            right.push(back[v.index()]);
        }
    }
    // Budgeted halves are anchored to their part ranges (side A was
    // capped by the left group's budgets); uniform uneven splits hand
    // the heavier side the larger part count, as before.
    if caps.is_none() && k_left != k_right && weight[1] > weight[0] {
        std::mem::swap(&mut left, &mut right);
    }
    drive(
        graph,
        engine,
        config,
        token,
        &left,
        first,
        k_left,
        2 * path,
        assignment,
        state,
    )?;
    drive(
        graph,
        engine,
        config,
        token,
        &right,
        first + k_left as u32,
        k_right,
        2 * path + 1,
        assignment,
        state,
    )
}

/// Deterministic worst-fit-decreasing packing of `nodes` into the part
/// range `first .. first + k`: nodes in (weight desc, id asc) order,
/// each into the part with the most remaining capacity (ties to the
/// lowest part). Capacities are the parts' budgets, or equal shares of
/// the group weight in uniform mode.
fn pack_parts(
    graph: &Hypergraph,
    nodes: &[NodeId],
    first: u32,
    k: usize,
    budgets: Option<&[f64]>,
    assignment: &mut [u32],
) {
    let mut remaining: Vec<f64> = match budgets {
        Some(b) => b.to_vec(),
        None => {
            let w: f64 = nodes.iter().map(|&v| graph.node_weight(v)).sum();
            vec![w / k as f64; k]
        }
    };
    let mut order: Vec<NodeId> = nodes.to_vec();
    sort_by_weight_desc(graph, &mut order);
    for v in order {
        let mut best = 0;
        for part in 1..k {
            if remaining[part] > remaining[best] {
                best = part;
            }
        }
        remaining[best] -= graph.node_weight(v);
        assignment[v.index()] = first + best as u32;
    }
}

/// Sorts nodes by (weight descending, id ascending) — the deterministic
/// order shared by the packing and repair passes.
fn sort_by_weight_desc(graph: &Hypergraph, nodes: &mut [NodeId]) {
    nodes.sort_by(|&a, &b| {
        graph
            .node_weight(b)
            .partial_cmp(&graph.node_weight(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.index().cmp(&b.index()))
    });
}

/// Moves `partition` inside the committed caps of `balance` if it is
/// not already there, deterministically and with as few moves as
/// possible: shed the heaviest fitting nodes from the (single) side over
/// its cap; if that cannot reach the window, fall back to a full
/// worst-fit-decreasing repack of all nodes into the two caps.
fn repair_into_window(graph: &Hypergraph, partition: &mut Bipartition, balance: BalanceConstraint) {
    let mut weights = SideWeights::new(graph, partition).as_array();
    let counts = [partition.count(Side::A), partition.count(Side::B)];
    if balance.is_feasible(counts, weights) {
        return;
    }
    let caps = [
        balance.side_capacity(Side::A),
        balance.side_capacity(Side::B),
    ];
    // The caps cover the total weight, so at most one side overflows.
    let over = if weights[0] > caps[0] + WEIGHT_EPS {
        Side::A
    } else {
        Side::B
    };
    let to = over.other().index();
    let mut movers: Vec<NodeId> = partition.nodes_on(over).collect();
    sort_by_weight_desc(graph, &mut movers);
    for v in movers {
        if weights[over.index()] <= caps[over.index()] + WEIGHT_EPS {
            break;
        }
        let w = graph.node_weight(v);
        // The destination only fills up, so one descending pass finds
        // every mover that can ever fit.
        if weights[to] + w <= caps[to] + WEIGHT_EPS {
            partition.flip(v);
            weights[over.index()] -= w;
            weights[to] += w;
        }
    }
    if weights[0] <= caps[0] + WEIGHT_EPS && weights[1] <= caps[1] + WEIGHT_EPS {
        return;
    }
    // Full repack: every node in (weight desc, id asc) order onto the
    // side with the most remaining capacity.
    let mut order: Vec<NodeId> = graph.nodes().collect();
    sort_by_weight_desc(graph, &mut order);
    let mut packed = [0.0f64; 2];
    for v in order {
        let side = if caps[0] - packed[0] >= caps[1] - packed[1] {
            Side::A
        } else {
            Side::B
        };
        if partition.side(v) != side {
            partition.flip(v);
        }
        packed[side.index()] += graph.node_weight(v);
    }
}

/// A [`Partitioner`] shim that deterministically repairs each initial
/// partition into the balance window before delegating. Harness-provided
/// random starts target 50/50; under asymmetric budget caps they can be
/// infeasible on entry, which engines are not required to fix (their
/// contract only *preserves* feasibility).
struct Repaired<'a, P: ?Sized> {
    inner: &'a P,
}

impl<P: Partitioner + ?Sized> Partitioner for Repaired<'_, P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        repair_into_window(graph, partition, balance);
        self.inner.improve(graph, partition, balance)
    }
}

/// Recursively bisects `graph` into `k` parts with `partitioner` in
/// uniform mode: `runs` seeded 2-way runs per bisection under the
/// `(r1, r2)` ratio balance. A thin wrapper over [`partition_kway`] with
/// [`KwayConfig`] defaults and no budgets.
///
/// # Errors
///
/// As [`partition_kway`].
pub fn recursive_bisection<P: Partitioner + ?Sized>(
    graph: &Hypergraph,
    k: usize,
    r1: f64,
    r2: f64,
    partitioner: &P,
    runs: usize,
    seed: u64,
) -> Result<KwayPartition, PartitionError> {
    let config = KwayConfig {
        k,
        budgets: None,
        runs,
        seed,
        r1,
        r2,
        policy: ParallelPolicy::Sequential,
    };
    partition_kway(graph, partitioner, &config).map(|report| report.partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{Prop, PropConfig};
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(256, 280, 950).with_seed(seed)).unwrap()
    }

    fn prop() -> Prop {
        Prop::new(PropConfig::calibrated())
    }

    #[test]
    fn four_way_blocks_are_balanced() {
        let g = circuit(1);
        let kp = recursive_bisection(&g, 4, 0.45, 0.55, &prop(), 2, 0).unwrap();
        assert_eq!(kp.num_blocks(), 4);
        assert_eq!(kp.len(), 256);
        let sizes = kp.block_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 256);
        for &s in &sizes {
            // Each block within a generous window of n/k.
            assert!((40..=90).contains(&s), "block sizes {sizes:?}");
        }
        assert!(kp.cut_cost(&g) > 0.0);
        assert_eq!(kp.cut_cost(&g), kp.cut_nets(&g) as f64);
        // λ−1 dominates the hyperedge cut.
        assert!(kp.connectivity_cost(&g) >= kp.cut_cost(&g));
    }

    #[test]
    fn non_power_of_two_k() {
        let g = circuit(2);
        let kp = recursive_bisection(&g, 5, 0.45, 0.55, &prop(), 1, 0).unwrap();
        assert_eq!(kp.num_blocks(), 5);
        let sizes = kp.block_sizes();
        for &s in &sizes {
            assert!((28..=80).contains(&s), "block sizes {sizes:?}");
        }
    }

    #[test]
    fn k_equals_one_is_identity() {
        let g = circuit(3);
        let kp = recursive_bisection(&g, 1, 0.45, 0.55, &prop(), 1, 0).unwrap();
        assert_eq!(kp.num_blocks(), 1);
        assert_eq!(kp.cut_nets(&g), 0);
        assert_eq!(kp.block_sizes(), vec![256]);
    }

    #[test]
    fn more_blocks_cut_more_nets() {
        let g = circuit(4);
        let k2 = recursive_bisection(&g, 2, 0.45, 0.55, &prop(), 2, 0).unwrap();
        let k8 = recursive_bisection(&g, 8, 0.45, 0.55, &prop(), 2, 0).unwrap();
        assert!(k8.cut_cost(&g) >= k2.cut_cost(&g));
    }

    #[test]
    fn invalid_arguments() {
        let g = circuit(5);
        assert!(recursive_bisection(&g, 0, 0.45, 0.55, &prop(), 1, 0).is_err());
        assert!(recursive_bisection(&g, 300, 0.45, 0.55, &prop(), 1, 0).is_err());
        assert!(recursive_bisection(&g, 2, 0.45, 0.55, &prop(), 0, 0).is_err());
        assert!(recursive_bisection(&g, 2, 0.7, 0.8, &prop(), 1, 0).is_err());
        let empty = prop_netlist::HypergraphBuilder::new(0).build().unwrap();
        assert_eq!(
            recursive_bisection(&empty, 2, 0.45, 0.55, &prop(), 1, 0),
            Err(PartitionError::EmptyGraph)
        );
    }

    #[test]
    fn weighted_blocks_balance_by_area() {
        let mut b = prop_netlist::HypergraphBuilder::new(8);
        for i in 0..7 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.set_node_weights(vec![4.0, 1.0, 1.0, 1.0, 4.0, 1.0, 1.0, 1.0])
            .unwrap();
        let g = b.build().unwrap();
        let kp = recursive_bisection(&g, 2, 0.4, 0.6, &prop(), 3, 0).unwrap();
        let w = kp.block_weights(&g);
        assert_eq!(w.iter().sum::<f64>(), 14.0);
        // Neither side may hoard both heavy nodes plus most light ones.
        assert!(w.iter().all(|&x| x <= 10.0), "{w:?}");
        // The stored per-part weights agree with the recount.
        assert_eq!(kp.part_weights(), w.as_slice());
    }

    #[test]
    fn deterministic_in_seed() {
        let g = circuit(6);
        let a = recursive_bisection(&g, 4, 0.45, 0.55, &prop(), 2, 9).unwrap();
        let b = recursive_bisection(&g, 4, 0.45, 0.55, &prop(), 2, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_k2_is_byte_identical_to_the_bipartition_harness() {
        let g = circuit(7);
        let engine = prop();
        let config = KwayConfig {
            runs: 3,
            seed: 11,
            ..KwayConfig::new(2)
        };
        let report = partition_kway(&g, &engine, &config).unwrap();
        let balance = BalanceConstraint::weighted(0.45, 0.55, &g).unwrap();
        let direct = engine
            .run_multi_parallel(&g, balance, 3, 11, ParallelPolicy::Sequential)
            .unwrap();
        let via_kway: Vec<u32> = direct
            .partition
            .sides()
            .iter()
            .map(|s| s.index() as u32)
            .collect();
        assert_eq!(report.partition.assignment(), via_kway.as_slice());
        assert_eq!(report.partition.cut_cost(&g), direct.cut_cost);
        assert_eq!(report.total_passes, direct.total_passes);
        assert_eq!(report.status, RunStatus::Completed);
    }

    #[test]
    fn budgets_are_respected_and_asymmetric() {
        let g = circuit(8); // 256 unit nodes
        let budgets = vec![150.0, 60.0, 60.0];
        let config = KwayConfig {
            budgets: Some(budgets.clone()),
            runs: 2,
            ..KwayConfig::new(3)
        };
        let report = partition_kway(&g, &prop(), &config).unwrap();
        let weights = report.partition.part_weights();
        assert_eq!(weights.iter().sum::<f64>(), 256.0);
        for (w, b) in weights.iter().zip(&budgets) {
            assert!(w <= b, "part weight {w} over budget {b}");
        }
        // The asymmetric first budget actually binds: part 0 must be
        // bigger than either small part could hold.
        assert!(weights[0] > 60.0, "{weights:?}");
    }

    #[test]
    fn budget_prechecks_are_typed_errors() {
        let g = circuit(9);
        let engine = prop();
        // Sum below the total weight.
        let config = KwayConfig {
            budgets: Some(vec![100.0, 100.0]),
            ..KwayConfig::new(2)
        };
        assert!(matches!(
            partition_kway(&g, &engine, &config),
            Err(PartitionError::InfeasibleBudgets { .. })
        ));
        // A budget below the heaviest node.
        let mut b = prop_netlist::HypergraphBuilder::new(6);
        b.add_net(1.0, [0, 1, 2, 3, 4, 5]).unwrap();
        b.set_node_weights(vec![5.0, 1.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        let heavy = b.build().unwrap();
        let config = KwayConfig {
            budgets: Some(vec![7.0, 4.0]),
            ..KwayConfig::new(2)
        };
        assert!(matches!(
            partition_kway(&heavy, &engine, &config),
            Err(PartitionError::InfeasibleBudgets { .. })
        ));
        // Arity and value validation are InvalidConfig, not infeasible.
        let config = KwayConfig {
            budgets: Some(vec![300.0]),
            ..KwayConfig::new(2)
        };
        assert!(matches!(
            partition_kway(&g, &engine, &config),
            Err(PartitionError::InvalidConfig { .. })
        ));
        let config = KwayConfig {
            budgets: Some(vec![300.0, -1.0]),
            ..KwayConfig::new(2)
        };
        assert!(matches!(
            partition_kway(&g, &engine, &config),
            Err(PartitionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn pre_tripped_token_still_packs_every_node() {
        let g = circuit(10);
        let token = CancelToken::new();
        token.cancel();
        let config = KwayConfig {
            budgets: Some(vec![70.0; 4]),
            runs: 2,
            ..KwayConfig::new(4)
        };
        let report = partition_kway_cancellable(&g, &prop(), &config, &token).unwrap();
        assert_eq!(report.status, RunStatus::Cancelled);
        assert_eq!(report.partition.len(), 256);
        assert!(report.partition.assignment().iter().all(|&p| p < 4));
        // The packed partial result still honours the budgets.
        for w in report.partition.part_weights() {
            assert!(*w <= 70.0 + 1e-9, "{:?}", report.partition.part_weights());
        }
    }

    #[test]
    fn path_seeds_differ_from_sibling_to_sibling() {
        // The salted path streams must separate siblings: equal seeds
        // with different paths give different harness seeds.
        let s_left = salted_stream_seed(5, KWAY_SEED_SALT, 2);
        let s_right = salted_stream_seed(5, KWAY_SEED_SALT, 3);
        assert_ne!(s_left, s_right);
        assert_ne!(s_left, 5);
    }
}
