//! Recursive k-way partitioning by repeated bisection.
//!
//! The paper's §1: "Each subset is further partitioned into two smaller
//! subsets with a minimum cut, and so forth until we have recursively
//! partitioned the circuit into either a prespecified number k of
//! subsets…". This module drives any 2-way [`Partitioner`] through that
//! recursion, splitting block targets as evenly as possible and applying
//! the `(r1, r2)` balance at every level.

use crate::balance::BalanceConstraint;
use crate::error::PartitionError;
use crate::partition::Side;
use crate::partitioner::Partitioner;
use prop_netlist::{Hypergraph, NetId, NodeId};

/// An assignment of every node to one of `k` blocks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KwayPartition {
    assignment: Vec<u32>,
    blocks: usize,
}

impl KwayPartition {
    /// The block of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn block(&self, node: NodeId) -> usize {
        self.assignment[node.index()] as usize
    }

    /// Number of blocks `k`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` for the empty assignment.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Node counts per block.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.blocks];
        for &b in &self.assignment {
            sizes[b as usize] += 1;
        }
        sizes
    }

    /// Node weights per block.
    pub fn block_weights(&self, graph: &Hypergraph) -> Vec<f64> {
        let mut weights = vec![0.0; self.blocks];
        for v in graph.nodes() {
            weights[self.block(v)] += graph.node_weight(v);
        }
        weights
    }

    /// Whether `net` spans two or more blocks.
    pub fn is_cut(&self, graph: &Hypergraph, net: NetId) -> bool {
        let mut blocks = graph.pins_of(net).iter().map(|&v| self.block(v));
        match blocks.next() {
            None => false,
            Some(first) => blocks.any(|b| b != first),
        }
    }

    /// The k-way cutset cost: total weight of nets spanning ≥ 2 blocks.
    pub fn cut_cost(&self, graph: &Hypergraph) -> f64 {
        graph
            .nets()
            .filter(|&net| self.is_cut(graph, net))
            .map(|net| graph.net_weight(net))
            .sum()
    }

    /// Number of cut nets.
    pub fn cut_nets(&self, graph: &Hypergraph) -> usize {
        graph.nets().filter(|&net| self.is_cut(graph, net)).count()
    }
}

/// Recursively bisects `graph` into `k` blocks with `partitioner`,
/// running `runs` seeded 2-way runs per bisection under an `(r1, r2)`
/// balance (adjusted for uneven block splits when `k` is not a power of
/// two). Blocks of at most 3 nodes are not split further (§1).
///
/// # Errors
///
/// * [`PartitionError::EmptyGraph`] for a node-less graph.
/// * [`PartitionError::InvalidConfig`] when `k == 0`, `k` exceeds the
///   node count, or `runs == 0`.
/// * [`PartitionError::InvalidBalance`] for unsatisfiable ratios.
pub fn recursive_bisection<P: Partitioner + ?Sized>(
    graph: &Hypergraph,
    k: usize,
    r1: f64,
    r2: f64,
    partitioner: &P,
    runs: usize,
    seed: u64,
) -> Result<KwayPartition, PartitionError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if k == 0 || k > n {
        return Err(PartitionError::InvalidConfig {
            message: format!("cannot split {n} nodes into {k} blocks"),
        });
    }
    if runs == 0 {
        return Err(PartitionError::InvalidConfig {
            message: "runs must be at least 1".into(),
        });
    }
    // Validate the ratios once up front.
    let _ = BalanceConstraint::new(r1, r2, n)?;

    let mut assignment = vec![0u32; n];
    let mut next_block = 0u32;
    let all: Vec<NodeId> = graph.nodes().collect();
    split(
        graph,
        all,
        k,
        r1,
        r2,
        partitioner,
        runs,
        seed,
        &mut assignment,
        &mut next_block,
    )?;
    Ok(KwayPartition {
        assignment,
        blocks: next_block as usize,
    })
}

#[allow(clippy::too_many_arguments)]
fn split<P: Partitioner + ?Sized>(
    graph: &Hypergraph,
    nodes: Vec<NodeId>,
    blocks_wanted: usize,
    r1: f64,
    r2: f64,
    partitioner: &P,
    runs: usize,
    seed: u64,
    assignment: &mut [u32],
    next_block: &mut u32,
) -> Result<(), PartitionError> {
    if blocks_wanted <= 1 || nodes.len() <= 3 {
        let block = *next_block;
        *next_block += 1;
        for v in nodes {
            assignment[v.index()] = block;
        }
        return Ok(());
    }
    let (sub, back) = graph.induced_subgraph(&nodes);
    // Uneven k: one branch receives ceil(k/2) of the blocks. The balance
    // constraint is symmetric, so the window is widened to admit the
    // ideal larger-side fraction, and after the split the heavier side is
    // handed the larger block budget.
    let blocks_a = blocks_wanted.div_ceil(2);
    let blocks_b = blocks_wanted - blocks_a;
    let (r1_eff, r2_eff) = if blocks_a == blocks_b {
        (r1, r2)
    } else {
        let target = blocks_a as f64 / blocks_wanted as f64;
        let hi = r2.max(target + (r2 - r1) / 4.0).min(0.99);
        ((1.0 - hi).max(0.01), hi)
    };
    let balance = BalanceConstraint::weighted(r1_eff, r2_eff, &sub)?;
    let result = partitioner.run_multi(&sub, balance, runs, seed ^ nodes.len() as u64)?;

    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut weight = [0.0f64; 2];
    for v in sub.nodes() {
        weight[result.partition.side(v).index()] += sub.node_weight(v);
        if result.partition.side(v) == Side::A {
            left.push(back[v.index()]);
        } else {
            right.push(back[v.index()]);
        }
    }
    let (big, small) = if weight[0] >= weight[1] {
        (left, right)
    } else {
        (right, left)
    };
    split(
        graph, big, blocks_a, r1, r2, partitioner, runs, seed, assignment, next_block,
    )?;
    split(
        graph, small, blocks_b, r1, r2, partitioner, runs, seed, assignment, next_block,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{Prop, PropConfig};
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(256, 280, 950).with_seed(seed)).unwrap()
    }

    fn prop() -> Prop {
        Prop::new(PropConfig::calibrated())
    }

    #[test]
    fn four_way_blocks_are_balanced() {
        let g = circuit(1);
        let kp = recursive_bisection(&g, 4, 0.45, 0.55, &prop(), 2, 0).unwrap();
        assert_eq!(kp.num_blocks(), 4);
        assert_eq!(kp.len(), 256);
        let sizes = kp.block_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 256);
        for &s in &sizes {
            // Each block within a generous window of n/k.
            assert!((40..=90).contains(&s), "block sizes {sizes:?}");
        }
        assert!(kp.cut_cost(&g) > 0.0);
        assert_eq!(kp.cut_cost(&g), kp.cut_nets(&g) as f64);
    }

    #[test]
    fn non_power_of_two_k() {
        let g = circuit(2);
        let kp = recursive_bisection(&g, 5, 0.45, 0.55, &prop(), 1, 0).unwrap();
        assert_eq!(kp.num_blocks(), 5);
        let sizes = kp.block_sizes();
        for &s in &sizes {
            assert!((28..=80).contains(&s), "block sizes {sizes:?}");
        }
    }

    #[test]
    fn k_equals_one_is_identity() {
        let g = circuit(3);
        let kp = recursive_bisection(&g, 1, 0.45, 0.55, &prop(), 1, 0).unwrap();
        assert_eq!(kp.num_blocks(), 1);
        assert_eq!(kp.cut_nets(&g), 0);
        assert_eq!(kp.block_sizes(), vec![256]);
    }

    #[test]
    fn more_blocks_cut_more_nets() {
        let g = circuit(4);
        let k2 = recursive_bisection(&g, 2, 0.45, 0.55, &prop(), 2, 0).unwrap();
        let k8 = recursive_bisection(&g, 8, 0.45, 0.55, &prop(), 2, 0).unwrap();
        assert!(k8.cut_cost(&g) >= k2.cut_cost(&g));
    }

    #[test]
    fn invalid_arguments() {
        let g = circuit(5);
        assert!(recursive_bisection(&g, 0, 0.45, 0.55, &prop(), 1, 0).is_err());
        assert!(recursive_bisection(&g, 300, 0.45, 0.55, &prop(), 1, 0).is_err());
        assert!(recursive_bisection(&g, 2, 0.45, 0.55, &prop(), 0, 0).is_err());
        assert!(recursive_bisection(&g, 2, 0.7, 0.8, &prop(), 1, 0).is_err());
        let empty = prop_netlist::HypergraphBuilder::new(0).build().unwrap();
        assert_eq!(
            recursive_bisection(&empty, 2, 0.45, 0.55, &prop(), 1, 0),
            Err(PartitionError::EmptyGraph)
        );
    }

    #[test]
    fn weighted_blocks_balance_by_area() {
        let mut b = prop_netlist::HypergraphBuilder::new(8);
        for i in 0..7 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.set_node_weights(vec![4.0, 1.0, 1.0, 1.0, 4.0, 1.0, 1.0, 1.0])
            .unwrap();
        let g = b.build().unwrap();
        let kp = recursive_bisection(&g, 2, 0.4, 0.6, &prop(), 3, 0).unwrap();
        let w = kp.block_weights(&g);
        assert_eq!(w.iter().sum::<f64>(), 14.0);
        // Neither side may hoard both heavy nodes plus most light ones.
        assert!(w.iter().all(|&x| x <= 10.0), "{w:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = circuit(6);
        let a = recursive_bisection(&g, 4, 0.45, 0.55, &prop(), 2, 9).unwrap();
        let b = recursive_bisection(&g, 4, 0.45, 0.55, &prop(), 2, 9).unwrap();
        assert_eq!(a, b);
    }
}
