//! The (r1, r2) balance criterion of the paper.

use crate::error::PartitionError;
use crate::partition::Side;

/// An `(r1, r2)`-balance constraint for a 2-way partition of `n` nodes:
/// each side must hold between `r1·n` and `r2·n` nodes.
///
/// The constraint is materialised as integral bounds `min_part..=max_part`
/// with `min_part = n − max_part`, where `max_part` is `floor(r2 · n)`
/// raised to at least `ceil(n / 2)` so near-equal bisections of odd-sized
/// circuits remain feasible (the paper's "equal (or almost equal) sized
/// subsets").
///
/// During a pass, partitioners may let a side exceed `max_part` by one
/// node (the *pass slack*, see [`pass_max`]) when the constraint demands
/// exact bisection; only states satisfying the strict bound may be
/// committed.
///
/// ```
/// use prop_core::BalanceConstraint;
///
/// # fn main() -> Result<(), prop_core::PartitionError> {
/// let b = BalanceConstraint::new(0.45, 0.55, 100)?;
/// assert_eq!(b.max_part(), 55);
/// assert_eq!(b.min_part(), 45);
/// assert!(b.is_feasible_counts(50, 50));
/// assert!(!b.is_feasible_counts(60, 40));
/// # Ok(())
/// # }
/// ```
///
/// [`pass_max`]: BalanceConstraint::pass_max
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BalanceConstraint {
    num_nodes: usize,
    min_part: usize,
    max_part: usize,
    /// The `(r1, r2)` ratios the constraint was built from, kept so
    /// multilevel schemes can re-derive equivalent constraints for
    /// coarsened graphs.
    ratios: (f64, f64),
    /// Weight-based bounds for graphs with non-unit node sizes
    /// ("the balance criterion is easily changed to reflect size
    /// constraints", §1). `None` = pure count constraint.
    weighted: Option<WeightedBounds>,
}

/// Weight bounds of a size-constrained balance criterion.
#[derive(Clone, Copy, PartialEq, Debug)]
struct WeightedBounds {
    /// Largest committed weight of each side, indexed like [`Side`]:
    /// `[cap_A, cap_B]`. Ratio-derived constraints keep the two equal; a
    /// budgeted constraint may cap the sides asymmetrically.
    max_weight: [f64; 2],
    /// Pass slack: a side may transiently exceed its cap by less than
    /// the largest node size, mirroring the one-node slack of the
    /// unit-size case.
    slack: f64,
    /// Whether the caps are absolute per-side budgets. Budgeted caps
    /// survive [`BalanceConstraint::for_graph`] unchanged (coarsening
    /// preserves total weight), where ratio-derived bounds are recomputed
    /// from the ratios.
    budgeted: bool,
}

/// Comparison tolerance for accumulated side weights.
const WEIGHT_EPS: f64 = 1e-9;

impl BalanceConstraint {
    /// Builds the constraint for `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidBalance`] unless
    /// `0 < r1 ≤ 0.5 ≤ r2 < 1` (with `r1 ≤ r2`), the satisfiable regime
    /// for 2-way partitions.
    pub fn new(r1: f64, r2: f64, num_nodes: usize) -> Result<Self, PartitionError> {
        if !(r1.is_finite() && r2.is_finite()) || r1 <= 0.0 || r2 >= 1.0 || r1 > 0.5 || r2 < 0.5 {
            return Err(PartitionError::InvalidBalance { r1, r2 });
        }
        let n = num_nodes;
        let floor_r2 = (r2 * n as f64).floor() as usize;
        let max_part = floor_r2.max(n.div_ceil(2)).min(n);
        Ok(BalanceConstraint {
            num_nodes: n,
            min_part: n - max_part,
            max_part,
            ratios: (r1, r2),
            weighted: None,
        })
    }

    /// The `(r1, r2)` ratios this constraint was built from.
    #[inline]
    pub fn ratios(&self) -> (f64, f64) {
        self.ratios
    }

    /// Builds a *size-constrained* balance for `graph`: each side's total
    /// node weight must stay within `[r1·W, r2·W]` (W = total weight),
    /// relaxed just enough that a bisection exists even with one node
    /// heavier than the slack (`max_weight ≥ (W + w_max)/2`).
    ///
    /// For a graph with unit node sizes this degrades exactly to
    /// [`BalanceConstraint::new`].
    ///
    /// # Errors
    ///
    /// Same ratio validation as [`BalanceConstraint::new`].
    pub fn weighted(
        r1: f64,
        r2: f64,
        graph: &prop_netlist::Hypergraph,
    ) -> Result<Self, PartitionError> {
        if graph.has_unit_node_weights() {
            return Self::new(r1, r2, graph.num_nodes());
        }
        // Validate ratios through the count constructor.
        let base = Self::new(r1, r2, graph.num_nodes())?;
        let total = graph.total_node_weight();
        let w_max = graph.max_node_weight();
        let max_weight = (r2 * total).max((total + w_max) / 2.0).min(total);
        Ok(BalanceConstraint {
            weighted: Some(WeightedBounds {
                max_weight: [max_weight; 2],
                slack: w_max,
                budgeted: false,
            }),
            ..base
        })
    }

    /// Builds a *budgeted* balance for `graph`: side A's committed weight
    /// must stay within `cap_a` and side B's within `cap_b`, as absolute
    /// area budgets (multi-FPGA style) rather than ratios of the total.
    /// The caps may be asymmetric, and the constraint is weight-based
    /// even for unit node sizes (a unit-weight node simply weighs 1).
    ///
    /// Unlike the ratio constructors, budgeted caps are preserved as-is
    /// by [`for_graph`]: coarsening a graph does not change its total
    /// weight, so the same absolute budgets remain meaningful at every
    /// level of a multilevel scheme.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidConfig`] for non-finite or
    /// non-positive caps, and [`PartitionError::InfeasibleBudgets`] when
    /// the caps sum below the graph's total node weight (no assignment
    /// can fit).
    ///
    /// [`for_graph`]: BalanceConstraint::for_graph
    pub fn budgeted(
        cap_a: f64,
        cap_b: f64,
        graph: &prop_netlist::Hypergraph,
    ) -> Result<Self, PartitionError> {
        if !(cap_a.is_finite() && cap_b.is_finite()) || cap_a <= 0.0 || cap_b <= 0.0 {
            return Err(PartitionError::InvalidConfig {
                message: format!("side budgets ({cap_a}, {cap_b}) must be finite and positive"),
            });
        }
        let total = graph.total_node_weight();
        if cap_a + cap_b < total - WEIGHT_EPS {
            return Err(PartitionError::InfeasibleBudgets {
                message: format!(
                    "side budgets {cap_a} + {cap_b} cannot hold the total node weight {total}"
                ),
            });
        }
        let n = graph.num_nodes();
        // Informational ratios (the nearest ratio description of the
        // caps); the weighted path below is what constrains moves.
        let r2 = if total > 0.0 {
            (cap_a.max(cap_b) / total).clamp(0.5, 1.0)
        } else {
            0.5
        };
        Ok(BalanceConstraint {
            num_nodes: n,
            min_part: 0,
            max_part: n,
            ratios: ((1.0 - r2).max(0.0), r2),
            weighted: Some(WeightedBounds {
                max_weight: [cap_a, cap_b],
                slack: graph.max_node_weight(),
                budgeted: true,
            }),
        })
    }

    /// Re-derives this constraint for another graph of the same circuit
    /// (a coarsened or refined level of a multilevel scheme, or an
    /// induced subcircuit of the same total weight).
    ///
    /// Ratio-based constraints — weighted or count-based — are rebuilt
    /// through [`weighted`] from their original `(r1, r2)`, exactly as
    /// the V-cycle has always done. Budgeted constraints keep their
    /// absolute per-side caps (the total weight is invariant) and only
    /// refresh the pass slack to the new graph's heaviest node.
    ///
    /// # Errors
    ///
    /// Same validation as [`weighted`].
    ///
    /// [`weighted`]: BalanceConstraint::weighted
    pub fn for_graph(
        &self,
        graph: &prop_netlist::Hypergraph,
    ) -> Result<Self, PartitionError> {
        match self.weighted {
            Some(w) if w.budgeted => Ok(BalanceConstraint {
                num_nodes: graph.num_nodes(),
                min_part: 0,
                max_part: graph.num_nodes(),
                ratios: self.ratios,
                weighted: Some(WeightedBounds {
                    max_weight: w.max_weight,
                    slack: graph.max_node_weight(),
                    budgeted: true,
                }),
            }),
            _ => {
                let (r1, r2) = self.ratios;
                Self::weighted(r1, r2, graph)
            }
        }
    }

    /// Whether this constraint bounds side *weights* rather than counts.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted.is_some()
    }

    /// Whether this constraint carries absolute per-side budgets (built
    /// by [`budgeted`]) rather than ratio-derived bounds.
    ///
    /// [`budgeted`]: BalanceConstraint::budgeted
    #[inline]
    pub fn is_budgeted(&self) -> bool {
        self.weighted.is_some_and(|w| w.budgeted)
    }

    /// Largest committed weight of either side (the looser cap when the
    /// sides are budgeted asymmetrically).
    pub fn max_part_weight(&self) -> f64 {
        match self.weighted {
            Some(w) => w.max_weight[0].max(w.max_weight[1]),
            None => self.max_part as f64,
        }
    }

    /// The committed weight cap of one side: its budget under a weighted
    /// constraint, its node-count bound otherwise (each node weighs 1 in
    /// the count regime, so the bound doubles as a weight cap).
    #[inline]
    pub fn side_capacity(&self, side: Side) -> f64 {
        match self.weighted {
            Some(w) => w.max_weight[side.index()],
            None => self.max_part as f64,
        }
    }

    /// Whether a committed state with the given side counts *and* weights
    /// satisfies the strict constraint.
    #[inline]
    pub fn is_feasible(&self, counts: [usize; 2], weights: [f64; 2]) -> bool {
        match self.weighted {
            Some(w) => {
                weights[0] <= w.max_weight[0] + WEIGHT_EPS
                    && weights[1] <= w.max_weight[1] + WEIGHT_EPS
            }
            None => self.is_feasible_counts(counts[0], counts[1]),
        }
    }

    /// Whether a node of weight `moving_weight` may move from `from`
    /// given the current side counts and weights, under the pass-relaxed
    /// bound.
    #[inline]
    pub fn allows_node_move(
        &self,
        from: Side,
        counts: [usize; 2],
        weights: [f64; 2],
        moving_weight: f64,
    ) -> bool {
        match self.weighted {
            Some(w) => {
                let to = from.other().index();
                weights[to] + moving_weight <= w.max_weight[to] + w.slack + WEIGHT_EPS
            }
            None => self.allows_move(from, counts[0], counts[1]),
        }
    }

    /// The exact-bisection constraint (`r1 = r2 = 0.5`).
    ///
    /// # Panics
    ///
    /// Never panics; `(0.5, 0.5)` is always valid.
    pub fn bisection(num_nodes: usize) -> Self {
        Self::new(0.5, 0.5, num_nodes).expect("0.5/0.5 is always a valid balance")
    }

    /// Number of nodes the constraint was built for.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Smallest committed size of either side.
    #[inline]
    pub fn min_part(&self) -> usize {
        self.min_part
    }

    /// Largest committed size of either side.
    #[inline]
    pub fn max_part(&self) -> usize {
        self.max_part
    }

    /// Largest size a side may reach *during* a pass: `max_part`, plus one
    /// node of slack when the constraint demands exact bisection (otherwise
    /// no single move is ever legal from a committed state).
    #[inline]
    pub fn pass_max(&self) -> usize {
        if self.min_part == self.max_part {
            (self.max_part + 1).min(self.num_nodes)
        } else {
            self.max_part
        }
    }

    /// Whether a committed state with the given side sizes satisfies the
    /// strict constraint.
    #[inline]
    pub fn is_feasible_counts(&self, count_a: usize, count_b: usize) -> bool {
        debug_assert_eq!(count_a + count_b, self.num_nodes);
        count_a.max(count_b) <= self.max_part
    }

    /// Whether a single node may move *to* the destination side whose
    /// current size is `dest_count`, under the pass-relaxed bound.
    #[inline]
    pub fn allows_move_to(&self, dest_count: usize) -> bool {
        dest_count < self.pass_max()
    }

    /// Whether a single node may move from `from` given current side sizes.
    #[inline]
    pub fn allows_move(&self, from: Side, count_a: usize, count_b: usize) -> bool {
        match from {
            Side::A => self.allows_move_to(count_b),
            Side::B => self.allows_move_to(count_a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_even() {
        let b = BalanceConstraint::bisection(10);
        assert_eq!(b.min_part(), 5);
        assert_eq!(b.max_part(), 5);
        assert_eq!(b.pass_max(), 6);
        assert!(b.is_feasible_counts(5, 5));
        assert!(!b.is_feasible_counts(6, 4));
        assert!(b.allows_move_to(5));
        assert!(!b.allows_move_to(6));
    }

    #[test]
    fn bisection_odd() {
        let b = BalanceConstraint::bisection(11);
        assert_eq!(b.max_part(), 6);
        assert_eq!(b.min_part(), 5);
        // min != max: no extra slack needed.
        assert_eq!(b.pass_max(), 6);
        assert!(b.is_feasible_counts(6, 5));
        assert!(!b.is_feasible_counts(7, 4));
    }

    #[test]
    fn forty_five_fifty_five() {
        let b = BalanceConstraint::new(0.45, 0.55, 801).unwrap();
        assert_eq!(b.max_part(), 440); // floor(0.55 * 801)
        assert_eq!(b.min_part(), 361);
        assert_eq!(b.pass_max(), 440);
        assert!(b.is_feasible_counts(440, 361));
        assert!(!b.is_feasible_counts(441, 360));
    }

    #[test]
    fn invalid_ratios_rejected() {
        assert!(BalanceConstraint::new(0.0, 0.5, 10).is_err());
        assert!(BalanceConstraint::new(0.5, 1.0, 10).is_err());
        assert!(BalanceConstraint::new(0.6, 0.7, 10).is_err());
        assert!(BalanceConstraint::new(0.3, 0.4, 10).is_err());
        assert!(BalanceConstraint::new(f64::NAN, 0.5, 10).is_err());
    }

    #[test]
    fn tiny_graphs() {
        let b = BalanceConstraint::bisection(2);
        assert_eq!(b.max_part(), 1);
        assert_eq!(b.pass_max(), 2);
        let b = BalanceConstraint::bisection(1);
        assert_eq!(b.max_part(), 1);
        assert_eq!(b.min_part(), 0);
    }

    #[test]
    fn weighted_falls_back_to_counts_for_unit_sizes() {
        let mut b = prop_netlist::HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        let w = BalanceConstraint::weighted(0.45, 0.55, &g).unwrap();
        assert!(!w.is_weighted());
        assert_eq!(w, BalanceConstraint::new(0.45, 0.55, 4).unwrap());
    }

    #[test]
    fn weighted_bounds_follow_node_sizes() {
        let mut b = prop_netlist::HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1, 2, 3]).unwrap();
        b.set_node_weights(vec![4.0, 2.0, 2.0, 2.0]).unwrap();
        let g = b.build().unwrap();
        // Total 10, w_max 4: r2 = 0.5 gives max_weight = max(5, 7) = 7.
        let w = BalanceConstraint::weighted(0.5, 0.5, &g).unwrap();
        assert!(w.is_weighted());
        assert_eq!(w.max_part_weight(), 7.0);
        assert!(w.is_feasible([1, 3], [4.0, 6.0]));
        assert!(!w.is_feasible([1, 3], [8.0, 2.0]));
        // Moves: B holds 6.0; node of weight 4 may enter (6 + 4 <= 7 + 4).
        assert!(w.allows_node_move(Side::A, [2, 2], [4.0, 6.0], 4.0));
        // But not if B already holds 8.
        assert!(!w.allows_node_move(Side::A, [1, 3], [2.0, 8.0], 4.0));
    }

    #[test]
    fn weighted_with_generous_window() {
        let mut b = prop_netlist::HypergraphBuilder::new(3);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.set_node_weights(vec![1.0, 1.0, 8.0]).unwrap();
        let g = b.build().unwrap();
        // r2 = 0.9: max_weight = max(9, 9) = 9 of total 10.
        let w = BalanceConstraint::weighted(0.1, 0.9, &g).unwrap();
        assert_eq!(w.max_part_weight(), 9.0);
        assert!(w.is_feasible([2, 1], [2.0, 8.0]));
        assert!(!w.is_feasible([0, 3], [0.0, 10.0]));
    }

    #[test]
    fn count_constraint_reports_total_as_weight_bound() {
        let b = BalanceConstraint::bisection(10);
        assert!(!b.is_weighted());
        assert_eq!(b.max_part_weight(), 5.0);
        assert!(b.is_feasible([5, 5], [5.0, 5.0]));
        // Count path ignores weights entirely.
        assert!(b.is_feasible([5, 5], [9.0, 1.0]));
        assert!(b.allows_node_move(Side::A, [5, 5], [5.0, 5.0], 1.0));
        assert!(!b.allows_node_move(Side::B, [6, 4], [6.0, 4.0], 1.0));
    }

    #[test]
    fn budgeted_caps_are_per_side() {
        let mut b = prop_netlist::HypergraphBuilder::new(5);
        b.add_net(1.0, [0, 1, 2, 3, 4]).unwrap();
        b.set_node_weights(vec![2.0, 2.0, 2.0, 2.0, 2.0]).unwrap();
        let g = b.build().unwrap();
        // Total 10 into caps (7, 4): asymmetric, feasible.
        let c = BalanceConstraint::budgeted(7.0, 4.0, &g).unwrap();
        assert!(c.is_weighted());
        assert!(c.is_budgeted());
        assert_eq!(c.side_capacity(Side::A), 7.0);
        assert_eq!(c.side_capacity(Side::B), 4.0);
        assert_eq!(c.max_part_weight(), 7.0);
        assert!(c.is_feasible([3, 2], [6.0, 4.0]));
        // Feasible under the old symmetric rule, not under per-side caps.
        assert!(!c.is_feasible([2, 3], [4.0, 6.0]));
        // Moves respect the destination's own cap (+ one-node slack 2).
        assert!(c.allows_node_move(Side::A, [3, 2], [6.0, 4.0], 2.0));
        assert!(!c.allows_node_move(Side::A, [2, 3], [4.0, 6.0], 2.0));
    }

    #[test]
    fn budgeted_applies_to_unit_weight_graphs() {
        let mut b = prop_netlist::HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1, 2, 3]).unwrap();
        let g = b.build().unwrap();
        let c = BalanceConstraint::budgeted(3.0, 1.0, &g).unwrap();
        // Unlike `weighted`, unit node sizes do not fall back to counts:
        // the caps must bind.
        assert!(c.is_weighted());
        assert!(c.is_feasible([3, 1], [3.0, 1.0]));
        assert!(!c.is_feasible([1, 3], [1.0, 3.0]));
    }

    #[test]
    fn budgeted_rejects_bad_caps() {
        let mut b = prop_netlist::HypergraphBuilder::new(2);
        b.add_net(1.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            BalanceConstraint::budgeted(0.0, 2.0, &g),
            Err(PartitionError::InvalidConfig { .. })
        ));
        assert!(matches!(
            BalanceConstraint::budgeted(f64::NAN, 2.0, &g),
            Err(PartitionError::InvalidConfig { .. })
        ));
        // Caps that cannot hold the total weight are typed infeasible.
        assert!(matches!(
            BalanceConstraint::budgeted(0.6, 0.6, &g),
            Err(PartitionError::InfeasibleBudgets { .. })
        ));
    }

    #[test]
    fn for_graph_rederives_ratios_and_preserves_budgets() {
        let mut b = prop_netlist::HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1, 2, 3]).unwrap();
        b.set_node_weights(vec![4.0, 2.0, 2.0, 2.0]).unwrap();
        let g = b.build().unwrap();
        // Ratio constraint: for_graph must equal a fresh `weighted` on
        // the target graph — the historical V-cycle re-derivation.
        let r = BalanceConstraint::new(0.45, 0.55, 100).unwrap();
        assert_eq!(
            r.for_graph(&g).unwrap(),
            BalanceConstraint::weighted(0.45, 0.55, &g).unwrap()
        );
        // Budgeted constraint: caps survive, slack follows the graph.
        let c = BalanceConstraint::budgeted(7.0, 4.0, &g).unwrap();
        let mut coarse = prop_netlist::HypergraphBuilder::new(2);
        coarse.add_net(1.0, [0, 1]).unwrap();
        coarse.set_node_weights(vec![6.0, 4.0]).unwrap();
        let cg = coarse.build().unwrap();
        let cc = c.for_graph(&cg).unwrap();
        assert!(cc.is_budgeted());
        assert_eq!(cc.side_capacity(Side::A), 7.0);
        assert_eq!(cc.side_capacity(Side::B), 4.0);
        assert_eq!(cc.num_nodes(), 2);
        // Slack refreshed to the coarse graph's heaviest node (6): a
        // 6-weight supernode may transiently push B to 10 = 4 + 6, but
        // not to 12.
        assert!(cc.allows_node_move(Side::A, [1, 1], [6.0, 4.0], 6.0));
        assert!(!cc.allows_node_move(Side::A, [1, 1], [4.0, 6.0], 6.0));
        assert!(cc.allows_node_move(Side::B, [1, 1], [4.0, 6.0], 6.0));
    }

    #[test]
    fn allows_move_by_side() {
        let b = BalanceConstraint::new(0.45, 0.55, 100).unwrap();
        // A has 55, B has 45: nothing may move into A.
        assert!(b.allows_move(Side::A, 55, 45)); // A -> B fine
        assert!(!b.allows_move(Side::B, 55, 45)); // B -> A blocked
    }
}
