//! The PROP probabilistic-gain min-cut bipartitioner (Dutt & Deng,
//! DAC 1996) and the shared iterative-improvement framework.
//!
//! # Overview
//!
//! Iterative-improvement 2-way min-cut partitioning starts from a random
//! balanced bipartition of a circuit hypergraph and repeatedly runs
//! *passes*: every node is tentatively moved once (best-gain first, balance
//! permitting), the running sum of *immediate* cut gains is tracked, and
//! the best prefix of moves is committed. FM computes node gains from
//! purely local netlist information; PROP instead attaches to every node a
//! probability `p(u)` of actually being moved in the current pass and
//! computes *probabilistic gains* from per-net products of these
//! probabilities (Eqns. 3–4 of the paper), capturing global and future
//! implications of a move.
//!
//! This crate provides:
//!
//! * [`Bipartition`], [`BalanceConstraint`], [`CutState`] — the shared
//!   partition/cut bookkeeping, with exact incremental maintenance.
//! * [`fm_gain`] / [`fm_gains`] — the deterministic Eqn.-1 gain, used by
//!   FM-style baselines and by PROP's gain-seeded initialisation.
//! * [`Prop`] and [`PropConfig`] — the paper's partitioner.
//! * [`probabilistic_gains`] — a pure implementation of Eqns. 3–4 for
//!   arbitrary probability assignments, used for differential testing and
//!   for reproducing the paper's Figure-1 worked example ([`example`]).
//! * [`Partitioner`] — the trait shared by every iterative improver in
//!   this suite, with seeded single- and multi-run harnesses.
//!
//! # Quickstart
//!
//! ```
//! use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
//! use prop_netlist::generate::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::new(120, 130, 420).with_seed(3))?;
//! let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
//! let prop = Prop::new(PropConfig::default());
//! let best = prop.run_multi(&graph, balance, 4, 99)?;
//! assert!(balance.is_feasible_counts(best.partition.count(prop_core::Side::A),
//!                                    best.partition.count(prop_core::Side::B)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod balance;
pub mod cancel;
mod cut;
mod error;
pub mod example;
mod gain;
pub mod kway;
mod parallel;
mod partition;
mod partitioner;
pub mod prof;
pub mod prop;
pub mod seed;

pub use balance::BalanceConstraint;
pub use cancel::CancelToken;
pub use cut::{cut_cost, CutState};
pub use error::PartitionError;
pub use gain::{fm_gain, fm_gains, probabilistic_gains};
pub use kway::{
    partition_kway, partition_kway_cancellable, recursive_bisection, KwayConfig, KwayPartition,
    KwayReport,
};
pub use parallel::{
    map_chunks, map_chunks_with, MultiRunReport, ParallelPolicy, RunBudget, RunStatus,
};
pub use partition::{Bipartition, Side, SideWeights};
pub use partitioner::{GlobalPartitioner, ImproveStats, Partitioner, RunResult};
pub use prop::{GainInit, NetHot, PassTrace, Prop, PropConfig, SelectionBackend};
