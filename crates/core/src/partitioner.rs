//! The common interface of iterative-improvement partitioners.

use crate::balance::BalanceConstraint;
use crate::cancel::CancelToken;
use crate::error::PartitionError;
use crate::parallel::{self, MultiRunReport, ParallelPolicy};
use crate::partition::Bipartition;

/// Statistics of one improvement run (a sequence of passes from one
/// initial partition down to a local minimum).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ImproveStats {
    /// Number of passes executed (including the final non-improving one).
    pub passes: usize,
    /// Final cut cost.
    pub cut_cost: f64,
}

/// Result of one or more partitioning runs: the best partition found.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// The best partition found.
    pub partition: Bipartition,
    /// Its cut cost.
    pub cut_cost: f64,
    /// Total passes across all runs.
    pub total_passes: usize,
    /// Final cut cost of each individual run, in run order.
    pub run_cuts: Vec<f64>,
}

/// A one-shot global partitioner: builds a balanced bipartition directly
/// from global structure (spectra, placements, orderings, multilevel
/// clustering) instead of improving a random one.
pub trait GlobalPartitioner {
    /// Short display name, e.g. `"EIG1"`.
    fn name(&self) -> &str;

    /// Constructs a balance-feasible bipartition of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph.
    fn partition(
        &self,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError>;
}

/// An iterative-improvement 2-way partitioner (FM, LA, PROP, …).
///
/// Implementors provide [`improve`], which drives an existing partition to
/// a local minimum through passes; the provided harnesses add seeded
/// random initial partitions and multi-run (best-of-R) orchestration —
/// the experimental protocol of the paper (e.g. "PROP with 20 runs").
///
/// The trait requires [`Sync`] so the multi-run harness can fan
/// independent runs out over worker threads
/// ([`run_multi_parallel`]); partitioners are plain parameter structs, so
/// this costs implementors nothing.
///
/// [`improve`]: Partitioner::improve
/// [`run_multi_parallel`]: Partitioner::run_multi_parallel
pub trait Partitioner: Sync {
    /// Short display name, e.g. `"FM-bucket"` or `"PROP"`.
    fn name(&self) -> &str;

    /// Improves `partition` in place until a pass yields no positive gain,
    /// and returns pass statistics.
    ///
    /// Implementations must leave `partition` balance-feasible whenever it
    /// was feasible on entry.
    fn improve(
        &self,
        graph: &prop_netlist::Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats;

    /// Runs one improvement from a seeded random near-equal bisection.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph.
    fn run_seeded(
        &self,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
        seed: u64,
    ) -> Result<RunResult, PartitionError> {
        self.run_multi(graph, balance, 1, seed)
    }

    /// Runs `runs` independent improvements from seeded random initial
    /// partitions (seeds `base_seed, base_seed+1, …`) and returns the best.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
    /// [`PartitionError::InvalidConfig`] when `runs == 0`.
    fn run_multi(
        &self,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
        runs: usize,
        base_seed: u64,
    ) -> Result<RunResult, PartitionError> {
        self.run_multi_parallel(graph, balance, runs, base_seed, ParallelPolicy::Sequential)
    }

    /// Runs `runs` independent improvements like [`run_multi`], fanning
    /// them out over the worker threads `policy` resolves to. Each run
    /// keeps its sequential seed (`base_seed + r`) and the winner is the
    /// earliest run with the minimum cut, so the result — partition,
    /// cut, and per-run cut vector — is bit-identical to [`run_multi`]
    /// for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
    /// [`PartitionError::InvalidConfig`] when `runs == 0`.
    ///
    /// [`run_multi`]: Partitioner::run_multi
    fn run_multi_parallel(
        &self,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
        runs: usize,
        base_seed: u64,
        policy: ParallelPolicy,
    ) -> Result<RunResult, PartitionError> {
        parallel::run_multi_parallel(self, graph, balance, runs, base_seed, policy)
    }

    /// Like [`run_multi_parallel`], but under a cooperative cancellation
    /// token: tripping `token` (explicitly or by deadline) stops runs in
    /// flight at their next pass boundary and skips unstarted runs,
    /// returning the best feasible partition found so far. With a token
    /// that never trips the report's result is bit-identical to
    /// [`run_multi_parallel`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
    /// [`PartitionError::InvalidConfig`] when `runs == 0`.
    ///
    /// [`run_multi_parallel`]: Partitioner::run_multi_parallel
    fn run_multi_cancellable(
        &self,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
        runs: usize,
        base_seed: u64,
        policy: ParallelPolicy,
        token: &CancelToken,
    ) -> Result<MultiRunReport, PartitionError> {
        parallel::run_multi_cancellable(self, graph, balance, runs, base_seed, policy, token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::CutState;
    use crate::partition::Side;
    use prop_netlist::{Hypergraph, HypergraphBuilder};

    /// A do-nothing partitioner: improvement keeps the initial partition.
    struct Identity;

    impl Partitioner for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn improve(
            &self,
            graph: &Hypergraph,
            partition: &mut Bipartition,
            _balance: BalanceConstraint,
        ) -> ImproveStats {
            ImproveStats {
                passes: 1,
                cut_cost: CutState::new(graph, partition).cut_cost(),
            }
        }
    }

    fn graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(1.0, [4, 5]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn multi_run_returns_best() {
        let g = graph();
        let balance = BalanceConstraint::bisection(6);
        let res = Identity.run_multi(&g, balance, 8, 0).unwrap();
        assert_eq!(res.run_cuts.len(), 8);
        assert_eq!(res.total_passes, 8);
        let min = res.run_cuts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(res.cut_cost, min);
        assert_eq!(
            res.cut_cost,
            CutState::new(&g, &res.partition).cut_cost()
        );
    }

    #[test]
    fn run_seeded_is_single_run() {
        let g = graph();
        let balance = BalanceConstraint::bisection(6);
        let res = Identity.run_seeded(&g, balance, 42).unwrap();
        assert_eq!(res.run_cuts.len(), 1);
        // Deterministic in the seed.
        let res2 = Identity.run_seeded(&g, balance, 42).unwrap();
        assert_eq!(res.partition, res2.partition);
    }

    #[test]
    fn errors_on_empty_graph_and_zero_runs() {
        let g = HypergraphBuilder::new(0).build().unwrap();
        let balance = BalanceConstraint::bisection(0);
        assert_eq!(
            Identity.run_seeded(&g, balance, 0),
            Err(PartitionError::EmptyGraph)
        );
        let g = graph();
        let balance = BalanceConstraint::bisection(6);
        assert!(matches!(
            Identity.run_multi(&g, balance, 0, 0),
            Err(PartitionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Partitioner> = Box::new(Identity);
        assert_eq!(boxed.name(), "identity");
        let g = graph();
        let mut p = Bipartition::from_sides(vec![
            Side::A,
            Side::A,
            Side::A,
            Side::B,
            Side::B,
            Side::B,
        ]);
        let stats = boxed.improve(&g, &mut p, BalanceConstraint::bisection(6));
        assert_eq!(stats.passes, 1);
    }
}
