//! Cooperative cancellation of long-running partitioning work.
//!
//! A [`CancelToken`] is a cloneable handle around an atomic flag plus an
//! optional wall-clock deadline. Engines never receive it as a parameter;
//! instead the multi-run harness (and any other driver, such as the
//! `prop-serve` daemon's workers) installs the token into a thread-local
//! slot with [`scope`] — the same pattern the [`crate::audit`] hooks use —
//! and every pass loop polls [`requested`] at its pass boundaries.
//!
//! Design constraints:
//!
//! * **Checks are pass-grained.** A tripped token stops an improvement
//!   run at the next pass boundary, where the partition is always
//!   balance-feasible (each pass commits its best feasible prefix and
//!   rolls the rest back), so the partial result is a usable partition.
//! * **An untripped token is invisible.** The polls read one relaxed
//!   atomic; they change no control flow, so runs under a token that
//!   never trips are bit-identical to runs without one.
//! * **Cancellation is sticky.** Once [`CancelToken::is_cancelled`]
//!   returns `true` — whether by an explicit [`CancelToken::cancel`] or
//!   by an expired deadline — it returns `true` forever.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cloneable cancellation handle: all clones share one flag and one
/// deadline, so any holder can stop the work every other holder observes.
///
/// ```
/// use prop_core::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    /// Optional wall-clock deadline; crossing it trips `flag` on the next
    /// poll. Behind a mutex because it is set once per job (by the worker
    /// that starts executing it) and read only at pass boundaries.
    deadline: Mutex<Option<Instant>>,
}

impl CancelToken {
    /// A fresh, untripped token with no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token: every current and future [`is_cancelled`] poll on
    /// any clone returns `true`.
    ///
    /// [`is_cancelled`]: CancelToken::is_cancelled
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Arms (or replaces) the wall-clock deadline; polls after `deadline`
    /// report cancellation.
    pub fn set_deadline(&self, deadline: Instant) {
        *self.inner.deadline.lock().expect("deadline lock poisoned") = Some(deadline);
    }

    /// Arms the deadline `timeout` from now.
    pub fn set_timeout(&self, timeout: Duration) {
        self.set_deadline(Instant::now() + timeout);
    }

    /// Sleeps for `duration` unless (or until) the token trips, polling
    /// in small chunks so a cancel fan-out is observed promptly. Returns
    /// `true` when the sleep was cut short by cancellation — the caller's
    /// cue to stop retrying / heartbeating rather than continue its loop.
    ///
    /// This is the backoff/heartbeat primitive for drivers that wait
    /// *between* jobs (retry backoff, health-check intervals): a plain
    /// `thread::sleep` there would ignore cancellation for the whole
    /// interval, turning a cooperative cancel into a stall.
    pub fn sleep(&self, duration: Duration) -> bool {
        const CHUNK: Duration = Duration::from_millis(20);
        let end = Instant::now() + duration;
        loop {
            if self.is_cancelled() {
                return true;
            }
            let now = Instant::now();
            if now >= end {
                return false;
            }
            std::thread::sleep((end - now).min(CHUNK));
        }
    }

    /// Whether the token has been tripped (explicitly or by deadline).
    /// A deadline crossing is latched into the flag, so the (cheap) flag
    /// check short-circuits all later polls.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        let expired = self
            .inner
            .deadline
            .lock()
            .expect("deadline lock poisoned")
            .is_some_and(|d| Instant::now() >= d);
        if expired {
            self.inner.flag.store(true, Ordering::Relaxed);
        }
        expired
    }
}

thread_local! {
    /// The token governing work on this thread, if any.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Runs `f` with `token` installed as this thread's cancellation token,
/// restoring the previously installed token (if any) afterwards. Nesting
/// is allowed; the innermost scope wins.
pub fn scope<F: FnOnce() -> R, R>(token: &CancelToken, f: F) -> R {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Whether the token installed on this thread (if any) has been tripped.
/// `false` when no token is installed, so pass loops can poll this
/// unconditionally.
pub fn requested() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_untripped() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled(), "polling must not trip the token");
    }

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latched: even if the deadline were pushed out, the flag stays.
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::new();
        t.set_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancellable_sleep_runs_to_completion_when_untripped() {
        let t = CancelToken::new();
        let start = Instant::now();
        assert!(!t.sleep(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn cancellable_sleep_returns_early_once_tripped() {
        let t = CancelToken::new();
        t.cancel();
        let start = Instant::now();
        assert!(t.sleep(Duration::from_secs(3600)));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn scope_installs_and_restores() {
        assert!(!requested(), "no token installed outside a scope");
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        inner.cancel();
        scope(&outer, || {
            assert!(!requested());
            scope(&inner, || assert!(requested()));
            // Inner scope restored the outer token.
            assert!(!requested());
            outer.cancel();
            assert!(requested());
        });
        assert!(!requested());
    }

    #[test]
    fn scope_restores_on_panic() {
        let tripped = CancelToken::new();
        tripped.cancel();
        let result = std::panic::catch_unwind(|| scope(&tripped, || panic!("boom")));
        assert!(result.is_err());
        assert!(!requested(), "panicking scope must still uninstall");
    }
}
