//! Incremental cutset bookkeeping.

use crate::partition::{Bipartition, Side};
use prop_netlist::{Hypergraph, NetId, NodeId};

/// Per-net pin counts by side, with the cut cost maintained incrementally.
///
/// A net is *in the cutset* when it has at least one pin on each side; the
/// cut cost is the sum of weights of cut nets. [`apply_move`] flips one
/// node, updates all counts and the cost, and returns the exact immediate
/// gain (cost decrease) of the move — the quantity whose prefix sums decide
/// what a pass commits.
///
/// ```
/// use prop_core::{Bipartition, CutState, Side};
/// use prop_netlist::{HypergraphBuilder, NodeId};
///
/// # fn main() -> Result<(), prop_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new(3);
/// b.add_net(1.0, [0, 1])?;
/// b.add_net(1.0, [1, 2])?;
/// let g = b.build()?;
/// let mut part = Bipartition::from_sides(vec![Side::A, Side::B, Side::B]);
/// let mut cut = CutState::new(&g, &part);
/// assert_eq!(cut.cut_cost(), 1.0);
/// let gain = cut.apply_move(&g, &mut part, NodeId::new(0));
/// assert_eq!(gain, 1.0);
/// assert_eq!(cut.cut_cost(), 0.0);
/// # Ok(())
/// # }
/// ```
///
/// [`apply_move`]: CutState::apply_move
#[derive(Clone, PartialEq, Debug)]
pub struct CutState {
    /// `pins_on[net][side]` — pins of `net` on each side.
    pins_on: Vec<[u32; 2]>,
    cut_cost: f64,
    cut_nets: usize,
}

impl CutState {
    /// Computes the cut state of `partition` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the partition and graph disagree on the node count.
    pub fn new(graph: &Hypergraph, partition: &Bipartition) -> Self {
        assert_eq!(
            graph.num_nodes(),
            partition.len(),
            "partition/graph node count mismatch"
        );
        let mut pins_on = vec![[0u32; 2]; graph.num_nets()];
        for net in graph.nets() {
            for &pin in graph.pins_of(net) {
                pins_on[net.index()][partition.side(pin).index()] += 1;
            }
        }
        let mut cut_cost = 0.0;
        let mut cut_nets = 0;
        for net in graph.nets() {
            let [a, b] = pins_on[net.index()];
            if a > 0 && b > 0 {
                cut_cost += graph.net_weight(net);
                cut_nets += 1;
            }
        }
        CutState {
            pins_on,
            cut_cost,
            cut_nets,
        }
    }

    /// Total weight of cut nets.
    #[inline]
    pub fn cut_cost(&self) -> f64 {
        self.cut_cost
    }

    /// Number of cut nets (equals the cut cost under unit weights).
    #[inline]
    pub fn cut_nets(&self) -> usize {
        self.cut_nets
    }

    /// Pins of `net` on `side`.
    #[inline]
    pub fn pins_on(&self, net: NetId, side: Side) -> u32 {
        self.pins_on[net.index()][side.index()]
    }

    /// Whether `net` currently crosses the partition.
    #[inline]
    pub fn is_cut(&self, net: NetId) -> bool {
        let [a, b] = self.pins_on[net.index()];
        a > 0 && b > 0
    }

    /// The immediate gain of moving `node` to the other side, *without*
    /// applying the move. Equals the Eqn.-1 FM gain.
    pub fn move_gain(&self, graph: &Hypergraph, partition: &Bipartition, node: NodeId) -> f64 {
        let from = partition.side(node);
        let to = from.other();
        let mut gain = 0.0;
        for &net in graph.nets_of(node) {
            let on_from = self.pins_on(net, from);
            let on_to = self.pins_on(net, to);
            if on_from == 1 && on_to > 0 {
                gain += graph.net_weight(net); // net leaves the cut
            } else if on_to == 0 && on_from > 1 {
                gain -= graph.net_weight(net); // net enters the cut
            }
        }
        gain
    }

    /// Moves `node` to the other side, updating `partition`, all pin
    /// counts, and the cut cost. Returns the immediate gain realised
    /// (positive when the cut shrank).
    ///
    /// Applying the same move twice restores the original state exactly
    /// (counts are integral; the cost is re-derived from weights on each
    /// transition, so it does not drift).
    pub fn apply_move(
        &mut self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        node: NodeId,
    ) -> f64 {
        let from = partition.side(node);
        let to = from.other();
        let mut gain = 0.0;
        for &net in graph.nets_of(node) {
            let counts = &mut self.pins_on[net.index()];
            let was_cut = counts[0] > 0 && counts[1] > 0;
            counts[from.index()] -= 1;
            counts[to.index()] += 1;
            let is_cut = counts[0] > 0 && counts[1] > 0;
            match (was_cut, is_cut) {
                (true, false) => {
                    let w = graph.net_weight(net);
                    self.cut_cost -= w;
                    self.cut_nets -= 1;
                    gain += w;
                }
                (false, true) => {
                    let w = graph.net_weight(net);
                    self.cut_cost += w;
                    self.cut_nets += 1;
                    gain -= w;
                }
                _ => {}
            }
        }
        partition.flip(node);
        gain
    }
}

/// Convenience: the cut cost of `partition` over `graph`, computed from
/// scratch.
pub fn cut_cost(graph: &Hypergraph, partition: &Bipartition) -> f64 {
    CutState::new(graph, partition).cut_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::HypergraphBuilder;

    fn chain() -> Hypergraph {
        // 0 -n0- 1 -n1- 2 -n2- 3, plus a 3-pin net {0,1,3} of weight 2.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(2.0, [0, 1, 3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_cut() {
        let g = chain();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let cut = CutState::new(&g, &p);
        // Cut nets: n1 {1,2} and n3 {0,1,3} (weight 2).
        assert_eq!(cut.cut_cost(), 3.0);
        assert_eq!(cut.cut_nets(), 2);
        assert!(cut.is_cut(NetId::new(1)));
        assert!(!cut.is_cut(NetId::new(0)));
        assert_eq!(cut.pins_on(NetId::new(3), Side::A), 2);
        assert_eq!(cut.pins_on(NetId::new(3), Side::B), 1);
    }

    #[test]
    fn move_gain_matches_apply() {
        let g = chain();
        let mut p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let mut cut = CutState::new(&g, &p);
        for node in 0..4 {
            let predicted = cut.move_gain(&g, &p, NodeId::new(node));
            let before = cut.cut_cost();
            let realised = cut.apply_move(&g, &mut p, NodeId::new(node));
            assert_eq!(predicted, realised, "node {node}");
            assert_eq!(before - realised, cut.cut_cost());
            // Undo.
            cut.apply_move(&g, &mut p, NodeId::new(node));
            assert_eq!(cut.cut_cost(), before);
        }
    }

    #[test]
    fn apply_move_is_involutive() {
        let g = chain();
        let mut p = Bipartition::from_sides(vec![Side::A, Side::B, Side::A, Side::B]);
        let reference = CutState::new(&g, &p);
        let mut cut = reference.clone();
        let g1 = cut.apply_move(&g, &mut p, NodeId::new(2));
        let g2 = cut.apply_move(&g, &mut p, NodeId::new(2));
        assert_eq!(g1, -g2);
        assert_eq!(cut, reference);
    }

    #[test]
    fn consistency_with_fresh_recount() {
        let g = chain();
        let mut p = Bipartition::from_sides(vec![Side::A, Side::A, Side::A, Side::B]);
        let mut cut = CutState::new(&g, &p);
        for node in [0usize, 3, 1, 2, 0, 1] {
            cut.apply_move(&g, &mut p, NodeId::new(node));
            let fresh = CutState::new(&g, &p);
            assert_eq!(cut, fresh);
        }
    }

    #[test]
    fn all_one_side_has_zero_cut() {
        let g = chain();
        let p = Bipartition::from_sides(vec![Side::B; 4]);
        let cut = CutState::new(&g, &p);
        assert_eq!(cut.cut_cost(), 0.0);
        assert_eq!(cut.cut_nets(), 0);
    }

    #[test]
    fn free_function_matches() {
        let g = chain();
        let p = Bipartition::from_sides(vec![Side::A, Side::B, Side::A, Side::B]);
        assert_eq!(cut_cost(&g, &p), CutState::new(&g, &p).cut_cost());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_partition_panics() {
        let g = chain();
        let p = Bipartition::from_sides(vec![Side::A, Side::B]);
        let _ = CutState::new(&g, &p);
    }
}
