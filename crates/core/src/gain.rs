//! Gain functions: the deterministic FM gain (Eqn. 1) and a reference
//! implementation of PROP's probabilistic gain (Eqns. 3–4).

use crate::cut::CutState;
use crate::partition::Bipartition;
use prop_netlist::{Hypergraph, NodeId};

/// The deterministic FM gain of `node` (Eqn. 1 of the paper): the immediate
/// decrease in cut cost if the node moves to the other side.
///
/// `gain(u) = Σ_{n ∈ E(u)} c(n) − Σ_{n ∈ I(u)} c(n)` where `E(u)` are cut
/// nets on which `u` is alone in its side and `I(u)` are nets lying
/// entirely in `u`'s side.
pub fn fm_gain(
    graph: &Hypergraph,
    partition: &Bipartition,
    cut: &CutState,
    node: NodeId,
) -> f64 {
    cut.move_gain(graph, partition, node)
}

/// The deterministic FM gains of all nodes.
pub fn fm_gains(graph: &Hypergraph, partition: &Bipartition, cut: &CutState) -> Vec<f64> {
    graph
        .nodes()
        .map(|v| cut.move_gain(graph, partition, v))
        .collect()
}

/// Reference implementation of the probabilistic node gains of Eqns. 3–4,
/// for an arbitrary probability assignment.
///
/// For node `u` on side `s` and incident net `n` of weight `c`:
///
/// * if `n` is cut: `g_n(u) = c·(Π_{x ∈ n∩s, x≠u} p(x) − Π_{y ∈ n∩s̄} p(y))`,
/// * otherwise:     `g_n(u) = −c·(1 − Π_{x ∈ n∩s, x≠u} p(x))`,
///
/// and `g(u) = Σ_n g_n(u)`. Locked nodes contribute probability 0, which
/// makes the general formulas subsume the locked-net special cases
/// (Eqns. 5–6) — a locked pin on a side zeroes that side's product.
///
/// Locked nodes receive gain 0 (they are never move candidates).
///
/// This O(m·q) direct evaluation is the differential-testing oracle for the
/// incremental product-based engine inside [`Prop`], and powers the
/// Figure-1 worked example ([`crate::example`]).
///
/// # Panics
///
/// Panics if `probs` or `locked` disagree with the graph's node count, or
/// if any unlocked probability is outside `[0, 1]`.
///
/// [`Prop`]: crate::Prop
pub fn probabilistic_gains(
    graph: &Hypergraph,
    partition: &Bipartition,
    probs: &[f64],
    locked: &[bool],
) -> Vec<f64> {
    let n = graph.num_nodes();
    assert_eq!(probs.len(), n, "probability vector length mismatch");
    assert_eq!(locked.len(), n, "locked vector length mismatch");
    for (i, &p) in probs.iter().enumerate() {
        assert!(
            locked[i] || (0.0..=1.0).contains(&p),
            "probability {p} of node {i} outside [0, 1]"
        );
    }
    let eff = |v: NodeId| -> f64 {
        if locked[v.index()] {
            0.0
        } else {
            probs[v.index()]
        }
    };
    let mut gains = vec![0.0; n];
    for u in graph.nodes() {
        if locked[u.index()] {
            continue;
        }
        let s = partition.side(u);
        let mut g = 0.0;
        for &net in graph.nets_of(u) {
            let c = graph.net_weight(net);
            let mut prod_same = 1.0;
            let mut prod_other = 1.0;
            let mut other_pins = 0usize;
            for &x in graph.pins_of(net) {
                if partition.side(x) == s {
                    if x != u {
                        prod_same *= eff(x);
                    }
                } else {
                    other_pins += 1;
                    prod_other *= eff(x);
                }
            }
            if other_pins > 0 {
                g += c * (prod_same - prod_other);
            } else {
                g -= c * (1.0 - prod_same);
            }
        }
        gains[u.index()] = g;
    }
    gains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Side;
    use prop_netlist::HypergraphBuilder;

    fn two_net_graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fm_gain_matches_definition() {
        let g = two_net_graph();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let cut = CutState::new(&g, &p);
        // Node 2 is alone on side B of net 0 (cut), and net 1 is internal
        // to B: gain = +1 − 1 = 0.
        assert_eq!(fm_gain(&g, &p, &cut, NodeId::new(2)), 0.0);
        // Node 3: net 1 internal: gain −1.
        assert_eq!(fm_gain(&g, &p, &cut, NodeId::new(3)), -1.0);
        let all = fm_gains(&g, &p, &cut);
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], -1.0);
    }

    #[test]
    fn unit_probabilities_reduce_to_certainty() {
        // With p ≡ 1, a cut net's gain is 1 − 1 = 0 unless u is alone on
        // its side (then 1 − 1 = 0 still, since the other side's product is
        // 1)… and an uncut net contributes 0. The probabilistic gain is the
        // *certain-future* gain, not the FM gain.
        let g = two_net_graph();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let gains = probabilistic_gains(&g, &p, &[1.0; 4], &[false; 4]);
        assert_eq!(gains, vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_probabilities_reduce_to_fm_gain() {
        // With p ≡ 0 for every *other* node, the products vanish except for
        // empty products: a cut net where u is alone on its side gives
        // c·(1 − 0) = c, an uncut net gives −c·(1 − 0)... except when u is
        // the only pin. That is exactly Eqn. 1 restricted to nets where the
        // events are certain.
        let g = two_net_graph();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let cut = CutState::new(&g, &p);
        let gains = probabilistic_gains(&g, &p, &[0.0; 4], &[false; 4]);
        for v in g.nodes() {
            assert_eq!(gains[v.index()], fm_gain(&g, &p, &cut, v), "{v}");
        }
    }

    #[test]
    fn locked_pin_zeroes_side_product() {
        let mut b = HypergraphBuilder::new(3);
        b.add_net(1.0, [0, 1, 2]).unwrap();
        let g = b.build().unwrap();
        // Net cut: {0,1} in A, {2} in B. Node 2 locked (just moved there).
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B]);
        let locked = [false, false, true];
        let probs = [0.5, 0.5, 0.9];
        let gains = probabilistic_gains(&g, &p, &probs, &locked);
        // Eqn. 5: g(0) = c · Π_{x ∈ n∩A − {0}} p(x) = 0.5 (the other side's
        // product is zeroed by the locked pin).
        assert!((gains[0] - 0.5).abs() < 1e-12);
        assert!((gains[1] - 0.5).abs() < 1e-12);
        // Locked node has no gain.
        assert_eq!(gains[2], 0.0);
    }

    #[test]
    fn uncut_net_locked_in_side_gives_full_penalty() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(3.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::A]);
        // Node 1 locked in A: moving node 0 cuts the net forever: gain −c.
        let gains = probabilistic_gains(&g, &p, &[0.7, 0.7], &[false, true]);
        assert_eq!(gains[0], -3.0);
    }

    #[test]
    fn single_pin_net_contributes_nothing() {
        let mut b = HypergraphBuilder::new(2);
        b.add_net(1.0, [0]).unwrap();
        b.add_net(1.0, [0, 1]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::B]);
        let gains = probabilistic_gains(&g, &p, &[0.5, 0.5], &[false, false]);
        // Net 0 (single pin): empty same-side product = 1, net is uncut:
        // −c(1−1) = 0. Net 1 is cut with u alone: 1 − 0.5 = 0.5.
        assert!((gains[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_panics() {
        let g = two_net_graph();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let _ = probabilistic_gains(&g, &p, &[1.5, 0.5, 0.5, 0.5], &[false; 4]);
    }
}
