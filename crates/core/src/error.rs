//! Error type for partitioning.

use std::error::Error;
use std::fmt;

/// Error produced by partitioner construction or execution.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum PartitionError {
    /// The `(r1, r2)` ratios do not describe a satisfiable 2-way balance.
    InvalidBalance {
        /// Lower ratio.
        r1: f64,
        /// Upper ratio.
        r2: f64,
    },
    /// A partitioner configuration parameter is out of range.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        message: String,
    },
    /// The graph has no nodes to partition.
    EmptyGraph,
    /// A partition vector does not match the graph it is used with.
    PartitionMismatch {
        /// Nodes in the partition.
        partition_nodes: usize,
        /// Nodes in the graph.
        graph_nodes: usize,
    },
    /// The per-part area budgets of a k-way request admit no feasible
    /// assignment (budgets sum below the total node weight, a budget
    /// below the heaviest node, or no packing within the caps exists).
    InfeasibleBudgets {
        /// Human-readable description of the failed feasibility check.
        message: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidBalance { r1, r2 } => {
                write!(f, "balance ratios ({r1}, {r2}) are not satisfiable for a 2-way partition")
            }
            PartitionError::InvalidConfig { message } => {
                write!(f, "invalid partitioner configuration: {message}")
            }
            PartitionError::EmptyGraph => write!(f, "cannot partition an empty graph"),
            PartitionError::PartitionMismatch {
                partition_nodes,
                graph_nodes,
            } => write!(
                f,
                "partition over {partition_nodes} nodes used with a graph of {graph_nodes} nodes"
            ),
            PartitionError::InfeasibleBudgets { message } => {
                write!(f, "infeasible k-way budgets: {message}")
            }
        }
    }
}

impl Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PartitionError::EmptyGraph.to_string().contains("empty"));
        let e = PartitionError::InvalidBalance { r1: 0.6, r2: 0.7 };
        assert!(e.to_string().contains("0.6"));
        let e = PartitionError::PartitionMismatch {
            partition_nodes: 3,
            graph_nodes: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<PartitionError>();
    }
}
