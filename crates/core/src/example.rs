//! Reconstruction of the paper's Figure-1 worked example.
//!
//! Figure 1 of the paper illustrates why probabilistic gains rank nodes
//! better than FM or LA-3 gains: eleven `V1` nodes sit on seventeen nets,
//! eleven of which (`n1`–`n11`) are in the cutset. Nodes 1, 2, and 3 all
//! have FM gain 2, yet node 3 is intuitively the best move; PROP's second
//! gain iteration produces exactly `g(1) = 2.0016`, `g(2) = 2.04`,
//! `g(3) = 2.64`, separating them.
//!
//! The figure does not draw the `V2` side in full; this reconstruction
//! gives every cut net three `V2` pins of probability 0 — equivalent to
//! the paper's simplification of equal (and dropped) `p(n^{2→1})` terms,
//! and heavy enough on the `V2` side that the LA-3 vectors of nodes 1–3
//! match the printed `(2,0,0)` and `(2,0,1)`. The uncut nets `n12`–`n17`
//! each connect one of nodes 4–9 to a phantom partner of probability 0.5,
//! exactly as §3.3 assumes.
//!
//! ```
//! use prop_core::example;
//!
//! let fig = example::figure1();
//! let gains = fig.second_iteration_gains();
//! assert!((gains[example::paper_node(3).index()] - 2.64).abs() < 1e-12);
//! ```

use crate::cut::CutState;
use crate::gain::{fm_gains, probabilistic_gains};
use crate::partition::{Bipartition, Side};
use prop_netlist::{Hypergraph, HypergraphBuilder, NodeId};

/// Number of `V1` circuit nodes in the figure (paper nodes 1–11).
pub const V1_NODES: usize = 11;
/// Phantom partners of nodes 4–9 on the uncut nets (also in `V1`).
pub const PHANTOM_NODES: usize = 6;
/// `V2` pins: three per cut net.
pub const V2_NODES: usize = 33;

/// The Figure-1 instance: hypergraph, partition, and the first-iteration
/// node probabilities printed in Fig. 1(b).
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The reconstructed hypergraph (50 nodes, 17 nets).
    pub graph: Hypergraph,
    /// `V1` = side A (paper nodes, phantoms), `V2` = side B.
    pub partition: Bipartition,
    /// Node probabilities after the first gain/probability iteration:
    /// 1.0 for nodes 1–3, 0.8 for 10–11, 0.2 for 4–9, 0.5 for the
    /// phantoms, 0 for the `V2` pins.
    pub probabilities: Vec<f64>,
}

/// Maps a 1-based paper node number (1–11) to its [`NodeId`].
///
/// # Panics
///
/// Panics unless `1 <= paper_index <= 11`.
pub fn paper_node(paper_index: usize) -> NodeId {
    assert!(
        (1..=V1_NODES).contains(&paper_index),
        "paper nodes are numbered 1–11, got {paper_index}"
    );
    NodeId::new(paper_index - 1)
}

/// Builds the Figure-1 instance.
pub fn figure1() -> Figure1 {
    let total = V1_NODES + PHANTOM_NODES + V2_NODES;
    let mut b = HypergraphBuilder::new(total);
    // V2 pin trios are allocated sequentially per cut net.
    let mut next_v2 = V1_NODES + PHANTOM_NODES;
    let mut cut_net = |b: &mut HypergraphBuilder, v1_pins: &[usize]| {
        let mut pins = v1_pins.to_vec();
        pins.extend(next_v2..next_v2 + 3);
        next_v2 += 3;
        b.add_net(1.0, pins).expect("figure-1 net construction");
    };
    cut_net(&mut b, &[0]); // n1: node 1
    cut_net(&mut b, &[0]); // n2: node 1
    cut_net(&mut b, &[1]); // n3: node 2
    cut_net(&mut b, &[1]); // n4: node 2
    cut_net(&mut b, &[9]); // n5: node 10
    cut_net(&mut b, &[2]); // n6: node 3
    cut_net(&mut b, &[2]); // n7: node 3
    cut_net(&mut b, &[10]); // n8: node 11
    cut_net(&mut b, &[0, 3, 4, 5, 6]); // n9: nodes 1, 4–7
    cut_net(&mut b, &[1, 7, 8]); // n10: nodes 2, 8, 9
    cut_net(&mut b, &[2, 9, 10]); // n11: nodes 3, 10, 11
    for i in 0..PHANTOM_NODES {
        // n12–n17: node (4+i) with its phantom partner, uncut in V1.
        b.add_net(1.0, [3 + i, V1_NODES + i])
            .expect("figure-1 uncut net");
    }
    let graph = b.build().expect("figure-1 build");

    let mut sides = vec![Side::A; total];
    for s in sides.iter_mut().skip(V1_NODES + PHANTOM_NODES) {
        *s = Side::B;
    }
    let partition = Bipartition::from_sides(sides);

    let mut probabilities = vec![0.0; total];
    for paper in 1..=3 {
        probabilities[paper_node(paper).index()] = 1.0;
    }
    for paper in 4..=9 {
        probabilities[paper_node(paper).index()] = 0.2;
    }
    for paper in 10..=11 {
        probabilities[paper_node(paper).index()] = 0.8;
    }
    for i in 0..PHANTOM_NODES {
        probabilities[V1_NODES + i] = 0.5;
    }
    Figure1 {
        graph,
        partition,
        probabilities,
    }
}

impl Figure1 {
    /// The FM (Eqn.-1) gains of all nodes — Fig. 1(a): nodes 1–3 gain 2,
    /// nodes 10–11 gain 1, nodes 4–9 gain −1.
    pub fn fm_gains(&self) -> Vec<f64> {
        let cut = CutState::new(&self.graph, &self.partition);
        fm_gains(&self.graph, &self.partition, &cut)
    }

    /// The probabilistic gains of the second iteration — Fig. 1(c):
    /// `g(1) = 2.0016`, `g(2) = 2.04`, `g(3) = 2.64`,
    /// `g(10) = g(11) = 1.8`, `g(8) = g(9) = −0.3`,
    /// `g(4) = … = g(7) = −0.492` (printed as −0.49).
    pub fn second_iteration_gains(&self) -> Vec<f64> {
        let locked = vec![false; self.graph.num_nodes()];
        probabilistic_gains(&self.graph, &self.partition, &self.probabilities, &locked)
    }
}

/// The paper-printed second-iteration gains, indexed by paper node 1–11.
pub const EXPECTED_SECOND_ITERATION_GAINS: [f64; 11] = [
    2.0016, 2.04, 2.64, -0.492, -0.492, -0.492, -0.492, -0.3, -0.3, 1.8, 1.8,
];

/// The paper-printed FM gains, indexed by paper node 1–11.
pub const EXPECTED_FM_GAINS: [f64; 11] =
    [2.0, 2.0, 2.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_figure() {
        let fig = figure1();
        assert_eq!(fig.graph.num_nodes(), 50);
        assert_eq!(fig.graph.num_nets(), 17);
        // Eleven cut nets, six uncut.
        let cut = CutState::new(&fig.graph, &fig.partition);
        assert_eq!(cut.cut_nets(), 11);
        assert_eq!(cut.cut_cost(), 11.0);
    }

    #[test]
    fn fm_gains_match_figure_1a() {
        let fig = figure1();
        let gains = fig.fm_gains();
        for paper in 1..=11 {
            assert_eq!(
                gains[paper_node(paper).index()],
                EXPECTED_FM_GAINS[paper - 1],
                "paper node {paper}"
            );
        }
    }

    #[test]
    fn probabilistic_gains_match_figure_1c() {
        let fig = figure1();
        let gains = fig.second_iteration_gains();
        for paper in 1..=11 {
            let got = gains[paper_node(paper).index()];
            let want = EXPECTED_SECOND_ITERATION_GAINS[paper - 1];
            assert!(
                (got - want).abs() < 1e-12,
                "paper node {paper}: got {got}, paper says {want}"
            );
        }
    }

    #[test]
    fn node_3_is_the_unique_best_move() {
        let fig = figure1();
        let gains = fig.second_iteration_gains();
        let best = (0..V1_NODES)
            .max_by(|&a, &b| gains[a].partial_cmp(&gains[b]).unwrap())
            .unwrap();
        assert_eq!(NodeId::new(best), paper_node(3));
    }

    #[test]
    #[should_panic(expected = "numbered 1–11")]
    fn paper_node_bounds() {
        let _ = paper_node(12);
    }
}
