//! Deterministic parallel execution of best-of-R multi-start runs.
//!
//! The paper's experimental protocol is *best of R independent runs*
//! (FM100, FM40/20, LA-2/LA-3, PROP(20) in Tables 2–4). The runs share no
//! state — run `r` is fully determined by its seed `base_seed + r` — so
//! they parallelise perfectly at the run level without touching the
//! partitioning algorithm itself.
//!
//! Determinism is preserved by construction:
//!
//! * every run keeps the exact seed it would get sequentially
//!   (`base_seed.wrapping_add(r)`);
//! * per-run results land in a slot vector indexed by run id, never in
//!   completion order;
//! * the winner is the lowest `(cut, run_index)` pair — the same strict
//!   "first run with the minimum cut" rule the sequential loop applies.
//!
//! Consequently [`Partitioner::run_multi_parallel`] returns results
//! bit-identical to [`Partitioner::run_multi`] for every thread count.

use crate::balance::BalanceConstraint;
use crate::cancel::{self, CancelToken};
use crate::cut::CutState;
use crate::error::PartitionError;
use crate::partition::Bipartition;
use crate::partitioner::{Partitioner, RunResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a multi-start invocation may use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParallelPolicy {
    /// One worker; runs execute in run-index order on the calling thread.
    #[default]
    Sequential,
    /// Exactly `n` workers (`0` is treated as `1`).
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl ParallelPolicy {
    /// The worker count this policy resolves to for `runs` runs: never 0,
    /// never more than `runs`.
    pub fn worker_count(self, runs: usize) -> usize {
        let raw = match self {
            ParallelPolicy::Sequential => 1,
            ParallelPolicy::Threads(n) => n.max(1),
            ParallelPolicy::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        raw.min(runs.max(1))
    }
}

/// Deterministic chunked map: the backbone of *intra-run* parallelism.
///
/// Splits `0..n` into fixed-size chunks of `chunk` items — the chunk
/// boundaries depend only on `n` and `chunk`, never on the worker count —
/// and evaluates `f(chunk_index, range)` for every chunk. Results land in
/// a slot vector indexed by chunk id (never completion order) and are
/// returned in chunk order, so the output is **bit-identical for every
/// thread policy**: parallel callers get exactly the sequential result.
///
/// Each worker builds one scratch value via `init` and threads it through
/// every chunk it claims, so per-item scratch arrays (score accumulators,
/// epoch marks) are allocated once per worker instead of once per chunk.
/// The scratch must not carry state *between* chunks that affects results
/// — chunk assignment to workers is scheduling-dependent.
///
/// With one worker (or one chunk) everything runs on the calling thread
/// in chunk order with a single scratch, which also keeps the
/// thread-local [`cancel`] and [`prof`](crate::prof) slots visible.
pub fn map_chunks_with<S, T, F, I>(
    policy: ParallelPolicy,
    n: usize,
    chunk: usize,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, std::ops::Range<usize>) -> T + Sync,
{
    let chunk = chunk.max(1);
    let chunks = n.div_ceil(chunk);
    let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let workers = policy.worker_count(chunks);
    if workers <= 1 {
        let mut scratch = init();
        return (0..chunks).map(|c| f(&mut scratch, c, range_of(c))).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let out = f(&mut scratch, c, range_of(c));
                    *slots[c].lock().expect("chunk slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk index was claimed by a worker")
        })
        .collect()
}

/// [`map_chunks_with`] without per-worker scratch.
pub fn map_chunks<T, F>(policy: ParallelPolicy, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    map_chunks_with(policy, n, chunk, || (), |(), c, range| f(c, range))
}

/// A complete multi-start work order: how many runs, from which base
/// seed, over how many threads.
///
/// ```
/// use prop_core::{BalanceConstraint, Prop, RunBudget};
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(80, 90, 300).with_seed(5))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let budget = RunBudget::new(4).with_seed(7).with_threads(2);
/// let best = budget.execute(&Prop::default(), &graph, balance)?;
/// assert_eq!(best.run_cuts.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RunBudget {
    /// Number of independent runs (best-of-R).
    pub runs: usize,
    /// Seed of run 0; run `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Worker-thread policy.
    pub policy: ParallelPolicy,
}

impl RunBudget {
    /// A sequential budget of `runs` runs from seed 0.
    pub fn new(runs: usize) -> Self {
        RunBudget {
            runs,
            base_seed: 0,
            policy: ParallelPolicy::Sequential,
        }
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(self, base_seed: u64) -> Self {
        RunBudget { base_seed, ..self }
    }

    /// Replaces the thread policy with an explicit worker count.
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        RunBudget {
            policy: ParallelPolicy::Threads(threads),
            ..self
        }
    }

    /// Replaces the thread policy.
    #[must_use]
    pub fn with_policy(self, policy: ParallelPolicy) -> Self {
        RunBudget { policy, ..self }
    }

    /// Runs the budget with `partitioner`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
    /// [`PartitionError::InvalidConfig`] when `runs == 0`.
    pub fn execute<P: Partitioner + ?Sized>(
        &self,
        partitioner: &P,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        run_multi_parallel(
            partitioner,
            graph,
            balance,
            self.runs,
            self.base_seed,
            self.policy,
        )
    }

    /// Runs the budget under a cancellation token; see
    /// [`Partitioner::run_multi_cancellable`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
    /// [`PartitionError::InvalidConfig`] when `runs == 0`.
    pub fn execute_cancellable<P: Partitioner + ?Sized>(
        &self,
        partitioner: &P,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
        token: &CancelToken,
    ) -> Result<MultiRunReport, PartitionError> {
        run_multi_cancellable(
            partitioner,
            graph,
            balance,
            self.runs,
            self.base_seed,
            self.policy,
            token,
        )
    }
}

/// How a cancellable multi-start invocation terminated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// Every requested run finished; the result is bit-identical to the
    /// uncancellable harness.
    Completed,
    /// The token tripped: runs in flight stopped at their next pass
    /// boundary, unstarted runs were skipped. The result is the best
    /// feasible partition found up to that point.
    Cancelled,
}

/// Result of a cancellable multi-start invocation.
#[derive(Clone, PartialEq, Debug)]
pub struct MultiRunReport {
    /// The best partition found (over finished and partially-finished
    /// runs). Always balance-feasible when the initial partitions were.
    pub result: RunResult,
    /// Whether the invocation ran to completion or was cut short.
    pub status: RunStatus,
    /// How many runs began executing (each contributes one entry to
    /// `result.run_cuts`, even if it was stopped early). `0` only when
    /// the token was tripped before any run started, in which case the
    /// report carries run 0's seeded initial partition unimproved.
    pub started_runs: usize,
}

/// One finished run, parked in its slot until every run completes.
struct RunOutcome {
    partition: Bipartition,
    cut: f64,
    passes: usize,
}

fn execute_run<P: Partitioner + ?Sized>(
    partitioner: &P,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    base_seed: u64,
    run_index: usize,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(run_index as u64));
    let mut partition = Bipartition::random(graph.num_nodes(), &mut rng);
    let stats = partitioner.improve(graph, &mut partition, balance);
    // Re-derive the cost from scratch so multi-run comparison never
    // trusts incremental bookkeeping.
    let cut = CutState::new(graph, &partition).cut_cost();
    RunOutcome {
        partition,
        cut,
        passes: stats.passes,
    }
}

/// The shared implementation behind [`Partitioner::run_multi`] and
/// [`Partitioner::run_multi_parallel`].
///
/// # Errors
///
/// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
/// [`PartitionError::InvalidConfig`] when `runs == 0`.
pub(crate) fn run_multi_parallel<P: Partitioner + ?Sized>(
    partitioner: &P,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    base_seed: u64,
    policy: ParallelPolicy,
) -> Result<RunResult, PartitionError> {
    if graph.num_nodes() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if runs == 0 {
        return Err(PartitionError::InvalidConfig {
            message: "runs must be at least 1".into(),
        });
    }

    let workers = policy.worker_count(runs);
    let outcomes: Vec<RunOutcome> = if workers <= 1 {
        (0..runs)
            .map(|r| execute_run(partitioner, graph, balance, base_seed, r))
            .collect()
    } else {
        // Slot vector indexed by run id: results are stored by identity,
        // never by completion order, so thread scheduling cannot leak
        // into the output.
        let slots: Vec<Mutex<Option<RunOutcome>>> =
            (0..runs).map(|_| Mutex::new(None)).collect();
        let next_run = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = next_run.fetch_add(1, Ordering::Relaxed);
                    if r >= runs {
                        break;
                    }
                    let outcome = execute_run(partitioner, graph, balance, base_seed, r);
                    *slots[r].lock().expect("run slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("run slot poisoned")
                    .expect("every run index was claimed by a worker")
            })
            .collect()
    };

    // Winner: lowest cut, earliest run index on ties — exactly the
    // sequential loop's strict-improvement rule.
    let mut total_passes = 0;
    let mut run_cuts = Vec::with_capacity(runs);
    let mut best_index = 0;
    for (r, outcome) in outcomes.iter().enumerate() {
        total_passes += outcome.passes;
        run_cuts.push(outcome.cut);
        if outcome.cut < outcomes[best_index].cut {
            best_index = r;
        }
    }
    let best = outcomes
        .into_iter()
        .nth(best_index)
        .expect("best_index is in range");
    Ok(RunResult {
        partition: best.partition,
        cut_cost: best.cut,
        total_passes,
        run_cuts,
    })
}

/// The shared implementation behind [`Partitioner::run_multi_cancellable`].
///
/// Workers poll the token before claiming each run, and each run executes
/// with the token installed in the thread-local [`cancel`] slot so the
/// engine's pass loop can stop at a pass boundary. Because claims go
/// through one atomic counter, the set of started runs is always the
/// prefix `0..started`, and every started run parks an outcome in its
/// slot — so `run_cuts` is a prefix of the sequential trajectory.
///
/// With a token that never trips this is bit-identical to
/// [`run_multi_parallel`]: the polls change no control flow and each run
/// keeps its sequential seed and slot.
///
/// # Errors
///
/// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
/// [`PartitionError::InvalidConfig`] when `runs == 0`.
pub(crate) fn run_multi_cancellable<P: Partitioner + ?Sized>(
    partitioner: &P,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    base_seed: u64,
    policy: ParallelPolicy,
    token: &CancelToken,
) -> Result<MultiRunReport, PartitionError> {
    if graph.num_nodes() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if runs == 0 {
        return Err(PartitionError::InvalidConfig {
            message: "runs must be at least 1".into(),
        });
    }

    let workers = policy.worker_count(runs);
    let outcomes: Vec<RunOutcome> = if workers <= 1 {
        let mut outcomes = Vec::with_capacity(runs);
        for r in 0..runs {
            if token.is_cancelled() {
                break;
            }
            outcomes.push(cancel::scope(token, || {
                execute_run(partitioner, graph, balance, base_seed, r)
            }));
        }
        outcomes
    } else {
        let slots: Vec<Mutex<Option<RunOutcome>>> =
            (0..runs).map(|_| Mutex::new(None)).collect();
        let next_run = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if token.is_cancelled() {
                        break;
                    }
                    let r = next_run.fetch_add(1, Ordering::Relaxed);
                    if r >= runs {
                        break;
                    }
                    let outcome = cancel::scope(token, || {
                        execute_run(partitioner, graph, balance, base_seed, r)
                    });
                    *slots[r].lock().expect("run slot poisoned") = Some(outcome);
                });
            }
        });
        // Claims are a contiguous prefix (one atomic counter), and every
        // claimed run parks an outcome before its worker moves on.
        slots
            .into_iter()
            .map_while(|slot| slot.into_inner().expect("run slot poisoned"))
            .collect()
    };

    let started_runs = outcomes.len();
    let outcomes = if outcomes.is_empty() {
        // Tripped before any run began: fall back to run 0's seeded
        // initial partition so the report still carries a feasible
        // partition with an honestly recounted cut.
        let mut rng = StdRng::seed_from_u64(base_seed);
        let partition = Bipartition::random(graph.num_nodes(), &mut rng);
        let cut = CutState::new(graph, &partition).cut_cost();
        vec![RunOutcome {
            partition,
            cut,
            passes: 0,
        }]
    } else {
        outcomes
    };

    let mut total_passes = 0;
    let mut run_cuts = Vec::with_capacity(outcomes.len());
    let mut best_index = 0;
    for (r, outcome) in outcomes.iter().enumerate() {
        total_passes += outcome.passes;
        run_cuts.push(outcome.cut);
        if outcome.cut < outcomes[best_index].cut {
            best_index = r;
        }
    }
    let best = outcomes
        .into_iter()
        .nth(best_index)
        .expect("best_index is in range");
    Ok(MultiRunReport {
        result: RunResult {
            partition: best.partition,
            cut_cost: best.cut,
            total_passes,
            run_cuts,
        },
        status: if token.is_cancelled() {
            RunStatus::Cancelled
        } else {
            RunStatus::Completed
        },
        started_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Side;
    use crate::partitioner::ImproveStats;
    use prop_netlist::{Hypergraph, HypergraphBuilder};

    /// A do-nothing partitioner: improvement keeps the initial partition.
    struct Identity;

    impl Partitioner for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn improve(
            &self,
            graph: &Hypergraph,
            partition: &mut Bipartition,
            _balance: BalanceConstraint,
        ) -> ImproveStats {
            ImproveStats {
                passes: 1,
                cut_cost: CutState::new(graph, partition).cut_cost(),
            }
        }
    }

    fn graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..7 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn map_chunks_is_policy_independent() {
        let n = 1003;
        let expected: Vec<Vec<usize>> = map_chunks(ParallelPolicy::Sequential, n, 64, |c, r| {
            r.map(|i| i * 2 + c).collect()
        });
        for policy in [
            ParallelPolicy::Threads(1),
            ParallelPolicy::Threads(2),
            ParallelPolicy::Threads(4),
            ParallelPolicy::Auto,
        ] {
            let got: Vec<Vec<usize>> =
                map_chunks(policy, n, 64, |c, r| r.map(|i| i * 2 + c).collect());
            assert_eq!(got, expected, "{policy:?}");
        }
        // Every index is covered exactly once, in order.
        let flat: Vec<usize> = expected.into_iter().flatten().collect();
        assert_eq!(flat.len(), n);
        assert!(flat.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn map_chunks_handles_edge_sizes() {
        // Empty domain → no chunks.
        let empty: Vec<usize> = map_chunks(ParallelPolicy::Threads(4), 0, 8, |c, _| c);
        assert!(empty.is_empty());
        // chunk = 0 is treated as 1.
        let ones: Vec<usize> = map_chunks(ParallelPolicy::Threads(2), 3, 0, |_, r| r.len());
        assert_eq!(ones, vec![1, 1, 1]);
        // chunk larger than n → a single chunk.
        let one: Vec<usize> = map_chunks(ParallelPolicy::Threads(8), 5, 100, |_, r| r.len());
        assert_eq!(one, vec![5]);
    }

    #[test]
    fn map_chunks_with_reuses_worker_scratch() {
        // Scratch is per worker: sequentially, one scratch sees every
        // chunk. The per-chunk *result* must not depend on that reuse —
        // here it doesn't (the scratch is reset per chunk) — and the
        // parallel output matches.
        let seq: Vec<u64> = map_chunks_with(
            ParallelPolicy::Sequential,
            100,
            7,
            Vec::<u64>::new,
            |scratch, _, r| {
                scratch.clear();
                scratch.extend(r.map(|i| i as u64));
                scratch.iter().sum()
            },
        );
        let par: Vec<u64> = map_chunks_with(
            ParallelPolicy::Threads(3),
            100,
            7,
            Vec::<u64>::new,
            |scratch, _, r| {
                scratch.clear();
                scratch.extend(r.map(|i| i as u64));
                scratch.iter().sum()
            },
        );
        assert_eq!(seq, par);
        assert_eq!(seq.iter().sum::<u64>(), (0..100u64).sum());
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(ParallelPolicy::Sequential.worker_count(16), 1);
        assert_eq!(ParallelPolicy::Threads(4).worker_count(16), 4);
        assert_eq!(ParallelPolicy::Threads(0).worker_count(16), 1);
        // Never more workers than runs.
        assert_eq!(ParallelPolicy::Threads(64).worker_count(3), 3);
        assert!(ParallelPolicy::Auto.worker_count(1024) >= 1);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let sequential = Identity.run_multi(&g, balance, 12, 99).unwrap();
        for threads in [2, 3, 8, 32] {
            let parallel = Identity
                .run_multi_parallel(&g, balance, 12, 99, ParallelPolicy::Threads(threads))
                .unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        let auto = Identity
            .run_multi_parallel(&g, balance, 12, 99, ParallelPolicy::Auto)
            .unwrap();
        assert_eq!(sequential, auto);
    }

    #[test]
    fn budget_builder_roundtrip() {
        let budget = RunBudget::new(6).with_seed(42).with_threads(3);
        assert_eq!(budget.runs, 6);
        assert_eq!(budget.base_seed, 42);
        assert_eq!(budget.policy, ParallelPolicy::Threads(3));
        let auto = budget.with_policy(ParallelPolicy::Auto);
        assert_eq!(auto.policy, ParallelPolicy::Auto);

        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let via_budget = budget.execute(&Identity, &g, balance).unwrap();
        let direct = Identity.run_multi(&g, balance, 6, 42).unwrap();
        assert_eq!(via_budget, direct);
    }

    #[test]
    fn parallel_validates_inputs() {
        let empty = HypergraphBuilder::new(0).build().unwrap();
        let balance = BalanceConstraint::bisection(0);
        assert_eq!(
            Identity.run_multi_parallel(&empty, balance, 4, 0, ParallelPolicy::Auto),
            Err(PartitionError::EmptyGraph)
        );
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        assert!(matches!(
            Identity.run_multi_parallel(&g, balance, 0, 0, ParallelPolicy::Auto),
            Err(PartitionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn winner_ties_break_by_run_index() {
        // Identity keeps the seeded random partition, so equal-cut runs
        // are possible; the winner must be the earliest minimal run.
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let result = Identity
            .run_multi_parallel(&g, balance, 16, 5, ParallelPolicy::Threads(4))
            .unwrap();
        let min = result
            .run_cuts
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.cut_cost, min);
        let first_min = result.run_cuts.iter().position(|&c| c == min).unwrap();
        // Reconstruct the winning run's partition from its seed.
        let mut rng = StdRng::seed_from_u64(5u64.wrapping_add(first_min as u64));
        let expected = Bipartition::random(8, &mut rng);
        assert_eq!(result.partition, expected);
        assert_eq!(result.partition.count(Side::A), 4);
    }

    #[test]
    fn untripped_token_is_bit_identical() {
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let plain = Identity.run_multi(&g, balance, 12, 99).unwrap();
        for policy in [
            ParallelPolicy::Sequential,
            ParallelPolicy::Threads(3),
            ParallelPolicy::Auto,
        ] {
            let token = CancelToken::new();
            let report = Identity
                .run_multi_cancellable(&g, balance, 12, 99, policy, &token)
                .unwrap();
            assert_eq!(report.result, plain, "{policy:?}");
            assert_eq!(report.status, RunStatus::Completed);
            assert_eq!(report.started_runs, 12);
        }
    }

    #[test]
    fn pre_tripped_token_yields_seeded_initial_partition() {
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let token = CancelToken::new();
        token.cancel();
        for policy in [ParallelPolicy::Sequential, ParallelPolicy::Threads(4)] {
            let report = Identity
                .run_multi_cancellable(&g, balance, 6, 42, policy, &token)
                .unwrap();
            assert_eq!(report.status, RunStatus::Cancelled);
            assert_eq!(report.started_runs, 0);
            assert_eq!(report.result.run_cuts.len(), 1);
            assert_eq!(report.result.total_passes, 0);
            // Exactly run 0's seeded initial partition, honestly recounted.
            let mut rng = StdRng::seed_from_u64(42);
            let expected = Bipartition::random(8, &mut rng);
            assert_eq!(report.result.partition, expected);
            assert_eq!(
                report.result.cut_cost,
                CutState::new(&g, &expected).cut_cost()
            );
            assert!(report.result.partition.is_balanced(balance));
        }
    }

    #[test]
    fn cancellable_validates_inputs() {
        let token = CancelToken::new();
        let empty = HypergraphBuilder::new(0).build().unwrap();
        assert_eq!(
            Identity.run_multi_cancellable(
                &empty,
                BalanceConstraint::bisection(0),
                4,
                0,
                ParallelPolicy::Auto,
                &token
            ),
            Err(PartitionError::EmptyGraph)
        );
        let g = graph();
        assert!(matches!(
            Identity.run_multi_cancellable(
                &g,
                BalanceConstraint::bisection(8),
                0,
                0,
                ParallelPolicy::Auto,
                &token
            ),
            Err(PartitionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn budget_executes_cancellable() {
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let budget = RunBudget::new(5).with_seed(3).with_threads(2);
        let token = CancelToken::new();
        let report = budget
            .execute_cancellable(&Identity, &g, balance, &token)
            .unwrap();
        assert_eq!(report.result, budget.execute(&Identity, &g, balance).unwrap());
        assert_eq!(report.status, RunStatus::Completed);
    }

    #[test]
    fn trait_object_can_run_parallel() {
        let boxed: Box<dyn Partitioner> = Box::new(Identity);
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let result = boxed
            .run_multi_parallel(&g, balance, 4, 1, ParallelPolicy::Threads(2))
            .unwrap();
        assert_eq!(result.run_cuts.len(), 4);
    }
}
