//! Deterministic parallel execution of best-of-R multi-start runs.
//!
//! The paper's experimental protocol is *best of R independent runs*
//! (FM100, FM40/20, LA-2/LA-3, PROP(20) in Tables 2–4). The runs share no
//! state — run `r` is fully determined by its seed `base_seed + r` — so
//! they parallelise perfectly at the run level without touching the
//! partitioning algorithm itself.
//!
//! Determinism is preserved by construction:
//!
//! * every run keeps the exact seed it would get sequentially
//!   (`base_seed.wrapping_add(r)`);
//! * per-run results land in a slot vector indexed by run id, never in
//!   completion order;
//! * the winner is the lowest `(cut, run_index)` pair — the same strict
//!   "first run with the minimum cut" rule the sequential loop applies.
//!
//! Consequently [`Partitioner::run_multi_parallel`] returns results
//! bit-identical to [`Partitioner::run_multi`] for every thread count.

use crate::balance::BalanceConstraint;
use crate::cut::CutState;
use crate::error::PartitionError;
use crate::partition::Bipartition;
use crate::partitioner::{Partitioner, RunResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a multi-start invocation may use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParallelPolicy {
    /// One worker; runs execute in run-index order on the calling thread.
    #[default]
    Sequential,
    /// Exactly `n` workers (`0` is treated as `1`).
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl ParallelPolicy {
    /// The worker count this policy resolves to for `runs` runs: never 0,
    /// never more than `runs`.
    pub fn worker_count(self, runs: usize) -> usize {
        let raw = match self {
            ParallelPolicy::Sequential => 1,
            ParallelPolicy::Threads(n) => n.max(1),
            ParallelPolicy::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        raw.min(runs.max(1))
    }
}

/// A complete multi-start work order: how many runs, from which base
/// seed, over how many threads.
///
/// ```
/// use prop_core::{BalanceConstraint, Prop, RunBudget};
/// use prop_netlist::generate::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = generate(&GeneratorConfig::new(80, 90, 300).with_seed(5))?;
/// let balance = BalanceConstraint::bisection(graph.num_nodes());
/// let budget = RunBudget::new(4).with_seed(7).with_threads(2);
/// let best = budget.execute(&Prop::default(), &graph, balance)?;
/// assert_eq!(best.run_cuts.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RunBudget {
    /// Number of independent runs (best-of-R).
    pub runs: usize,
    /// Seed of run 0; run `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Worker-thread policy.
    pub policy: ParallelPolicy,
}

impl RunBudget {
    /// A sequential budget of `runs` runs from seed 0.
    pub fn new(runs: usize) -> Self {
        RunBudget {
            runs,
            base_seed: 0,
            policy: ParallelPolicy::Sequential,
        }
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(self, base_seed: u64) -> Self {
        RunBudget { base_seed, ..self }
    }

    /// Replaces the thread policy with an explicit worker count.
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        RunBudget {
            policy: ParallelPolicy::Threads(threads),
            ..self
        }
    }

    /// Replaces the thread policy.
    #[must_use]
    pub fn with_policy(self, policy: ParallelPolicy) -> Self {
        RunBudget { policy, ..self }
    }

    /// Runs the budget with `partitioner`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
    /// [`PartitionError::InvalidConfig`] when `runs == 0`.
    pub fn execute<P: Partitioner + ?Sized>(
        &self,
        partitioner: &P,
        graph: &prop_netlist::Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        run_multi_parallel(
            partitioner,
            graph,
            balance,
            self.runs,
            self.base_seed,
            self.policy,
        )
    }
}

/// One finished run, parked in its slot until every run completes.
struct RunOutcome {
    partition: Bipartition,
    cut: f64,
    passes: usize,
}

fn execute_run<P: Partitioner + ?Sized>(
    partitioner: &P,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    base_seed: u64,
    run_index: usize,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(run_index as u64));
    let mut partition = Bipartition::random(graph.num_nodes(), &mut rng);
    let stats = partitioner.improve(graph, &mut partition, balance);
    // Re-derive the cost from scratch so multi-run comparison never
    // trusts incremental bookkeeping.
    let cut = CutState::new(graph, &partition).cut_cost();
    RunOutcome {
        partition,
        cut,
        passes: stats.passes,
    }
}

/// The shared implementation behind [`Partitioner::run_multi`] and
/// [`Partitioner::run_multi_parallel`].
///
/// # Errors
///
/// Returns [`PartitionError::EmptyGraph`] for a node-less graph and
/// [`PartitionError::InvalidConfig`] when `runs == 0`.
pub(crate) fn run_multi_parallel<P: Partitioner + ?Sized>(
    partitioner: &P,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    base_seed: u64,
    policy: ParallelPolicy,
) -> Result<RunResult, PartitionError> {
    if graph.num_nodes() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    if runs == 0 {
        return Err(PartitionError::InvalidConfig {
            message: "runs must be at least 1".into(),
        });
    }

    let workers = policy.worker_count(runs);
    let outcomes: Vec<RunOutcome> = if workers <= 1 {
        (0..runs)
            .map(|r| execute_run(partitioner, graph, balance, base_seed, r))
            .collect()
    } else {
        // Slot vector indexed by run id: results are stored by identity,
        // never by completion order, so thread scheduling cannot leak
        // into the output.
        let slots: Vec<Mutex<Option<RunOutcome>>> =
            (0..runs).map(|_| Mutex::new(None)).collect();
        let next_run = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = next_run.fetch_add(1, Ordering::Relaxed);
                    if r >= runs {
                        break;
                    }
                    let outcome = execute_run(partitioner, graph, balance, base_seed, r);
                    *slots[r].lock().expect("run slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("run slot poisoned")
                    .expect("every run index was claimed by a worker")
            })
            .collect()
    };

    // Winner: lowest cut, earliest run index on ties — exactly the
    // sequential loop's strict-improvement rule.
    let mut total_passes = 0;
    let mut run_cuts = Vec::with_capacity(runs);
    let mut best_index = 0;
    for (r, outcome) in outcomes.iter().enumerate() {
        total_passes += outcome.passes;
        run_cuts.push(outcome.cut);
        if outcome.cut < outcomes[best_index].cut {
            best_index = r;
        }
    }
    let best = outcomes
        .into_iter()
        .nth(best_index)
        .expect("best_index is in range");
    Ok(RunResult {
        partition: best.partition,
        cut_cost: best.cut,
        total_passes,
        run_cuts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Side;
    use crate::partitioner::ImproveStats;
    use prop_netlist::{Hypergraph, HypergraphBuilder};

    /// A do-nothing partitioner: improvement keeps the initial partition.
    struct Identity;

    impl Partitioner for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn improve(
            &self,
            graph: &Hypergraph,
            partition: &mut Bipartition,
            _balance: BalanceConstraint,
        ) -> ImproveStats {
            ImproveStats {
                passes: 1,
                cut_cost: CutState::new(graph, partition).cut_cost(),
            }
        }
    }

    fn graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new(8);
        for i in 0..7 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(ParallelPolicy::Sequential.worker_count(16), 1);
        assert_eq!(ParallelPolicy::Threads(4).worker_count(16), 4);
        assert_eq!(ParallelPolicy::Threads(0).worker_count(16), 1);
        // Never more workers than runs.
        assert_eq!(ParallelPolicy::Threads(64).worker_count(3), 3);
        assert!(ParallelPolicy::Auto.worker_count(1024) >= 1);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let sequential = Identity.run_multi(&g, balance, 12, 99).unwrap();
        for threads in [2, 3, 8, 32] {
            let parallel = Identity
                .run_multi_parallel(&g, balance, 12, 99, ParallelPolicy::Threads(threads))
                .unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        let auto = Identity
            .run_multi_parallel(&g, balance, 12, 99, ParallelPolicy::Auto)
            .unwrap();
        assert_eq!(sequential, auto);
    }

    #[test]
    fn budget_builder_roundtrip() {
        let budget = RunBudget::new(6).with_seed(42).with_threads(3);
        assert_eq!(budget.runs, 6);
        assert_eq!(budget.base_seed, 42);
        assert_eq!(budget.policy, ParallelPolicy::Threads(3));
        let auto = budget.with_policy(ParallelPolicy::Auto);
        assert_eq!(auto.policy, ParallelPolicy::Auto);

        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let via_budget = budget.execute(&Identity, &g, balance).unwrap();
        let direct = Identity.run_multi(&g, balance, 6, 42).unwrap();
        assert_eq!(via_budget, direct);
    }

    #[test]
    fn parallel_validates_inputs() {
        let empty = HypergraphBuilder::new(0).build().unwrap();
        let balance = BalanceConstraint::bisection(0);
        assert_eq!(
            Identity.run_multi_parallel(&empty, balance, 4, 0, ParallelPolicy::Auto),
            Err(PartitionError::EmptyGraph)
        );
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        assert!(matches!(
            Identity.run_multi_parallel(&g, balance, 0, 0, ParallelPolicy::Auto),
            Err(PartitionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn winner_ties_break_by_run_index() {
        // Identity keeps the seeded random partition, so equal-cut runs
        // are possible; the winner must be the earliest minimal run.
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let result = Identity
            .run_multi_parallel(&g, balance, 16, 5, ParallelPolicy::Threads(4))
            .unwrap();
        let min = result
            .run_cuts
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.cut_cost, min);
        let first_min = result.run_cuts.iter().position(|&c| c == min).unwrap();
        // Reconstruct the winning run's partition from its seed.
        let mut rng = StdRng::seed_from_u64(5u64.wrapping_add(first_min as u64));
        let expected = Bipartition::random(8, &mut rng);
        assert_eq!(result.partition, expected);
        assert_eq!(result.partition.count(Side::A), 4);
    }

    #[test]
    fn trait_object_can_run_parallel() {
        let boxed: Box<dyn Partitioner> = Box::new(Identity);
        let g = graph();
        let balance = BalanceConstraint::bisection(8);
        let result = boxed
            .run_multi_parallel(&g, balance, 4, 1, ParallelPolicy::Threads(2))
            .unwrap();
        assert_eq!(result.run_cuts.len(), 4);
    }
}
