//! Engine auditing hook points.
//!
//! Iterative-improvement engines maintain aggressively incremental state —
//! per-net probability products, delta-updated gain containers, running
//! side weights, incremental cut costs. Every optimisation of those hot
//! paths risks silently drifting from the paper's Eqns. 2–6 semantics.
//! This module defines the *hook side* of the verification subsystem: an
//! [`Auditor`] trait with per-move, per-refinement, and per-pass
//! observation points, and a thread-local installation slot the engines
//! report into.
//!
//! The reference oracles that *check* these records against from-scratch
//! recomputation live in the `prop-verify` crate, which depends on this
//! one; only the trait and its record types live here so that the engines
//! can emit records without a dependency cycle.
//!
//! # Cost model
//!
//! All emission sites are compiled out unless the `debug-audit` cargo
//! feature is enabled, so release hot paths are untouched. With the
//! feature enabled but no auditor installed, each site costs one
//! thread-local `Option` check. Auditors are installed per thread
//! ([`install`]); worker threads spawned by the parallel multi-start
//! harness therefore run unaudited unless they install their own.

use crate::balance::BalanceConstraint;
use crate::cut::CutState;
use crate::partition::Bipartition;
use prop_netlist::{Hypergraph, NodeId};

/// State snapshot at the start of a pass, before any probability seeding
/// or tentative move.
pub struct PassBegin<'a> {
    /// Engine display name (`"PROP"`, `"FM-bucket"`, `"FM-tree"`, …).
    pub engine: &'static str,
    /// The hypergraph being partitioned.
    pub graph: &'a Hypergraph,
    /// The partition entering the pass.
    pub partition: &'a Bipartition,
    /// The engine's incremental cut state entering the pass.
    pub cut: &'a CutState,
    /// The balance constraint of the run.
    pub balance: BalanceConstraint,
}

/// State snapshot after the gain/probability refinement fixed point
/// (steps 3–4 of Fig. 2), before the move phase. PROP only.
pub struct RefinementRecord<'a> {
    /// Engine display name.
    pub engine: &'static str,
    /// The hypergraph being partitioned.
    pub graph: &'a Hypergraph,
    /// The current partition.
    pub partition: &'a Bipartition,
    /// The engine's incremental cut state.
    pub cut: &'a CutState,
    /// Per-node move probabilities after refinement.
    pub probabilities: &'a [f64],
    /// Per-node probabilistic gains after refinement. Every entry is
    /// expected to match a from-scratch Eqn. 3–4 evaluation.
    pub gains: &'a [f64],
    /// Per-node lock flags (all `false` at this point of a pass).
    pub locked: &'a [bool],
}

/// Borrowed view of an engine's per-net incremental hot state: for each
/// net, the packed [`NetHot`] record with both sides' unlocked-pin stay
/// probability products, pin counts, and locked-pin counts (the halves of
/// the Eqn. 2 bookkeeping plus the Eqn. 3–4 cut-ness counts).
///
/// [`NetHot`]: crate::prop::NetHot
pub type NetProductsView<'a> = &'a [crate::prop::NetHot];

/// State snapshot after one committed tentative move (steps 7–8).
pub struct MoveRecord<'a> {
    /// Engine display name.
    pub engine: &'static str,
    /// The hypergraph being partitioned.
    pub graph: &'a Hypergraph,
    /// The partition *after* the move.
    pub partition: &'a Bipartition,
    /// The engine's incremental cut state after the move.
    pub cut: &'a CutState,
    /// The balance constraint of the run.
    pub balance: BalanceConstraint,
    /// The node that moved (now locked).
    pub moved: NodeId,
    /// The exact immediate cut gain the engine recorded for the move.
    pub immediate_gain: f64,
    /// The engine's current per-node gain table.
    pub gains: &'a [f64],
    /// Per-node lock flags after the move.
    pub locked: &'a [bool],
    /// Per-node move probabilities (PROP only).
    pub probabilities: Option<&'a [f64]>,
    /// Per net and side, the engine's unlocked-probability products and
    /// locked pin counts (PROP only). Unlike the gain table, these must
    /// always agree with a from-scratch rebuild from [`probabilities`]:
    /// the moved node's nets are recomputed exactly and probability
    /// refreshes use a drift-free ratio update.
    ///
    /// [`probabilities`]: MoveRecord::probabilities
    pub products: Option<NetProductsView<'a>>,
    /// Freshness marks: `Some((marks, epoch))` means unlocked nodes with
    /// `marks[v] == epoch` were refreshed during this move's §3.4
    /// neighbor + top-k sweep; `None` means every unlocked entry of
    /// [`gains`] is maintained exactly (FM's delta rules). Note that the
    /// sweep is sequential, so a node refreshed early may be stale again
    /// with respect to the *end-of-move* probabilities — per-move gain
    /// exactness is an FM invariant, not a PROP one.
    ///
    /// [`gains`]: MoveRecord::gains
    pub fresh: Option<(&'a [u32], u32)>,
    /// The engine's running per-side node weights after the move.
    pub side_weights: [f64; 2],
}

/// State snapshot after the best-prefix commit and rollback (steps 9–10).
pub struct PassRecord<'a> {
    /// Engine display name.
    pub engine: &'static str,
    /// The hypergraph being partitioned.
    pub graph: &'a Hypergraph,
    /// The partition after rollback to the committed prefix.
    pub partition: &'a Bipartition,
    /// The engine's incremental cut state after rollback.
    pub cut: &'a CutState,
    /// The balance constraint of the run.
    pub balance: BalanceConstraint,
    /// Every tentatively moved node, in move order.
    pub moves: &'a [NodeId],
    /// The exact immediate gain of each tentative move.
    pub immediate_gains: &'a [f64],
    /// Whether the partition was balance-feasible after each move.
    pub feasible: &'a [bool],
    /// Length of the committed prefix (0 when fully rolled back).
    pub committed_moves: usize,
    /// Total gain of the committed prefix.
    pub committed_gain: f64,
}

/// Observer of engine execution, called at the pass hook points.
///
/// All methods default to no-ops so auditors implement only the hooks
/// they care about. Implementations that check invariants should panic
/// with a descriptive message on violation — an audit failure is a bug in
/// the engine, never a recoverable condition.
pub trait Auditor {
    /// Called at the start of every pass.
    fn begin_pass(&mut self, record: &PassBegin<'_>) {
        let _ = record;
    }

    /// Called after the probability refinement fixed point (PROP only).
    fn after_refinement(&mut self, record: &RefinementRecord<'_>) {
        let _ = record;
    }

    /// Called after every committed tentative move.
    fn after_move(&mut self, record: &MoveRecord<'_>) {
        let _ = record;
    }

    /// Called after the best-prefix commit and rollback of every pass.
    fn after_pass(&mut self, record: &PassRecord<'_>) {
        let _ = record;
    }
}

#[cfg(feature = "debug-audit")]
mod slot {
    use super::Auditor;
    use std::cell::RefCell;

    thread_local! {
        static AUDITOR: RefCell<Option<Box<dyn Auditor>>> = const { RefCell::new(None) };
    }

    /// Installs `auditor` on the current thread, returning the previously
    /// installed auditor, if any. Engines on this thread report into it
    /// until [`uninstall`].
    pub fn install(auditor: Box<dyn Auditor>) -> Option<Box<dyn Auditor>> {
        AUDITOR.with(|slot| slot.borrow_mut().replace(auditor))
    }

    /// Removes and returns the current thread's auditor.
    pub fn uninstall() -> Option<Box<dyn Auditor>> {
        AUDITOR.with(|slot| slot.borrow_mut().take())
    }

    /// Whether an auditor is installed on the current thread.
    pub fn is_active() -> bool {
        AUDITOR.with(|slot| slot.borrow().is_some())
    }

    /// Runs `f` against the installed auditor, if any. Used by the engine
    /// emission sites; the record is only constructed when an auditor is
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if called reentrantly — an auditor callback must not run an
    /// audited engine on the same thread.
    pub fn with_auditor<F: FnOnce(&mut dyn Auditor)>(f: F) {
        AUDITOR.with(|slot| {
            let mut guard = slot
                .try_borrow_mut()
                .expect("auditor callback re-entered an audited engine");
            if let Some(auditor) = guard.as_mut() {
                f(&mut **auditor);
            }
        });
    }
}

#[cfg(feature = "debug-audit")]
pub use slot::{install, is_active, uninstall, with_auditor};

/// An [`install`] guard: uninstalls the auditor when dropped, restoring
/// the previously installed one. Keeps audited test scopes exception-safe.
#[cfg(feature = "debug-audit")]
pub struct AuditScope {
    previous: Option<Box<dyn Auditor>>,
}

#[cfg(feature = "debug-audit")]
impl AuditScope {
    /// Installs `auditor` for the lifetime of the returned guard.
    pub fn new(auditor: Box<dyn Auditor>) -> Self {
        AuditScope {
            previous: install(auditor),
        }
    }
}

#[cfg(feature = "debug-audit")]
impl Drop for AuditScope {
    fn drop(&mut self) {
        match self.previous.take() {
            Some(previous) => {
                let _ = install(previous);
            }
            None => {
                let _ = uninstall();
            }
        }
    }
}

#[cfg(all(test, feature = "debug-audit"))]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    struct Counter(Rc<Cell<usize>>);

    impl Auditor for Counter {
        fn begin_pass(&mut self, _: &PassBegin<'_>) {
            self.0.set(self.0.get() + 1);
        }
    }

    #[test]
    fn install_uninstall_roundtrip() {
        assert!(!is_active());
        let hits = Rc::new(Cell::new(0));
        let old = install(Box::new(Counter(hits.clone())));
        assert!(old.is_none());
        assert!(is_active());
        with_auditor(|a| {
            let g = prop_netlist::HypergraphBuilder::new(2).build().unwrap();
            let p = crate::partition::Bipartition::from_sides(vec![
                crate::partition::Side::A,
                crate::partition::Side::B,
            ]);
            let cut = CutState::new(&g, &p);
            a.begin_pass(&PassBegin {
                engine: "test",
                graph: &g,
                partition: &p,
                cut: &cut,
                balance: BalanceConstraint::bisection(2),
            });
        });
        assert_eq!(hits.get(), 1);
        assert!(uninstall().is_some());
        assert!(!is_active());
    }

    #[test]
    fn scope_restores_previous() {
        let outer_hits = Rc::new(Cell::new(0));
        let _outer = AuditScope::new(Box::new(Counter(outer_hits.clone())));
        {
            let inner_hits = Rc::new(Cell::new(0));
            let _inner = AuditScope::new(Box::new(Counter(inner_hits.clone())));
            assert!(is_active());
        }
        // The outer auditor is back.
        assert!(is_active());
        drop(_outer);
        assert!(!is_active());
    }
}
