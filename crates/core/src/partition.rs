//! Two-way partition assignment.

use crate::balance::BalanceConstraint;
use prop_netlist::NodeId;
use rand::Rng;

/// One of the two sides of a bipartition (the paper's `V1` and `V2`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Side {
    /// The first subset, `V1`.
    A,
    /// The second subset, `V2`.
    B,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }

    /// Dense index (`A` → 0, `B` → 1) for array-indexed per-side state.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }

    /// Inverse of [`Side::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[inline]
    pub fn from_index(index: usize) -> Side {
        match index {
            0 => Side::A,
            1 => Side::B,
            _ => panic!("side index {index} out of range"),
        }
    }
}

/// An assignment of every node to one of two sides, with side counts
/// maintained incrementally.
///
/// ```
/// use prop_core::{Bipartition, Side};
/// use prop_netlist::NodeId;
///
/// let mut p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B]);
/// assert_eq!(p.count(Side::A), 2);
/// p.flip(NodeId::new(0));
/// assert_eq!(p.count(Side::A), 1);
/// assert_eq!(p.side(NodeId::new(0)), Side::B);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bipartition {
    side: Vec<Side>,
    count: [usize; 2],
}

impl Bipartition {
    /// Builds a partition from an explicit side vector.
    pub fn from_sides(side: Vec<Side>) -> Self {
        let a = side.iter().filter(|&&s| s == Side::A).count();
        let count = [a, side.len() - a];
        Bipartition { side, count }
    }

    /// Builds a uniformly random near-equal bisection of `n` nodes: a
    /// random subset of `ceil(n/2)` nodes goes to side A. This is the
    /// "random initial partition" every iterative improver in the paper
    /// starts from.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut ids: Vec<usize> = (0..n).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let half = n.div_ceil(2);
        let mut side = vec![Side::B; n];
        for &v in &ids[..half] {
            side[v] = Side::A;
        }
        Bipartition {
            side,
            count: [half, n - half],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.side.len()
    }

    /// Returns `true` for the empty partition.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.side.is_empty()
    }

    /// The side of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn side(&self, node: NodeId) -> Side {
        self.side[node.index()]
    }

    /// Number of nodes on `side`.
    #[inline]
    pub fn count(&self, side: Side) -> usize {
        self.count[side.index()]
    }

    /// Moves `node` to the other side, returning its new side.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn flip(&mut self, node: NodeId) -> Side {
        let old = self.side[node.index()];
        let new = old.other();
        self.side[node.index()] = new;
        self.count[old.index()] -= 1;
        self.count[new.index()] += 1;
        new
    }

    /// Whether the partition satisfies the strict balance constraint.
    pub fn is_balanced(&self, balance: BalanceConstraint) -> bool {
        balance.is_feasible_counts(self.count[0], self.count[1])
    }

    /// The sides as a slice, node-indexed.
    pub fn sides(&self) -> &[Side] {
        &self.side
    }

    /// Nodes on the given side, in index order.
    pub fn nodes_on(&self, side: Side) -> impl Iterator<Item = NodeId> + '_ {
        self.side
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s == side)
            .map(|(i, _)| NodeId::new(i))
    }
}

/// Running totals of node weight per side, maintained alongside a
/// [`Bipartition`] by the partitioning engines for size-constrained
/// balance (§1's "size constraints" remark).
///
/// ```
/// use prop_core::{Bipartition, Side, SideWeights};
/// use prop_netlist::HypergraphBuilder;
///
/// # fn main() -> Result<(), prop_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new(2);
/// b.add_net(1.0, [0, 1])?;
/// b.set_node_weights(vec![3.0, 1.0])?;
/// let g = b.build()?;
/// let p = Bipartition::from_sides(vec![Side::A, Side::B]);
/// let mut w = SideWeights::new(&g, &p);
/// assert_eq!(w.get(Side::A), 3.0);
/// w.apply_move(Side::A, 3.0); // node 0 moves A -> B
/// assert_eq!(w.get(Side::B), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SideWeights {
    w: [f64; 2],
}

impl SideWeights {
    /// Computes the per-side weights of `partition` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the partition and graph disagree on the node count.
    pub fn new(graph: &prop_netlist::Hypergraph, partition: &Bipartition) -> Self {
        assert_eq!(
            graph.num_nodes(),
            partition.len(),
            "partition/graph node count mismatch"
        );
        let mut w = [0.0; 2];
        for v in graph.nodes() {
            w[partition.side(v).index()] += graph.node_weight(v);
        }
        SideWeights { w }
    }

    /// Weight currently on `side`.
    #[inline]
    pub fn get(&self, side: Side) -> f64 {
        self.w[side.index()]
    }

    /// Both weights, `[A, B]`.
    #[inline]
    pub fn as_array(&self) -> [f64; 2] {
        self.w
    }

    /// Records a move of one node of the given weight from `from` to the
    /// other side.
    #[inline]
    pub fn apply_move(&mut self, from: Side, weight: f64) {
        self.w[from.index()] -= weight;
        self.w[from.other().index()] += weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_sides_counts() {
        let p = Bipartition::from_sides(vec![Side::A, Side::B, Side::B]);
        assert_eq!(p.count(Side::A), 1);
        assert_eq!(p.count(Side::B), 2);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn flip_roundtrip() {
        let mut p = Bipartition::from_sides(vec![Side::A, Side::B]);
        assert_eq!(p.flip(NodeId::new(0)), Side::B);
        assert_eq!(p.count(Side::B), 2);
        assert_eq!(p.flip(NodeId::new(0)), Side::A);
        assert_eq!(p, Bipartition::from_sides(vec![Side::A, Side::B]));
    }

    #[test]
    fn random_is_near_equal() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [0usize, 1, 2, 7, 100, 101] {
            let p = Bipartition::random(n, &mut rng);
            assert_eq!(p.len(), n);
            assert_eq!(p.count(Side::A), n.div_ceil(2));
            assert_eq!(p.count(Side::B), n / 2);
        }
    }

    #[test]
    fn random_is_seeded() {
        let a = Bipartition::random(50, &mut StdRng::seed_from_u64(1));
        let b = Bipartition::random(50, &mut StdRng::seed_from_u64(1));
        let c = Bipartition::random(50, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nodes_on_lists_members() {
        let p = Bipartition::from_sides(vec![Side::A, Side::B, Side::A]);
        let a: Vec<usize> = p.nodes_on(Side::A).map(NodeId::index).collect();
        assert_eq!(a, vec![0, 2]);
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::A.other(), Side::B);
        assert_eq!(Side::B.other(), Side::A);
        assert_eq!(Side::from_index(Side::A.index()), Side::A);
        assert_eq!(Side::from_index(1), Side::B);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_side_index_panics() {
        let _ = Side::from_index(2);
    }

    #[test]
    fn balanced_check() {
        let b = BalanceConstraint::bisection(4);
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        assert!(p.is_balanced(b));
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::A, Side::B]);
        assert!(!p.is_balanced(b));
    }
}
