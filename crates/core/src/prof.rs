//! Per-phase timing and work counters for the PROP hot path.
//!
//! Compiled to no-ops unless the `prof` feature is on, so the engine can
//! be instrumented at every phase boundary without perturbing release
//! measurements: with the feature off every call is an empty
//! `#[inline(always)]` function over a zero-sized [`Tick`], and the
//! optimizer erases the call sites entirely.
//!
//! With the feature on, counters are **thread-local** — each worker of a
//! parallel multi-start accumulates its own snapshot, so profiled
//! benchmarking should run single-threaded to see the whole picture
//! (`bench_snapshot --profile` enforces this).

/// A hot-path phase of the PROP pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Probability seeding plus the first full product/gain sweep.
    Seed,
    /// The dirty-net gain/probability refinement iterations.
    Refine,
    /// Move selection (ordered-store queries and feasibility probes).
    Select,
    /// Applying a move: cut/partition/lock updates and per-net recomputes.
    Apply,
    /// Post-move neighbor and top-k gain/probability refreshes.
    Refresh,
    /// Multilevel: heavy-edge matching + coarse circuit construction.
    MlCoarsen,
    /// Multilevel: greedy starts + improvement at the coarsest level.
    MlInitial,
    /// Multilevel: projecting a partition one level finer.
    MlProject,
    /// Multilevel: per-level refinement during uncoarsening. Overlaps the
    /// inner engine's own phase counters (a PROP refinement charges both
    /// `ml_refine_ns` and its Seed/Refine/Select/Apply/Refresh split).
    MlRefine,
}

/// Accumulated per-thread profile since the last [`reset`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProfSnapshot {
    /// Nanoseconds in [`Phase::Seed`].
    pub seed_ns: u64,
    /// Nanoseconds in [`Phase::Refine`].
    pub refine_ns: u64,
    /// Nanoseconds in [`Phase::Select`].
    pub select_ns: u64,
    /// Nanoseconds in [`Phase::Apply`].
    pub apply_ns: u64,
    /// Nanoseconds in [`Phase::Refresh`].
    pub refresh_ns: u64,
    /// Tentative moves applied.
    pub moves: u64,
    /// Exact per-net recomputations ([`NetHot`] rebuilds).
    ///
    /// [`NetHot`]: crate::prop::NetHot
    pub net_recomputes: u64,
    /// Gain evaluations (Eqns. 3–4 walks).
    pub gain_recomputes: u64,
    /// Nanoseconds in [`Phase::MlCoarsen`].
    pub ml_coarsen_ns: u64,
    /// Nanoseconds in [`Phase::MlInitial`].
    pub ml_initial_ns: u64,
    /// Nanoseconds in [`Phase::MlProject`].
    pub ml_project_ns: u64,
    /// Nanoseconds in [`Phase::MlRefine`]. Overlaps the PROP phase
    /// counters when the inner refiner is PROP, so it is **not** part of
    /// [`total_ns`](ProfSnapshot::total_ns).
    pub ml_refine_ns: u64,
    /// Coarsening levels built by multilevel V-cycles.
    pub ml_levels: u64,
    /// Synchronous refinement rounds executed (intra-parallel V-cycle).
    pub sync_rounds: u64,
    /// Candidate moves collected across synchronous rounds.
    pub sync_candidates: u64,
    /// Moves committed (best-prefix lengths summed) across synchronous
    /// rounds; `sync_candidates - sync_committed` is the rolled-back or
    /// balance-skipped tail, the first thing to inspect when an
    /// intra-parallel run stops converging.
    pub sync_committed: u64,
    /// Propose/resolve rounds executed by parallel matching coarsening.
    pub match_rounds: u64,
    /// Corridors grown by the flow refinement pass (one per attempted
    /// min-cut round).
    pub flow_corridors: u64,
    /// Augmenting paths pushed by the Dinic max-flow kernel.
    pub flow_augments: u64,
    /// Flow-induced bipartitions accepted (feasible and strictly better
    /// than the oracle-recounted incoming cut).
    pub flow_accepted: u64,
}

impl ProfSnapshot {
    /// Total instrumented nanoseconds across the engine hot-path phases.
    /// The `ml_*` overlay counters are excluded: `ml_refine_ns` brackets
    /// inner-engine work that already charges these phases.
    pub fn total_ns(&self) -> u64 {
        self.seed_ns + self.refine_ns + self.select_ns + self.apply_ns + self.refresh_ns
    }

    /// Total nanoseconds of the multilevel overlay phases.
    pub fn ml_total_ns(&self) -> u64 {
        self.ml_coarsen_ns + self.ml_initial_ns + self.ml_project_ns + self.ml_refine_ns
    }
}

/// `true` when the `prof` feature is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "prof")
}

#[cfg(feature = "prof")]
mod imp {
    use super::{Phase, ProfSnapshot};
    use std::cell::RefCell;
    use std::time::Instant;

    thread_local! {
        static PROF: RefCell<ProfSnapshot> = RefCell::new(ProfSnapshot::default());
    }

    /// An opaque phase-start timestamp.
    #[derive(Clone, Copy, Debug)]
    pub struct Tick(Instant);

    /// Starts timing a phase section.
    #[must_use]
    pub fn start() -> Tick {
        Tick(Instant::now())
    }

    /// Charges the time since `tick` to `phase`.
    pub fn stop(phase: Phase, tick: Tick) {
        let ns = tick.0.elapsed().as_nanos() as u64;
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            match phase {
                Phase::Seed => p.seed_ns += ns,
                Phase::Refine => p.refine_ns += ns,
                Phase::Select => p.select_ns += ns,
                Phase::Apply => p.apply_ns += ns,
                Phase::Refresh => p.refresh_ns += ns,
                Phase::MlCoarsen => p.ml_coarsen_ns += ns,
                Phase::MlInitial => p.ml_initial_ns += ns,
                Phase::MlProject => p.ml_project_ns += ns,
                Phase::MlRefine => p.ml_refine_ns += ns,
            }
        });
    }

    /// Counts one applied tentative move.
    pub fn count_move() {
        PROF.with(|p| p.borrow_mut().moves += 1);
    }

    /// Counts one coarsening level of a multilevel V-cycle.
    pub fn count_ml_level() {
        PROF.with(|p| p.borrow_mut().ml_levels += 1);
    }

    /// Counts one exact per-net recomputation.
    pub fn count_net_recompute() {
        PROF.with(|p| p.borrow_mut().net_recomputes += 1);
    }

    /// Counts one synchronous refinement round: how many candidates it
    /// collected and how many moves its best prefix committed.
    pub fn count_sync_round(candidates: u64, committed: u64) {
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            p.sync_rounds += 1;
            p.sync_candidates += candidates;
            p.sync_committed += committed;
        });
    }

    /// Counts one propose/resolve round of parallel matching.
    pub fn count_match_round() {
        PROF.with(|p| p.borrow_mut().match_rounds += 1);
    }

    /// Counts one flow-refinement corridor: how many augmenting paths its
    /// max-flow round pushed and whether the induced cut was accepted.
    pub fn count_flow_round(augments: u64, accepted: bool) {
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            p.flow_corridors += 1;
            p.flow_augments += augments;
            p.flow_accepted += u64::from(accepted);
        });
    }

    /// Counts one gain evaluation.
    pub fn count_gain_recompute() {
        PROF.with(|p| p.borrow_mut().gain_recomputes += 1);
    }

    /// Zeroes this thread's counters.
    pub fn reset() {
        PROF.with(|p| *p.borrow_mut() = ProfSnapshot::default());
    }

    /// This thread's accumulated counters.
    pub fn snapshot() -> ProfSnapshot {
        PROF.with(|p| *p.borrow())
    }
}

#[cfg(not(feature = "prof"))]
mod imp {
    use super::{Phase, ProfSnapshot};

    /// An opaque phase-start timestamp (zero-sized with `prof` off).
    #[derive(Clone, Copy, Debug)]
    pub struct Tick;

    /// Starts timing a phase section (no-op).
    #[inline(always)]
    #[must_use]
    pub fn start() -> Tick {
        Tick
    }

    /// Charges the time since `tick` to `phase` (no-op).
    #[inline(always)]
    pub fn stop(_phase: Phase, _tick: Tick) {}

    /// Counts one applied tentative move (no-op).
    #[inline(always)]
    pub fn count_move() {}

    /// Counts one coarsening level of a multilevel V-cycle (no-op).
    #[inline(always)]
    pub fn count_ml_level() {}

    /// Counts one exact per-net recomputation (no-op).
    #[inline(always)]
    pub fn count_net_recompute() {}

    /// Counts one synchronous refinement round (no-op).
    #[inline(always)]
    pub fn count_sync_round(_candidates: u64, _committed: u64) {}

    /// Counts one propose/resolve round of parallel matching (no-op).
    #[inline(always)]
    pub fn count_match_round() {}

    /// Counts one flow-refinement corridor (no-op).
    #[inline(always)]
    pub fn count_flow_round(_augments: u64, _accepted: bool) {}

    /// Counts one gain evaluation (no-op).
    #[inline(always)]
    pub fn count_gain_recompute() {}

    /// Zeroes this thread's counters (no-op).
    #[inline(always)]
    pub fn reset() {}

    /// This thread's accumulated counters (always zero with `prof` off).
    #[inline(always)]
    pub fn snapshot() -> ProfSnapshot {
        ProfSnapshot::default()
    }
}

pub use imp::{
    count_flow_round, count_gain_recompute, count_match_round, count_ml_level, count_move,
    count_net_recompute, count_sync_round, reset, snapshot, start, stop, Tick,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_total_sums_phases() {
        let s = ProfSnapshot {
            seed_ns: 1,
            refine_ns: 2,
            select_ns: 3,
            apply_ns: 4,
            refresh_ns: 5,
            ..ProfSnapshot::default()
        };
        assert_eq!(s.total_ns(), 15);
    }

    #[cfg(feature = "prof")]
    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        count_move();
        count_move();
        count_net_recompute();
        count_gain_recompute();
        count_sync_round(10, 4);
        count_sync_round(6, 6);
        count_match_round();
        count_flow_round(5, true);
        count_flow_round(3, false);
        let t = start();
        stop(Phase::Seed, t);
        let s = snapshot();
        assert_eq!(s.moves, 2);
        assert_eq!(s.net_recomputes, 1);
        assert_eq!(s.gain_recomputes, 1);
        assert_eq!(s.sync_rounds, 2);
        assert_eq!(s.sync_candidates, 16);
        assert_eq!(s.sync_committed, 10);
        assert_eq!(s.match_rounds, 1);
        assert_eq!(s.flow_corridors, 2);
        assert_eq!(s.flow_augments, 8);
        assert_eq!(s.flow_accepted, 1);
        reset();
        assert_eq!(snapshot(), ProfSnapshot::default());
    }

    #[cfg(not(feature = "prof"))]
    #[test]
    fn disabled_counters_stay_zero() {
        assert!(!enabled());
        count_move();
        count_net_recompute();
        let t = start();
        stop(Phase::Apply, t);
        assert_eq!(snapshot(), ProfSnapshot::default());
    }
}
