//! Multilevel (clustering pre-phase) partitioning on top of PROP.
//!
//! The DAC-96 paper closes: "we believe that in conjunction with a
//! clustering initial phase \[PROP\] will yield a high-quality partitioning
//! tool." This crate is that tool:
//!
//! 1. **Coarsen** — repeated heavy-edge matching merges tightly connected
//!    node pairs into supernodes (sizes accumulate as node weights;
//!    internal nets vanish, identical nets merge with summed cost) until
//!    the circuit is small.
//! 2. **Initial partition** — the coarsest circuit is bisected by the
//!    inner partitioner from several greedy weight-balanced starts.
//! 3. **Uncoarsen + refine** — the partition is projected back level by
//!    level and refined at each level by the inner partitioner under the
//!    size-constrained balance criterion.
//!
//! The key property making this sound is that coarsening is *cut-exact*:
//! any partition of a coarse level induces a partition of the fine level
//! with exactly the same cut cost (see [`coarsen::CoarseLevel::project`]).
//!
//! ```
//! use prop_core::{BalanceConstraint, GlobalPartitioner, Prop, PropConfig};
//! use prop_multilevel::Multilevel;
//! use prop_netlist::generate::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::new(400, 440, 1500).with_seed(1))?;
//! let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
//! let ml = Multilevel::new(Prop::new(PropConfig::calibrated()));
//! let result = ml.partition(&graph, balance)?;
//! assert!(result.partition.is_balanced(balance));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;

use coarsen::{coarsen, CoarseLevel};
use prop_core::{
    BalanceConstraint, Bipartition, CutState, GlobalPartitioner, PartitionError, Partitioner,
    RunResult, Side,
};
use prop_netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the multilevel scheme.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening once the circuit has at most this many nodes.
    pub coarsest_nodes: usize,
    /// Hard cap on coarsening levels (also stops when matching stalls).
    pub max_levels: usize,
    /// Number of initial bisections tried at the coarsest level.
    pub coarsest_starts: usize,
    /// Nets larger than this are ignored when scoring matches (they carry
    /// almost no clustering signal).
    pub max_match_net: usize,
    /// Seed for matching orders and initial bisections.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsest_nodes: 120,
            max_levels: 20,
            coarsest_starts: 4,
            max_match_net: 32,
            seed: 0,
        }
    }
}

/// A multilevel wrapper around any iterative improver.
#[derive(Clone, Debug)]
pub struct Multilevel<P> {
    config: MultilevelConfig,
    inner: P,
}

impl<P: Partitioner> Multilevel<P> {
    /// Wraps `inner` with the default multilevel configuration.
    pub fn new(inner: P) -> Self {
        Multilevel {
            config: MultilevelConfig::default(),
            inner,
        }
    }

    /// Wraps `inner` with an explicit configuration.
    pub fn with_config(inner: P, config: MultilevelConfig) -> Self {
        Multilevel { config, inner }
    }

    /// The inner refiner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The configuration.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }
}

impl<P: Partitioner> GlobalPartitioner for Multilevel<P> {
    fn name(&self) -> &str {
        "ML"
    }

    fn partition(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        if graph.num_nodes() == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        let (r1, r2) = balance.ratios();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5151_aaaa_bbbb_7777);

        // Phase 1: coarsen.
        let mut levels: Vec<CoarseLevel> = Vec::new();
        let mut current = graph.clone();
        for _ in 0..self.config.max_levels {
            if current.num_nodes() <= self.config.coarsest_nodes {
                break;
            }
            let level = coarsen(&current, self.config.max_match_net, rng.gen());
            // A stalled matching (degenerate circuit) would loop forever.
            if level.coarse.num_nodes() as f64 > current.num_nodes() as f64 * 0.95 {
                break;
            }
            current = level.coarse.clone();
            levels.push(level);
        }

        // Phase 2: partition the coarsest circuit. The inner improver runs
        // from several greedy weight-balanced starts.
        let coarse_balance = BalanceConstraint::weighted(r1, r2, &current)?;
        let mut best: Option<(Bipartition, f64)> = None;
        let mut total_passes = 0;
        for _ in 0..self.config.coarsest_starts.max(1) {
            let mut partition = greedy_weighted_bisection(&current, &mut rng);
            let stats = self.inner.improve(&current, &mut partition, coarse_balance);
            total_passes += stats.passes;
            let cost = CutState::new(&current, &partition).cut_cost();
            if best.as_ref().is_none_or(|&(_, b)| cost < b) {
                best = Some((partition, cost));
            }
        }
        let (mut partition, _) = best.expect("at least one start");

        // Phase 3: uncoarsen and refine level by level.
        let mut run_cuts = Vec::with_capacity(levels.len() + 1);
        for level in levels.iter().rev() {
            partition = level.project(&partition);
            let fine_balance = BalanceConstraint::weighted(r1, r2, level.fine_view())?;
            let stats = self
                .inner
                .improve(level.fine_view(), &mut partition, fine_balance);
            total_passes += stats.passes;
            run_cuts.push(stats.cut_cost);
        }

        let cut_cost = CutState::new(graph, &partition).cut_cost();
        run_cuts.push(cut_cost);
        Ok(RunResult {
            partition,
            cut_cost,
            total_passes,
            run_cuts,
        })
    }
}

/// A greedy weight-balanced bisection: nodes in random order, heaviest
/// concerns resolved by always placing on the lighter side. Guarantees a
/// side-weight difference of at most the largest node weight.
fn greedy_weighted_bisection<R: Rng + ?Sized>(graph: &Hypergraph, rng: &mut R) -> Bipartition {
    let n = graph.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    // Place heavier nodes first so the final imbalance is bounded by the
    // *smallest* weights, not the largest.
    order.sort_by(|&a, &b| {
        graph
            .node_weight(prop_netlist::NodeId::new(b))
            .partial_cmp(&graph.node_weight(prop_netlist::NodeId::new(a)))
            .expect("finite node weights")
    });
    let mut sides = vec![Side::A; n];
    let mut weight = [0.0f64; 2];
    for &v in &order {
        let side = if weight[0] <= weight[1] { Side::A } else { Side::B };
        sides[v] = side;
        weight[side.index()] += graph.node_weight(prop_netlist::NodeId::new(v));
    }
    Bipartition::from_sides(sides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::{Prop, PropConfig, SideWeights};
    use prop_fm::FmTree;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(n: usize, seed: u64) -> Hypergraph {
        let nets = n * 11 / 10;
        generate(&GeneratorConfig::new(n, nets, nets * 7 / 2).with_seed(seed)).unwrap()
    }

    #[test]
    fn multilevel_prop_produces_feasible_partitions() {
        let graph = circuit(600, 3);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let ml = Multilevel::new(Prop::new(PropConfig::calibrated()));
        let result = ml.partition(&graph, balance).unwrap();
        assert!(result.partition.is_balanced(balance));
        assert_eq!(
            result.cut_cost,
            CutState::new(&graph, &result.partition).cut_cost()
        );
    }

    #[test]
    fn multilevel_matches_or_beats_flat_runs_of_its_refiner() {
        use prop_core::Partitioner as _;
        let graph = circuit(800, 9);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let flat = FmTree::default().run_multi(&graph, balance, 4, 0).unwrap();
        let ml = Multilevel::new(FmTree::default()).partition(&graph, balance).unwrap();
        // The clustering pre-phase is the whole point: it should not lose
        // to the same refiner from random starts (allow a small epsilon of
        // slack for unlucky matchings).
        assert!(
            ml.cut_cost <= flat.cut_cost * 1.1 + 2.0,
            "ML-FM {} vs flat FM {}",
            ml.cut_cost,
            flat.cut_cost
        );
    }

    #[test]
    fn greedy_bisection_is_weight_balanced() {
        let mut b = prop_netlist::HypergraphBuilder::new(7);
        b.add_net(1.0, [0, 1, 2, 3, 4, 5, 6]).unwrap();
        b.set_node_weights(vec![5.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0])
            .unwrap();
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p = greedy_weighted_bisection(&g, &mut rng);
        let w = SideWeights::new(&g, &p);
        assert!((w.get(Side::A) - w.get(Side::B)).abs() <= 5.0);
        // With heaviest-first placement the real gap is at most the
        // smallest weight here.
        assert!((w.get(Side::A) - w.get(Side::B)).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_graph_errors() {
        let g = prop_netlist::HypergraphBuilder::new(0).build().unwrap();
        let balance = BalanceConstraint::bisection(0);
        let ml = Multilevel::new(Prop::new(PropConfig::calibrated()));
        assert_eq!(ml.partition(&g, balance), Err(PartitionError::EmptyGraph));
    }

    #[test]
    fn config_accessors() {
        let ml = Multilevel::with_config(
            FmTree::default(),
            MultilevelConfig {
                coarsest_nodes: 64,
                ..MultilevelConfig::default()
            },
        );
        assert_eq!(ml.config().coarsest_nodes, 64);
        assert_eq!(ml.name(), "ML");
        let _ = ml.inner();
    }
}
