//! Multilevel (clustering pre-phase) partitioning on top of PROP.
//!
//! The DAC-96 paper closes: "we believe that in conjunction with a
//! clustering initial phase \[PROP\] will yield a high-quality partitioning
//! tool." This crate is that tool:
//!
//! 1. **Coarsen** — repeated heavy-edge matching merges tightly connected
//!    node pairs into supernodes (sizes accumulate as node weights;
//!    internal nets vanish, identical nets merge with summed cost) until
//!    the circuit is small.
//! 2. **Initial partition** — the coarsest circuit is bisected by the
//!    inner partitioner from several greedy weight-balanced starts.
//! 3. **Uncoarsen + refine** — the partition is projected back level by
//!    level and refined at each level by the inner partitioner under the
//!    size-constrained balance criterion.
//!
//! The key property making this sound is that coarsening is *cut-exact*:
//! any partition of a coarse level induces a partition of the fine level
//! with exactly the same cut cost (see [`coarsen::CoarseLevel::project`]).
//!
//! # The two faces of [`Multilevel`]
//!
//! * As a [`GlobalPartitioner`], [`Multilevel::partition`] runs one
//!   V-cycle seeded from `config.seed` — the one-shot global method.
//! * As a [`Partitioner`], [`Multilevel::improve`] runs one V-cycle per
//!   harness run, which plugs the engine into the multi-start machinery:
//!   `run_multi_parallel` gives deterministic parallel multi-start
//!   V-cycles (bit-identical to sequential for every thread count) and
//!   `run_multi_cancellable` gives cooperative cancellation. The per-run
//!   V-cycle seed is derived from `config.seed` and a hash of the
//!   harness-seeded initial partition, so run `r` is fully determined by
//!   `(config.seed, base_seed + r)` — never by thread scheduling.
//!
//! # Seed streams and prefix stability
//!
//! All randomness inside a V-cycle is drawn from independent seed
//! streams derived by [`stream_seed`]: matching order at level `l` uses
//! `(seed, Matching, l)`, coarsest start `s` uses `(seed, Start, s)`.
//! Because start `s` never consumes draws from any other start's stream,
//! raising `coarsest_starts` only *appends* starts: the first `k` initial
//! bisections are identical for every `coarsest_starts ≥ k`
//! (prefix-stable, pinned by `tests/multilevel_vcycle.rs`).
//!
//! # Intra-run parallelism
//!
//! [`MultilevelConfig::intra`] parallelizes the inside of a *single*
//! V-cycle — the production case of one large job — deterministically:
//! coarsening switches to propose/resolve matching
//! ([`coarsen::coarsen_sync_with`]) and refinement to synchronous rounds
//! ([`prop_fm::SyncRoundFm`]), both built on the fixed-chunk
//! [`prop_core::map_chunks`] grid whose results are independent of the
//! worker count by construction. `Threads(1)`, `Threads(2)`,
//! `Threads(4)`, and `Auto` return bit-identical partitions; only the
//! wall clock changes. The default `Sequential` keeps the classic
//! sequential algorithms (and their pinned golden cuts) untouched.
//!
//! # Cancellation
//!
//! The V-cycle polls the thread-local cancellation slot at every level
//! boundary: between coarsening levels, between coarsest starts, and
//! before each refinement during uncoarsening. A trip mid-uncoarsening
//! skips the remaining refinements but **keeps projecting** down to the
//! input circuit — projection is cut-exact and weight-preserving, so the
//! partial result is a real (if less refined) partition of the input.
//!
//! ```
//! use prop_core::{BalanceConstraint, GlobalPartitioner, Prop, PropConfig};
//! use prop_multilevel::Multilevel;
//! use prop_netlist::generate::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::new(400, 440, 1500).with_seed(1))?;
//! let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes())?;
//! let ml = Multilevel::new(Prop::new(PropConfig::calibrated()));
//! let result = ml.partition(&graph, balance)?;
//! assert!(result.partition.is_balanced(balance));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;

use coarsen::{coarsen_sync_with, coarsen_with, CoarseLevel, CoarsenScratch};
use prop_core::prof::{self, Phase};
use prop_core::{
    cancel, BalanceConstraint, Bipartition, CutState, GlobalPartitioner, ImproveStats,
    ParallelPolicy, PartitionError, Partitioner, Prop, PropConfig, RunResult, Side, SideWeights,
};
use prop_netlist::Hypergraph;
pub use prop_flow::FlowConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the multilevel scheme.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening once the circuit has at most this many nodes.
    pub coarsest_nodes: usize,
    /// Hard cap on coarsening levels (also stops when matching stalls).
    pub max_levels: usize,
    /// Number of initial bisections tried at the coarsest level.
    pub coarsest_starts: usize,
    /// Nets larger than this are ignored when scoring matches (they carry
    /// almost no clustering signal).
    pub max_match_net: usize,
    /// FM pass cap at *capped* weighted levels of the [`standard`]
    /// engine — levels above `fm_converge_nodes` nodes (ignored by custom
    /// inner partitioners, which keep their own pass policy).
    ///
    /// [`standard`]: Multilevel::standard
    pub refine_passes: usize,
    /// Weighted levels of at most this many nodes run FM to convergence
    /// in the [`standard`] engine; larger ones get `refine_passes`.
    ///
    /// [`standard`]: Multilevel::standard
    pub fm_converge_nodes: usize,
    /// Weighted levels larger than this are projected through without
    /// refinement by the [`standard`] engine: their moves are a strict
    /// subset of the (much cheaper) moves available at the unit-weight
    /// finest level, so refining both is redundant work.
    ///
    /// [`standard`]: Multilevel::standard
    pub refine_skip_nodes: usize,
    /// PROP passes run after FM converges at unit-weight levels (the
    /// input circuit) in the [`standard`] engine; `0` disables the
    /// polish.
    ///
    /// [`standard`]: Multilevel::standard
    pub polish_passes: usize,
    /// Seed for matching orders and initial bisections.
    pub seed: u64,
    /// Intra-run worker policy. [`ParallelPolicy::Sequential`] (the
    /// default) runs the classic sequential V-cycle. Any other policy
    /// switches the [`standard`] engine to its *deterministic
    /// intra-parallel* algorithms — propose/resolve matching
    /// ([`coarsen::coarsen_sync_with`]) and synchronous-round refinement
    /// ([`prop_fm::SyncRoundFm`]) — whose results are bit-identical for
    /// every worker count (`Threads(1)`, `Threads(4)`, and `Auto` all
    /// agree); the policy then only sets how wide the fixed chunk grid is
    /// executed. The two modes are different algorithms and generally
    /// produce different (same-quality-class) partitions.
    ///
    /// [`standard`]: Multilevel::standard
    pub intra: ParallelPolicy,
    /// Flow-based corridor refinement run by the [`standard`] engine
    /// after move-based refinement at each level (disabled by default,
    /// which keeps the engine byte-identical to the classic V-cycle).
    /// The pass is deterministic and RNG-free, so enabling it preserves
    /// worker-count invariance in intra mode.
    ///
    /// [`standard`]: Multilevel::standard
    pub flow: FlowConfig,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsest_nodes: 120,
            max_levels: 24,
            coarsest_starts: 8,
            max_match_net: 8,
            refine_passes: 1,
            fm_converge_nodes: 20_000,
            refine_skip_nodes: 40_000,
            polish_passes: 1,
            seed: 0,
            intra: ParallelPolicy::Sequential,
            flow: FlowConfig::default(),
        }
    }
}

/// Whether a policy engages the intra-parallel (synchronous-round)
/// algorithms: everything except [`ParallelPolicy::Sequential`].
fn intra_engaged(policy: ParallelPolicy) -> bool {
    !matches!(policy, ParallelPolicy::Sequential)
}

/// The independent random streams of a V-cycle; see [`stream_seed`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeedStream {
    /// Matching order of coarsening level `index`.
    Matching,
    /// Greedy initial bisection of coarsest start `index`.
    Start,
    /// Whole-V-cycle seed of harness run `index` (where `index` is a hash
    /// of the run's seeded initial partition).
    Run,
}

/// Derives the seed of draw stream `(stream, index)` from the engine seed.
///
/// Each `(stream, index)` pair gets a statistically independent seed via
/// the shared salted finalizer of [`prop_core::seed`], and no stream ever
/// consumes another stream's draws. This is what makes the
/// initial-partition draws *prefix-stable*: changing `coarsest_starts`
/// (or `max_levels`) leaves every earlier start's (or level's) randomness
/// untouched.
pub fn stream_seed(seed: u64, stream: SeedStream, index: u64) -> u64 {
    let salt: u64 = match stream {
        SeedStream::Matching => 0x9e37_79b9_7f4a_7c15,
        SeedStream::Start => 0xd1b5_4a32_d192_ed03,
        SeedStream::Run => 0x8cb9_2ba7_2f3d_8dd7,
    };
    prop_core::seed::salted_stream_seed(seed, salt, index)
}

/// The size- and weight-adaptive refiner of the production `ml` engine.
///
/// The cost structure of a V-cycle level is set by its weights, not just
/// its size. Unit-weight levels (the input circuit itself) refine
/// cheaply: every FM balance probe is O(1) and the bucket gain structure
/// applies directly. Weighted coarse levels are where refinement gets
/// expensive — heavy supernodes force deep balance-feasibility scans per
/// selected move — while every move available there is also available,
/// more finely and more cheaply, at the finest level. So the refiner
/// spends where it is paid:
///
/// * **Unit-weight levels** — FM-bucket to convergence, then a capped
///   PROP polish (`polish_passes`): PROP's probabilistic reordering
///   escapes the local minimum FM converged to, and this level decides
///   the reported cut.
/// * **Weighted levels above `refine_skip_nodes`** — projected through
///   without refinement (their moves are a strict subset of the finest
///   level's).
/// * **Weighted levels above `fm_converge_nodes`** — FM capped at
///   `refine_passes`.
/// * **Smaller weighted levels** — FM to convergence.
///
/// FM uses the O(1) bucket structure whenever net costs are integral
/// (unit fine costs stay integral through coarsening, since merged nets
/// sum them) and the tree only for fractional weights.
#[derive(Clone, Debug)]
pub struct MlRefiner {
    polish: Prop,
    polish_passes: usize,
    fm_capped: prop_fm::FmBucket,
    fm_full: prop_fm::FmBucket,
    fm_tree_capped: prop_fm::FmTree,
    fm_tree_full: prop_fm::FmTree,
    sync_capped: prop_fm::SyncRoundFm,
    sync_full: prop_fm::SyncRoundFm,
    intra: bool,
    fm_converge_nodes: usize,
    refine_skip_nodes: usize,
    flow: FlowConfig,
}

impl MlRefiner {
    /// Builds the refiner from the tuning knobs of `config`
    /// (`refine_passes`, `fm_converge_nodes`, `refine_skip_nodes`,
    /// `polish_passes`, `intra`).
    pub fn new(config: &MultilevelConfig) -> Self {
        let passes = config.refine_passes.max(1);
        MlRefiner {
            polish: Prop::new(PropConfig {
                max_passes: config.polish_passes.max(1),
                ..PropConfig::calibrated()
            }),
            polish_passes: config.polish_passes,
            fm_capped: prop_fm::FmBucket { max_passes: passes },
            fm_full: prop_fm::FmBucket::default(),
            fm_tree_capped: prop_fm::FmTree { max_passes: passes },
            fm_tree_full: prop_fm::FmTree::default(),
            sync_capped: prop_fm::SyncRoundFm {
                max_rounds: passes,
                policy: config.intra,
                ..prop_fm::SyncRoundFm::default()
            },
            sync_full: prop_fm::SyncRoundFm {
                policy: config.intra,
                ..prop_fm::SyncRoundFm::default()
            },
            intra: intra_engaged(config.intra),
            fm_converge_nodes: config.fm_converge_nodes,
            refine_skip_nodes: config.refine_skip_nodes,
            flow: config.flow,
        }
    }

    /// Move-based refinement of one level: the size- and weight-adaptive
    /// dispatch described on the type.
    fn improve_moves(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        let n = graph.num_nodes();
        if graph.has_unit_weights() && graph.has_unit_node_weights() {
            let fm = if self.intra {
                self.sync_full.improve(graph, partition, balance)
            } else {
                self.fm_full.improve(graph, partition, balance)
            };
            if self.polish_passes == 0 {
                return fm;
            }
            let polish = self.polish.improve(graph, partition, balance);
            return ImproveStats {
                passes: fm.passes + polish.passes,
                cut_cost: polish.cut_cost,
            };
        }
        if n > self.refine_skip_nodes {
            return ImproveStats {
                passes: 0,
                cut_cost: prop_core::cut_cost(graph, partition),
            };
        }
        let capped = n > self.fm_converge_nodes;
        if self.intra {
            // Synchronous rounds work for arbitrary weights — no
            // bucket/tree split — and collect candidates in parallel
            // under the configured intra policy.
            return if capped { &self.sync_capped } else { &self.sync_full }
                .improve(graph, partition, balance);
        }
        if graph.has_integral_weights() {
            if capped { &self.fm_capped } else { &self.fm_full }
                .improve(graph, partition, balance)
        } else if capped {
            self.fm_tree_capped.improve(graph, partition, balance)
        } else {
            self.fm_tree_full.improve(graph, partition, balance)
        }
    }
}

impl Partitioner for MlRefiner {
    fn name(&self) -> &str {
        "ML-refine"
    }

    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        let moves = self.improve_moves(graph, partition, balance);
        // Flow refinement escapes minima move-based passes are stuck in,
        // but skipped weighted levels stay skipped: their corridor moves
        // reappear more finely at the finest level.
        if !self.flow.enabled
            || (!(graph.has_unit_weights() && graph.has_unit_node_weights())
                && graph.num_nodes() > self.refine_skip_nodes)
        {
            return moves;
        }
        let flow = prop_flow::refine(graph, partition, balance, &self.flow);
        ImproveStats {
            passes: moves.passes + flow.accepted as usize,
            cut_cost: flow.cut_cost,
        }
    }
}

/// A multilevel wrapper around any iterative improver.
#[derive(Clone, Debug)]
pub struct Multilevel<P> {
    config: MultilevelConfig,
    inner: P,
}

impl Multilevel<MlRefiner> {
    /// The production `ml` engine: a V-cycle refined by the size- and
    /// weight-adaptive [`MlRefiner`] built from `config`'s tuning knobs.
    pub fn standard(config: MultilevelConfig) -> Self {
        let inner = MlRefiner::new(&config);
        Multilevel { config, inner }
    }
}

impl<P: Partitioner> Multilevel<P> {
    /// Wraps `inner` with the default multilevel configuration.
    pub fn new(inner: P) -> Self {
        Multilevel {
            config: MultilevelConfig::default(),
            inner,
        }
    }

    /// Wraps `inner` with an explicit configuration.
    pub fn with_config(inner: P, config: MultilevelConfig) -> Self {
        Multilevel { config, inner }
    }

    /// The inner refiner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The configuration.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }

    /// Coarsens `graph` all the way down, one scratch for the whole chain.
    /// Returns the level stack and whether a cancellation trip cut
    /// coarsening short.
    fn coarsen_all(&self, graph: &Hypergraph, seed: u64) -> (Vec<CoarseLevel>, bool) {
        let cfg = &self.config;
        let mut levels: Vec<CoarseLevel> = Vec::new();
        let mut scratch = CoarsenScratch::default();
        loop {
            let fine: &Hypergraph = levels.last().map_or(graph, |l| &l.coarse);
            let fine_n = fine.num_nodes();
            if fine_n <= cfg.coarsest_nodes || levels.len() >= cfg.max_levels {
                return (levels, false);
            }
            if cancel::requested() {
                return (levels, true);
            }
            let tick = prof::start();
            let level_seed =
                stream_seed(seed, SeedStream::Matching, levels.len() as u64);
            let level = if intra_engaged(cfg.intra) {
                coarsen_sync_with(fine, cfg.max_match_net, level_seed, cfg.intra, &mut scratch)
            } else {
                coarsen_with(fine, cfg.max_match_net, level_seed, &mut scratch)
            };
            prof::stop(Phase::MlCoarsen, tick);
            prof::count_ml_level();
            // A stalled matching (degenerate circuit) would loop forever.
            if level.coarse.num_nodes() as f64 > fine_n as f64 * 0.95 {
                return (levels, false);
            }
            levels.push(level);
        }
    }

    /// One full V-cycle from `seed`. On a cancellation trip the cycle
    /// degrades gracefully (see the module docs) but always returns a
    /// partition of `graph`.
    fn vcycle(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
        seed: u64,
    ) -> Result<VcycleRun, PartitionError> {
        if graph.num_nodes() == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        let cfg = &self.config;

        // Phase 1: coarsen.
        let (levels, mut cancelled) = self.coarsen_all(graph, seed);

        // Phase 2: partition the coarsest circuit. The inner improver runs
        // from several greedy weight-balanced starts; each start draws
        // from its own seed stream (prefix-stable, see module docs).
        let coarsest: &Hypergraph = levels.last().map_or(graph, |l| &l.coarse);
        let coarse_balance = if levels.is_empty() {
            balance
        } else {
            balance.for_graph(coarsest)?
        };
        let mut best: Option<(Bipartition, f64)> = None;
        let mut passes = 0;
        let tick = prof::start();
        for s in 0..cfg.coarsest_starts.max(1) {
            if cancel::requested() {
                cancelled = true;
            }
            let mut rng =
                StdRng::seed_from_u64(stream_seed(seed, SeedStream::Start, s as u64));
            let mut part = greedy_start(coarsest, &mut rng, coarse_balance);
            if cancelled {
                if best.is_none() {
                    // Tripped before any start finished: keep the greedy
                    // bisection unimproved so there is still a partition
                    // to project.
                    let cut = CutState::new(coarsest, &part).cut_cost();
                    best = Some((part, cut));
                }
                break;
            }
            let stats = self.inner.improve(coarsest, &mut part, coarse_balance);
            passes += stats.passes;
            let cut = CutState::new(coarsest, &part).cut_cost();
            if best.as_ref().is_none_or(|&(_, b)| cut < b) {
                best = Some((part, cut));
            }
        }
        prof::stop(Phase::MlInitial, tick);
        let (mut partition, coarsest_cut) = best.expect("at least one start ran");

        // Phase 3: uncoarsen and refine level by level. A cancellation
        // trip stops refining but keeps projecting: projection is
        // cut-exact, so the partial result stays an honest partition of
        // the input circuit.
        let mut level_cuts = Vec::with_capacity(levels.len() + 1);
        level_cuts.push(coarsest_cut);
        for i in (0..levels.len()).rev() {
            let tick = prof::start();
            partition = levels[i].project(&partition);
            prof::stop(Phase::MlProject, tick);
            if cancel::requested() {
                cancelled = true;
            }
            if cancelled {
                continue;
            }
            let fine: &Hypergraph = if i == 0 { graph } else { &levels[i - 1].coarse };
            let fine_balance = if i == 0 {
                balance
            } else {
                balance.for_graph(fine)?
            };
            let tick = prof::start();
            let stats = self.inner.improve(fine, &mut partition, fine_balance);
            prof::stop(Phase::MlRefine, tick);
            passes += stats.passes;
            level_cuts.push(stats.cut_cost);
        }

        // Re-derive the final cost from scratch: multi-level bookkeeping
        // is never trusted for the reported number.
        let cut = CutState::new(graph, &partition).cut_cost();
        Ok(VcycleRun {
            partition,
            cut,
            passes,
            level_cuts,
        })
    }

    /// Cut cost of each coarsest-level start, in start order, for the
    /// given engine seed. Diagnostic hook pinning the prefix-stability
    /// contract: the vector for `coarsest_starts = k` is a prefix of the
    /// vector for any larger start count (same `config.seed`).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyGraph`] for a node-less graph.
    pub fn coarsest_start_cuts(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<Vec<f64>, PartitionError> {
        if graph.num_nodes() == 0 {
            return Err(PartitionError::EmptyGraph);
        }
        let (levels, _) = self.coarsen_all(graph, self.config.seed);
        let coarsest: &Hypergraph = levels.last().map_or(graph, |l| &l.coarse);
        let coarse_balance = if levels.is_empty() {
            balance
        } else {
            balance.for_graph(coarsest)?
        };
        (0..self.config.coarsest_starts.max(1))
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(stream_seed(
                    self.config.seed,
                    SeedStream::Start,
                    s as u64,
                ));
                let mut part = greedy_start(coarsest, &mut rng, coarse_balance);
                self.inner.improve(coarsest, &mut part, coarse_balance);
                Ok(CutState::new(coarsest, &part).cut_cost())
            })
            .collect()
    }
}

/// Outcome of one V-cycle.
struct VcycleRun {
    partition: Bipartition,
    cut: f64,
    passes: usize,
    /// Cut after each refinement stage, coarsest first.
    level_cuts: Vec<f64>,
}

impl<P: Partitioner> GlobalPartitioner for Multilevel<P> {
    fn name(&self) -> &str {
        "ML"
    }

    fn partition(
        &self,
        graph: &Hypergraph,
        balance: BalanceConstraint,
    ) -> Result<RunResult, PartitionError> {
        let run = self.vcycle(graph, balance, self.config.seed)?;
        Ok(RunResult {
            partition: run.partition,
            cut_cost: run.cut,
            total_passes: run.passes,
            run_cuts: run.level_cuts,
        })
    }
}

impl<P: Partitioner> Partitioner for Multilevel<P> {
    fn name(&self) -> &str {
        "ML"
    }

    /// Runs one V-cycle and installs its result when it improves (or
    /// matches) the incoming partition; otherwise the partition is left
    /// untouched. The V-cycle seed is derived from `config.seed` and a
    /// hash of the incoming partition, so under the multi-start harness
    /// every run gets a distinct, thread-count-independent V-cycle.
    ///
    /// An incoming feasible partition is never traded for an infeasible
    /// one, which upholds the [`Partitioner::improve`] contract even when
    /// the harness balance differs from the V-cycle's internal
    /// size-constrained criterion.
    fn improve(
        &self,
        graph: &Hypergraph,
        partition: &mut Bipartition,
        balance: BalanceConstraint,
    ) -> ImproveStats {
        let incoming_cut = CutState::new(graph, partition).cut_cost();
        let run_seed = stream_seed(self.config.seed, SeedStream::Run, side_hash(partition));
        match self.vcycle(graph, balance, run_seed) {
            Ok(run) if run.cut <= incoming_cut && is_feasible(balance, graph, &run.partition) => {
                *partition = run.partition;
                ImproveStats {
                    passes: run.passes,
                    cut_cost: run.cut,
                }
            }
            Ok(run) => ImproveStats {
                passes: run.passes,
                cut_cost: incoming_cut,
            },
            // Unreachable through the harness (it rejects empty graphs
            // first); stand pat to honor the in-place contract anyway.
            Err(_) => ImproveStats {
                passes: 0,
                cut_cost: incoming_cut,
            },
        }
    }
}

/// FNV-1a 64 over the assignment, one byte per node.
fn side_hash(partition: &Bipartition) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &s in partition.sides() {
        hash ^= u64::from(s == Side::B);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Strict feasibility of a committed partition under `balance`, counting
/// both sides' cardinalities and weights from scratch.
fn is_feasible(balance: BalanceConstraint, graph: &Hypergraph, partition: &Bipartition) -> bool {
    let w = SideWeights::new(graph, partition);
    balance.is_feasible(
        [partition.count(Side::A), partition.count(Side::B)],
        [w.get(Side::A), w.get(Side::B)],
    )
}

/// The greedy initial bisection of one coarsest start: the classic
/// lighter-side rule for symmetric constraints, or capacity-aware
/// placement under asymmetric budget caps. The branch keeps the
/// symmetric path byte-identical to the classic V-cycle (its committed
/// golden cuts depend on the exact `weight[0] <= weight[1]`
/// tie-breaking), which a unified remaining-capacity rule would not be.
fn greedy_start<R: Rng + ?Sized>(
    graph: &Hypergraph,
    rng: &mut R,
    balance: BalanceConstraint,
) -> Bipartition {
    if balance.is_budgeted() {
        greedy_budgeted_bisection(
            graph,
            rng,
            [balance.side_capacity(Side::A), balance.side_capacity(Side::B)],
        )
    } else {
        greedy_weighted_bisection(graph, rng)
    }
}

/// A greedy weight-balanced bisection: nodes in random order, heaviest
/// concerns resolved by always placing on the lighter side. Guarantees a
/// side-weight difference of at most the largest node weight.
fn greedy_weighted_bisection<R: Rng + ?Sized>(graph: &Hypergraph, rng: &mut R) -> Bipartition {
    let n = graph.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    // Place heavier nodes first so the final imbalance is bounded by the
    // *smallest* weights, not the largest.
    order.sort_by(|&a, &b| {
        graph
            .node_weight(prop_netlist::NodeId::new(b))
            .partial_cmp(&graph.node_weight(prop_netlist::NodeId::new(a)))
            .expect("finite node weights")
    });
    let mut sides = vec![Side::A; n];
    let mut weight = [0.0f64; 2];
    for &v in &order {
        let side = if weight[0] <= weight[1] { Side::A } else { Side::B };
        sides[v] = side;
        weight[side.index()] += graph.node_weight(prop_netlist::NodeId::new(v));
    }
    Bipartition::from_sides(sides)
}

/// The budgeted variant of [`greedy_weighted_bisection`]: heaviest
/// nodes first onto the side with the most *remaining capacity*, so an
/// asymmetric `(cap_a, cap_b)` window gets a start near its capacity
/// split rather than near 50/50. The same RNG draws are consumed, and
/// any overflow is bounded by the largest node weight (the balance
/// constraint's pass slack).
fn greedy_budgeted_bisection<R: Rng + ?Sized>(
    graph: &Hypergraph,
    rng: &mut R,
    caps: [f64; 2],
) -> Bipartition {
    let n = graph.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order.sort_by(|&a, &b| {
        graph
            .node_weight(prop_netlist::NodeId::new(b))
            .partial_cmp(&graph.node_weight(prop_netlist::NodeId::new(a)))
            .expect("finite node weights")
    });
    let mut sides = vec![Side::A; n];
    let mut weight = [0.0f64; 2];
    for &v in &order {
        let side = if caps[0] - weight[0] >= caps[1] - weight[1] {
            Side::A
        } else {
            Side::B
        };
        sides[v] = side;
        weight[side.index()] += graph.node_weight(prop_netlist::NodeId::new(v));
    }
    Bipartition::from_sides(sides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_fm::FmTree;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(n: usize, seed: u64) -> Hypergraph {
        let nets = n * 11 / 10;
        generate(&GeneratorConfig::new(n, nets, nets * 7 / 2).with_seed(seed)).unwrap()
    }

    #[test]
    fn multilevel_prop_produces_feasible_partitions() {
        let graph = circuit(600, 3);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let ml = Multilevel::new(Prop::new(PropConfig::calibrated()));
        let result = ml.partition(&graph, balance).unwrap();
        assert!(result.partition.is_balanced(balance));
        assert_eq!(
            result.cut_cost,
            CutState::new(&graph, &result.partition).cut_cost()
        );
    }

    #[test]
    fn multilevel_matches_or_beats_flat_runs_of_its_refiner() {
        let graph = circuit(800, 9);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let flat = FmTree::default().run_multi(&graph, balance, 4, 0).unwrap();
        let ml = Multilevel::new(FmTree::default())
            .partition(&graph, balance)
            .unwrap();
        // The clustering pre-phase is the whole point: it should not lose
        // to the same refiner from random starts (allow a small epsilon of
        // slack for unlucky matchings).
        assert!(
            ml.cut_cost <= flat.cut_cost * 1.1 + 2.0,
            "ML-FM {} vs flat FM {}",
            ml.cut_cost,
            flat.cut_cost
        );
    }

    #[test]
    fn improve_is_deterministic_and_never_regresses() {
        let graph = circuit(500, 21);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let ml = Multilevel::standard(MultilevelConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            let initial = Bipartition::random(graph.num_nodes(), &mut rng);
            let incoming_cut = CutState::new(&graph, &initial).cut_cost();
            let mut a = initial.clone();
            let mut b = initial.clone();
            let sa = ml.improve(&graph, &mut a, balance);
            let sb = ml.improve(&graph, &mut b, balance);
            assert_eq!(a, b, "improve must be deterministic in the input");
            assert_eq!(sa, sb);
            assert!(sa.cut_cost <= incoming_cut);
            assert!(a.is_balanced(balance));
            assert_eq!(sa.cut_cost, CutState::new(&graph, &a).cut_cost());
        }
    }

    #[test]
    fn improve_runs_differ_across_initial_partitions() {
        // Distinct incoming partitions must derive distinct V-cycle
        // seeds — that is what gives best-of-R its diversity.
        let graph = circuit(400, 5);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let ml = Multilevel::standard(MultilevelConfig::default());
        let result = ml.run_multi(&graph, balance, 4, 11).unwrap();
        assert_eq!(result.run_cuts.len(), 4);
        let best = result.run_cuts.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(result.cut_cost, best);
    }

    #[test]
    fn intra_policies_are_bit_identical() {
        let graph = circuit(500, 33);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let engine = |policy| {
            Multilevel::standard(MultilevelConfig {
                intra: policy,
                seed: 5,
                ..MultilevelConfig::default()
            })
        };
        let baseline = engine(ParallelPolicy::Threads(1))
            .run_multi(&graph, balance, 2, 9)
            .unwrap();
        assert!(baseline.partition.is_balanced(balance));
        assert_eq!(
            baseline.cut_cost,
            CutState::new(&graph, &baseline.partition).cut_cost()
        );
        for policy in [
            ParallelPolicy::Threads(2),
            ParallelPolicy::Threads(4),
            ParallelPolicy::Auto,
        ] {
            let got = engine(policy).run_multi(&graph, balance, 2, 9).unwrap();
            assert_eq!(got, baseline, "{policy:?}");
        }
    }

    #[test]
    fn intra_quality_is_in_the_sequential_class() {
        // Different algorithm, same quality class: the intra engine must
        // land within a modest factor of the classic sequential cut.
        let graph = circuit(600, 8);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let classic = Multilevel::standard(MultilevelConfig::default())
            .run_multi(&graph, balance, 2, 3)
            .unwrap();
        let intra = Multilevel::standard(MultilevelConfig {
            intra: ParallelPolicy::Threads(2),
            ..MultilevelConfig::default()
        })
        .run_multi(&graph, balance, 2, 3)
        .unwrap();
        assert!(
            intra.cut_cost <= classic.cut_cost * 1.25 + 4.0,
            "intra {} vs classic {}",
            intra.cut_cost,
            classic.cut_cost
        );
    }

    #[test]
    fn start_cuts_are_prefix_stable() {
        let graph = circuit(700, 13);
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).unwrap();
        let few = Multilevel::standard(MultilevelConfig {
            coarsest_starts: 3,
            ..MultilevelConfig::default()
        });
        let many = Multilevel::standard(MultilevelConfig {
            coarsest_starts: 9,
            ..MultilevelConfig::default()
        });
        let few_cuts = few.coarsest_start_cuts(&graph, balance).unwrap();
        let many_cuts = many.coarsest_start_cuts(&graph, balance).unwrap();
        assert_eq!(few_cuts.len(), 3);
        assert_eq!(many_cuts.len(), 9);
        assert_eq!(few_cuts, many_cuts[..3]);
    }

    #[test]
    fn stream_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for stream in [SeedStream::Matching, SeedStream::Start, SeedStream::Run] {
            for index in 0..64 {
                assert!(
                    seen.insert(stream_seed(42, stream, index)),
                    "collision at {stream:?}/{index}"
                );
            }
        }
    }

    #[test]
    fn greedy_bisection_is_weight_balanced() {
        let mut b = prop_netlist::HypergraphBuilder::new(7);
        b.add_net(1.0, [0, 1, 2, 3, 4, 5, 6]).unwrap();
        b.set_node_weights(vec![5.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0])
            .unwrap();
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p = greedy_weighted_bisection(&g, &mut rng);
        let w = SideWeights::new(&g, &p);
        assert!((w.get(Side::A) - w.get(Side::B)).abs() <= 5.0);
        // With heaviest-first placement the real gap is at most the
        // smallest weight here.
        assert!((w.get(Side::A) - w.get(Side::B)).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_graph_errors() {
        let g = prop_netlist::HypergraphBuilder::new(0).build().unwrap();
        let balance = BalanceConstraint::bisection(0);
        let ml = Multilevel::new(Prop::new(PropConfig::calibrated()));
        assert_eq!(ml.partition(&g, balance), Err(PartitionError::EmptyGraph));
    }

    #[test]
    fn config_accessors() {
        let ml = Multilevel::with_config(
            FmTree::default(),
            MultilevelConfig {
                coarsest_nodes: 64,
                ..MultilevelConfig::default()
            },
        );
        assert_eq!(ml.config().coarsest_nodes, 64);
        assert_eq!(GlobalPartitioner::name(&ml), "ML");
        assert_eq!(Partitioner::name(&ml), "ML");
        let _ = ml.inner();
    }

    #[test]
    fn refiner_dispatches_by_size_and_weights() {
        // Unit-weight graph → FM + PROP polish; all paths keep
        // feasibility and report the true cut.
        let refiner = MlRefiner::new(&MultilevelConfig::default());
        let unit = circuit(300, 4);
        let balance = BalanceConstraint::new(0.45, 0.55, unit.num_nodes()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Bipartition::random(unit.num_nodes(), &mut rng);
        let stats = refiner.improve(&unit, &mut p, balance);
        assert!(p.is_balanced(balance));
        assert_eq!(stats.cut_cost, CutState::new(&unit, &p).cut_cost());
        assert_eq!(refiner.name(), "ML-refine");

        // A weighted level above the skip threshold is projected through
        // untouched, but the reported cut must still be exact.
        let skipping = MlRefiner::new(&MultilevelConfig {
            refine_skip_nodes: 100,
            ..MultilevelConfig::default()
        });
        let mut b = prop_netlist::HypergraphBuilder::new(200);
        for i in 0..199 {
            b.add_net(2.0, [i, i + 1]).unwrap();
        }
        b.set_node_weights(vec![2.0; 200]).unwrap();
        let weighted = b.build().unwrap();
        let balance = BalanceConstraint::new(0.45, 0.55, 200).unwrap();
        let mut p = Bipartition::random(200, &mut rng);
        let before = p.clone();
        let stats = skipping.improve(&weighted, &mut p, balance);
        assert_eq!(p, before, "levels above refine_skip_nodes must not move");
        assert_eq!(stats.passes, 0);
        assert_eq!(stats.cut_cost, CutState::new(&weighted, &p).cut_cost());

        // The same circuit below the threshold is actually refined.
        let refining = MlRefiner::new(&MultilevelConfig {
            refine_skip_nodes: 100_000,
            ..MultilevelConfig::default()
        });
        let stats = refining.improve(&weighted, &mut p, balance);
        assert!(stats.passes >= 1);
        assert!(p.is_balanced(balance));
    }
}
