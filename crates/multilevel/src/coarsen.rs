//! Heavy-edge matching coarsening.

use prop_core::{Bipartition, Side};
use prop_netlist::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNMATCHED: u32 = u32::MAX;

/// One coarsening level: the coarsened circuit and the node mapping from
/// the fine circuit it was built from. The fine circuit itself is not
/// stored — the V-cycle driver owns the chain of graphs, so a level costs
/// one mapping vector plus the coarse circuit instead of a full clone of
/// its parent.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarsened circuit. Supernode weights are the summed weights of
    /// their constituents; nets internal to a supernode are dropped and
    /// identical coarse nets are merged with summed cost, which makes
    /// coarsening *cut-exact* (see [`CoarseLevel::project`]).
    pub coarse: Hypergraph,
    /// `map[fine_node] = coarse_node`.
    map: Vec<u32>,
}

impl CoarseLevel {
    /// Number of nodes of the fine circuit this level coarsened from.
    pub fn fine_nodes(&self) -> usize {
        self.map.len()
    }

    /// The coarse image of a fine node.
    pub fn coarse_of(&self, fine: NodeId) -> NodeId {
        NodeId::new(self.map[fine.index()] as usize)
    }

    /// Projects a partition of the coarse circuit onto the fine circuit:
    /// every fine node takes its supernode's side. The projected partition
    /// has **exactly** the same cut cost, because every dropped net was
    /// internal to one supernode (hence internal to one side) and merged
    /// nets are cut simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not match the coarse circuit.
    pub fn project(&self, coarse_partition: &Bipartition) -> Bipartition {
        assert_eq!(
            coarse_partition.len(),
            self.coarse.num_nodes(),
            "partition does not match the coarse circuit"
        );
        let sides: Vec<Side> = self
            .map
            .iter()
            .map(|&c| coarse_partition.side(NodeId::new(c as usize)))
            .collect();
        Bipartition::from_sides(sides)
    }
}

/// Reusable buffers for [`coarsen_with`]. One scratch serves a whole
/// V-cycle: every level reuses the allocations sized by the finest
/// circuit instead of reallocating per level.
#[derive(Default, Debug)]
pub struct CoarsenScratch {
    order: Vec<u32>,
    mate: Vec<u32>,
    score: Vec<f64>,
    mark: Vec<u32>,
    /// Concatenated mapped-and-deduped pin sets of the surviving nets.
    pin_buf: Vec<u32>,
    /// `(offset into pin_buf, pin count, summed weight)` per surviving net.
    net_recs: Vec<(u32, u32, f64)>,
    sort_idx: Vec<u32>,
}

/// Coarsens `fine` by one level of heavy-edge matching with a fresh
/// scratch; see [`coarsen_with`].
pub fn coarsen(fine: &Hypergraph, max_match_net: usize, seed: u64) -> CoarseLevel {
    coarsen_with(fine, max_match_net, seed, &mut CoarsenScratch::default())
}

/// Coarsens `fine` by one level of heavy-edge matching: each node is
/// matched with its most strongly connected unmatched neighbor
/// (connectivity = Σ `w/(q−1)` over shared nets of size ≤ `max_match_net`),
/// visiting nodes in a seeded random order. Unmatchable nodes survive as
/// singleton supernodes.
pub fn coarsen_with(
    fine: &Hypergraph,
    max_match_net: usize,
    seed: u64,
    scratch: &mut CoarsenScratch,
) -> CoarseLevel {
    let n = fine.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1357_9bdf_2468_ace0);
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..n as u32);
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }

    let mate = &mut scratch.mate;
    mate.clear();
    mate.resize(n, UNMATCHED);
    // Scratch accumulation of connectivity scores, epoch-marked.
    scratch.score.clear();
    scratch.score.resize(n, 0.0);
    scratch.mark.clear();
    scratch.mark.resize(n, u32::MAX);
    let score = &mut scratch.score;
    let mark = &mut scratch.mark;
    for (epoch, &u) in order.iter().enumerate() {
        let u = u as usize;
        if mate[u] != UNMATCHED {
            continue;
        }
        let epoch = epoch as u32;
        let u_id = NodeId::new(u);
        let mut best: Option<(f64, usize)> = None;
        for &net in fine.nets_of(u_id) {
            let q = fine.net_size(net);
            if !(2..=max_match_net).contains(&q) {
                continue;
            }
            let w = fine.net_weight(net) / (q as f64 - 1.0);
            for &x in fine.pins_of(net) {
                let xi = x.index();
                if xi == u || mate[xi] != UNMATCHED {
                    continue;
                }
                if mark[xi] != epoch {
                    mark[xi] = epoch;
                    score[xi] = 0.0;
                }
                score[xi] += w;
                let candidate = (score[xi], xi);
                let better = match best {
                    None => true,
                    Some((bs, bx)) => {
                        candidate.0 > bs
                            || (candidate.0 == bs && {
                                // Tie-break: lighter combined supernode,
                                // then smaller index — deterministic and
                                // weight-balancing.
                                let cw = fine.node_weight(x);
                                let bw = fine.node_weight(NodeId::new(bx));
                                cw < bw || (cw == bw && xi < bx)
                            })
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        if let Some((_, v)) = best {
            mate[u] = v as u32;
            mate[v] = u as u32;
        }
    }

    // Assign coarse ids: matched pairs share one id, singletons keep one.
    let mut map = vec![UNMATCHED; n];
    let mut coarse_weight: Vec<f64> = Vec::new();
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        let id = coarse_weight.len() as u32;
        map[v] = id;
        let mut w = fine.node_weight(NodeId::new(v));
        if mate[v] != UNMATCHED {
            let m = mate[v] as usize;
            map[m] = id;
            w += fine.node_weight(NodeId::new(m));
        }
        coarse_weight.push(w);
    }
    let coarse_n = coarse_weight.len();

    // Coarse nets: map every pin set into coarse ids, drop nets that
    // collapse inside one supernode, then merge identical pin sets with
    // summed cost. The merge is a flat-buffer sort of net records — no
    // per-net allocation, no hash map.
    let pin_buf = &mut scratch.pin_buf;
    let net_recs = &mut scratch.net_recs;
    pin_buf.clear();
    net_recs.clear();
    for net in fine.nets() {
        let start = pin_buf.len();
        pin_buf.extend(fine.pins_of(net).iter().map(|&v| map[v.index()]));
        pin_buf[start..].sort_unstable();
        let mut len = 0;
        for i in start..pin_buf.len() {
            if len == 0 || pin_buf[start + len - 1] != pin_buf[i] {
                pin_buf[start + len] = pin_buf[i];
                len += 1;
            }
        }
        pin_buf.truncate(start + len);
        if len < 2 {
            pin_buf.truncate(start);
            continue;
        }
        net_recs.push((start as u32, len as u32, fine.net_weight(net)));
    }
    // Deterministic lexicographic net order; identical pin sets become
    // adjacent and merge below.
    let rec_pins = |&(start, len, _): &(u32, u32, f64)| -> &[u32] {
        &pin_buf[start as usize..(start + len) as usize]
    };
    let sort_idx = &mut scratch.sort_idx;
    sort_idx.clear();
    sort_idx.extend(0..net_recs.len() as u32);
    sort_idx.sort_unstable_by(|&a, &b| {
        rec_pins(&net_recs[a as usize]).cmp(rec_pins(&net_recs[b as usize]))
    });

    let mut builder = HypergraphBuilder::new(coarse_n);
    builder
        .set_node_weights(coarse_weight)
        .expect("summed positive weights stay positive");
    let mut i = 0;
    while i < sort_idx.len() {
        let pins = rec_pins(&net_recs[sort_idx[i] as usize]);
        let mut weight = net_recs[sort_idx[i] as usize].2;
        let mut j = i + 1;
        while j < sort_idx.len() && rec_pins(&net_recs[sort_idx[j] as usize]) == pins {
            weight += net_recs[sort_idx[j] as usize].2;
            j += 1;
        }
        builder
            .add_net(weight, pins.iter().map(|&p| p as usize))
            .expect("mapped pins are in range");
        i = j;
    }
    let coarse = builder.build().expect("coarse circuit is well-formed");
    CoarseLevel { coarse, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::CutState;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(200, 220, 740).with_seed(seed)).unwrap()
    }

    #[test]
    fn coarsening_shrinks_and_conserves_weight() {
        let g = circuit(4);
        let level = coarsen(&g, 32, 1);
        assert!(level.coarse.num_nodes() < g.num_nodes());
        assert!(level.coarse.num_nodes() >= g.num_nodes() / 2);
        assert!(
            (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9,
            "node weight must be conserved"
        );
        assert_eq!(level.fine_nodes(), g.num_nodes());
    }

    #[test]
    fn matching_is_a_valid_pairing() {
        let g = circuit(5);
        let level = coarsen(&g, 32, 2);
        // Every coarse node has 1 or 2 fine constituents.
        let mut count = vec![0usize; level.coarse.num_nodes()];
        for v in g.nodes() {
            count[level.coarse_of(v).index()] += 1;
        }
        assert!(count.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn projection_is_cut_exact() {
        let g = circuit(6);
        let level = coarsen(&g, 32, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let coarse_part = Bipartition::random(level.coarse.num_nodes(), &mut rng);
            let coarse_cut = CutState::new(&level.coarse, &coarse_part).cut_cost();
            let fine_part = level.project(&coarse_part);
            let fine_cut = CutState::new(&g, &fine_part).cut_cost();
            assert!(
                (coarse_cut - fine_cut).abs() < 1e-9,
                "coarse {coarse_cut} vs fine {fine_cut}"
            );
        }
    }

    #[test]
    fn repeated_coarsening_terminates() {
        let mut g = circuit(7);
        for _ in 0..20 {
            if g.num_nodes() <= 16 {
                break;
            }
            let level = coarsen(&g, 32, 11);
            assert!(level.coarse.num_nodes() <= g.num_nodes());
            g = level.coarse;
        }
        assert!(g.num_nodes() <= 120);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = circuit(8);
        let a = coarsen(&g, 32, 5);
        let b = coarsen(&g, 32, 5);
        assert_eq!(a.coarse, b.coarse);
        let c = coarsen(&g, 32, 6);
        // Different seed, almost surely different matching.
        assert_ne!(a.coarse, c.coarse);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_scratch() {
        // One scratch threaded through a chain of levels must produce the
        // same circuits as a fresh scratch per call.
        let mut scratch = CoarsenScratch::default();
        let mut g = circuit(12);
        for level_seed in 0..4 {
            let reused = coarsen_with(&g, 32, level_seed, &mut scratch);
            let fresh = coarsen(&g, 32, level_seed);
            assert_eq!(reused.coarse, fresh.coarse, "level seed {level_seed}");
            assert_eq!(reused.map, fresh.map);
            g = reused.coarse;
        }
    }

    #[test]
    fn merged_nets_sum_their_weights() {
        // Doubled intra-pair nets dominate the connectivity scores, so
        // every visit order matches (0,1) and (2,3). The two parallel
        // cross nets then collapse into one coarse net of summed weight.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [0, 3]).unwrap();
        let g = b.build().unwrap();
        for seed in 0..4 {
            let level = coarsen(&g, 32, seed);
            assert_eq!(level.coarse.num_nodes(), 2);
            // The two supernodes are joined by exactly one surviving net
            // carrying both cross nets' weight.
            assert_eq!(level.coarse.num_nets(), 1);
            assert!((level.coarse.total_net_weight() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn project_checks_sizes() {
        let g = circuit(9);
        let level = coarsen(&g, 32, 1);
        let wrong = Bipartition::from_sides(vec![Side::A; level.coarse.num_nodes() + 1]);
        let _ = level.project(&wrong);
    }
}
