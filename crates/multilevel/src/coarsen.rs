//! Heavy-edge matching coarsening.
//!
//! Two interchangeable matching front ends feed one contraction back end:
//!
//! * [`coarsen_with`] — the classic *sequential greedy* matching: nodes in
//!   a seeded random order, each grabbing its best unmatched neighbor,
//!   later nodes seeing earlier matches.
//! * [`coarsen_sync_with`] — the deterministic *propose/resolve* matching
//!   of the intra-parallel V-cycle: rounds of parallel proposals against
//!   a frozen mate snapshot, resolved sequentially in an order ranked by
//!   a salted seed hash (never by arrival order), so the matching is
//!   bit-identical at every thread count.
//!
//! Both produce valid pairings and cut-exact levels; they generally pick
//! *different* matchings (different algorithms), which is why the engine
//! switches front ends only when intra-run parallelism is requested.

use prop_core::prof;
use prop_core::{map_chunks, map_chunks_with, Bipartition, ParallelPolicy, Side};
use prop_netlist::{Hypergraph, HypergraphBuilder, NetId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNMATCHED: u32 = u32::MAX;

/// Nodes per proposal chunk and nets per contraction chunk. Fixed — chunk
/// boundaries depend only on the circuit size, never the worker count.
const SYNC_CHUNK: usize = 4096;

/// Cap on propose/resolve rounds; in practice 2–4 suffice (a round with
/// no new pairs ends the loop early).
const MAX_MATCH_ROUNDS: usize = 8;

/// Salt separating the conflict-resolution rank stream from every other
/// seed stream derived from the engine seed.
const RANK_SALT: u64 = 0x6c62_272e_07bb_0142;

/// Splitmix64-style finalizer (same mixer as the engine's seed streams).
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One coarsening level: the coarsened circuit and the node mapping from
/// the fine circuit it was built from. The fine circuit itself is not
/// stored — the V-cycle driver owns the chain of graphs, so a level costs
/// one mapping vector plus the coarse circuit instead of a full clone of
/// its parent.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarsened circuit. Supernode weights are the summed weights of
    /// their constituents; nets internal to a supernode are dropped and
    /// identical coarse nets are merged with summed cost, which makes
    /// coarsening *cut-exact* (see [`CoarseLevel::project`]).
    pub coarse: Hypergraph,
    /// `map[fine_node] = coarse_node`.
    map: Vec<u32>,
}

impl CoarseLevel {
    /// Number of nodes of the fine circuit this level coarsened from.
    pub fn fine_nodes(&self) -> usize {
        self.map.len()
    }

    /// The coarse image of a fine node.
    pub fn coarse_of(&self, fine: NodeId) -> NodeId {
        NodeId::new(self.map[fine.index()] as usize)
    }

    /// Projects a partition of the coarse circuit onto the fine circuit:
    /// every fine node takes its supernode's side. The projected partition
    /// has **exactly** the same cut cost, because every dropped net was
    /// internal to one supernode (hence internal to one side) and merged
    /// nets are cut simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not match the coarse circuit.
    pub fn project(&self, coarse_partition: &Bipartition) -> Bipartition {
        assert_eq!(
            coarse_partition.len(),
            self.coarse.num_nodes(),
            "partition does not match the coarse circuit"
        );
        let sides: Vec<Side> = self
            .map
            .iter()
            .map(|&c| coarse_partition.side(NodeId::new(c as usize)))
            .collect();
        Bipartition::from_sides(sides)
    }
}

/// Reusable buffers for [`coarsen_with`]. One scratch serves a whole
/// V-cycle: every level reuses the allocations sized by the finest
/// circuit instead of reallocating per level.
#[derive(Default, Debug)]
pub struct CoarsenScratch {
    order: Vec<u32>,
    mate: Vec<u32>,
    score: Vec<f64>,
    mark: Vec<u32>,
    /// Concatenated mapped-and-deduped pin sets of the surviving nets.
    pin_buf: Vec<u32>,
    /// `(offset into pin_buf, pin count, summed weight)` per surviving net.
    net_recs: Vec<(u32, u32, f64)>,
    sort_idx: Vec<u32>,
}

/// Coarsens `fine` by one level of heavy-edge matching with a fresh
/// scratch; see [`coarsen_with`].
pub fn coarsen(fine: &Hypergraph, max_match_net: usize, seed: u64) -> CoarseLevel {
    coarsen_with(fine, max_match_net, seed, &mut CoarsenScratch::default())
}

/// Coarsens `fine` by one level of heavy-edge matching: each node is
/// matched with its most strongly connected unmatched neighbor
/// (connectivity = Σ `w/(q−1)` over shared nets of size ≤ `max_match_net`),
/// visiting nodes in a seeded random order. Unmatchable nodes survive as
/// singleton supernodes.
pub fn coarsen_with(
    fine: &Hypergraph,
    max_match_net: usize,
    seed: u64,
    scratch: &mut CoarsenScratch,
) -> CoarseLevel {
    let n = fine.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1357_9bdf_2468_ace0);
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..n as u32);
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }

    let mate = &mut scratch.mate;
    mate.clear();
    mate.resize(n, UNMATCHED);
    // Scratch accumulation of connectivity scores, epoch-marked.
    scratch.score.clear();
    scratch.score.resize(n, 0.0);
    scratch.mark.clear();
    scratch.mark.resize(n, u32::MAX);
    let score = &mut scratch.score;
    let mark = &mut scratch.mark;
    for (epoch, &u) in order.iter().enumerate() {
        let u = u as usize;
        if mate[u] != UNMATCHED {
            continue;
        }
        let epoch = epoch as u32;
        let u_id = NodeId::new(u);
        let mut best: Option<(f64, usize)> = None;
        for &net in fine.nets_of(u_id) {
            let q = fine.net_size(net);
            if !(2..=max_match_net).contains(&q) {
                continue;
            }
            let w = fine.net_weight(net) / (q as f64 - 1.0);
            for &x in fine.pins_of(net) {
                let xi = x.index();
                if xi == u || mate[xi] != UNMATCHED {
                    continue;
                }
                if mark[xi] != epoch {
                    mark[xi] = epoch;
                    score[xi] = 0.0;
                }
                score[xi] += w;
                let candidate = (score[xi], xi);
                let better = match best {
                    None => true,
                    Some((bs, bx)) => {
                        candidate.0 > bs
                            || (candidate.0 == bs && {
                                // Tie-break: lighter combined supernode,
                                // then smaller index — deterministic and
                                // weight-balancing.
                                let cw = fine.node_weight(x);
                                let bw = fine.node_weight(NodeId::new(bx));
                                cw < bw || (cw == bw && xi < bx)
                            })
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        if let Some((_, v)) = best {
            mate[u] = v as u32;
            mate[v] = u as u32;
        }
    }

    let (map, coarse_weight) = assign_coarse_ids(fine, &scratch.mate);
    fill_net_records_seq(fine, &map, scratch);
    let coarse = build_from_records(coarse_weight, scratch);
    CoarseLevel { coarse, map }
}

/// Coarsens `fine` by one level of deterministic propose/resolve matching
/// with a fresh scratch; see [`coarsen_sync_with`].
pub fn coarsen_sync(
    fine: &Hypergraph,
    max_match_net: usize,
    seed: u64,
    policy: ParallelPolicy,
) -> CoarseLevel {
    coarsen_sync_with(fine, max_match_net, seed, policy, &mut CoarsenScratch::default())
}

/// The intra-parallel coarsening front end: matching by synchronous
/// propose/resolve rounds, contraction by chunked parallel net mapping.
///
/// Each round, every unmatched node *proposes* its most strongly
/// connected unmatched neighbor (same connectivity score and tie-breaks
/// as [`coarsen_with`]) against a frozen snapshot of the matching —
/// evaluated in parallel over fixed node chunks. Proposals are then
/// *resolved* sequentially in the conflict-resolution order: nodes ranked
/// by the salted hash `mix64(seed ⊕ RANK_SALT ⊕ node)`, ties by node id —
/// a pure function of `(seed, node)`, never of thread scheduling. A
/// proposal `u → v` is accepted iff both ends are still unmatched when
/// `u`'s rank comes up. Rounds repeat until one adds no pairs.
///
/// The result is **bit-identical for every `policy`** (including
/// [`ParallelPolicy::Sequential`]) because chunking only schedules the
/// proposal evaluation; it is generally a *different* matching than
/// [`coarsen_with`]'s, whose greedy scan is order-dependent by design.
pub fn coarsen_sync_with(
    fine: &Hypergraph,
    max_match_net: usize,
    seed: u64,
    policy: ParallelPolicy,
    scratch: &mut CoarsenScratch,
) -> CoarseLevel {
    let n = fine.num_nodes();
    let mate = &mut scratch.mate;
    mate.clear();
    mate.resize(n, UNMATCHED);

    // The deterministic conflict-resolution order: a salted-hash ranking
    // of the node ids, fixed for the whole level.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..n as u32);
    let rank_seed = seed ^ RANK_SALT;
    order.sort_unstable_by_key(|&u| (mix64(rank_seed ^ u64::from(u)), u));

    for _ in 0..MAX_MATCH_ROUNDS {
        // Propose (parallel, frozen snapshot): per-worker score/mark
        // scratch sized to the level, allocated once per worker.
        let snapshot: &[u32] = mate;
        let proposal: Vec<u32> = map_chunks_with(
            policy,
            n,
            SYNC_CHUNK,
            || (vec![0.0f64; n], vec![u32::MAX; n]),
            |(score, mark), _, range| {
                range
                    .map(|u| propose(fine, max_match_net, snapshot, score, mark, u))
                    .collect::<Vec<u32>>()
            },
        )
        .into_iter()
        .flatten()
        .collect();

        // Resolve (sequential, rank order — cheap: one pass over n).
        let mut new_pairs = 0usize;
        for &u in order.iter() {
            let u = u as usize;
            if mate[u] != UNMATCHED {
                continue;
            }
            let v = proposal[u];
            if v == UNMATCHED || mate[v as usize] != UNMATCHED {
                continue;
            }
            mate[u] = v;
            mate[v as usize] = u as u32;
            new_pairs += 1;
        }
        prof::count_match_round();
        if new_pairs == 0 {
            break;
        }
    }

    let (map, coarse_weight) = assign_coarse_ids(fine, &scratch.mate);
    fill_net_records_par(fine, &map, scratch, policy);
    let coarse = build_from_records(coarse_weight, scratch);
    CoarseLevel { coarse, map }
}

/// One node's proposal: its most strongly connected unmatched neighbor
/// under the `snapshot` matching (connectivity = Σ `w/(q−1)` over shared
/// nets of size ≤ `max_match_net`; ties to the lighter combined
/// supernode, then the smaller index). `UNMATCHED` when `u` is matched or
/// has no eligible neighbor. `score`/`mark` are epoch-marked worker
/// scratch; `u` itself serves as the epoch stamp (unique per round).
fn propose(
    fine: &Hypergraph,
    max_match_net: usize,
    snapshot: &[u32],
    score: &mut [f64],
    mark: &mut [u32],
    u: usize,
) -> u32 {
    if snapshot[u] != UNMATCHED {
        return UNMATCHED;
    }
    let epoch = u as u32;
    let u_id = NodeId::new(u);
    let mut best: Option<(f64, usize)> = None;
    for &net in fine.nets_of(u_id) {
        let q = fine.net_size(net);
        if !(2..=max_match_net).contains(&q) {
            continue;
        }
        let w = fine.net_weight(net) / (q as f64 - 1.0);
        for &x in fine.pins_of(net) {
            let xi = x.index();
            if xi == u || snapshot[xi] != UNMATCHED {
                continue;
            }
            if mark[xi] != epoch {
                mark[xi] = epoch;
                score[xi] = 0.0;
            }
            score[xi] += w;
            let candidate = (score[xi], xi);
            let better = match best {
                None => true,
                Some((bs, bx)) => {
                    candidate.0 > bs
                        || (candidate.0 == bs && {
                            let cw = fine.node_weight(x);
                            let bw = fine.node_weight(NodeId::new(bx));
                            cw < bw || (cw == bw && xi < bx)
                        })
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best.map_or(UNMATCHED, |(_, v)| v as u32)
}

/// Assigns coarse ids from a pairing: matched pairs share one id,
/// singletons keep one; weights sum. Returns `(map, coarse_weight)`.
fn assign_coarse_ids(fine: &Hypergraph, mate: &[u32]) -> (Vec<u32>, Vec<f64>) {
    let n = fine.num_nodes();
    let mut map = vec![UNMATCHED; n];
    let mut coarse_weight: Vec<f64> = Vec::new();
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        let id = coarse_weight.len() as u32;
        map[v] = id;
        let mut w = fine.node_weight(NodeId::new(v));
        if mate[v] != UNMATCHED {
            let m = mate[v] as usize;
            map[m] = id;
            w += fine.node_weight(NodeId::new(m));
        }
        coarse_weight.push(w);
    }
    (map, coarse_weight)
}

/// Maps one net's pins into coarse ids, appending the sorted-and-deduped
/// pin set to `pin_buf` and its record to `net_recs`; nets that collapse
/// inside one supernode are dropped.
fn map_one_net(
    fine: &Hypergraph,
    map: &[u32],
    net: NetId,
    pin_buf: &mut Vec<u32>,
    net_recs: &mut Vec<(u32, u32, f64)>,
) {
    let start = pin_buf.len();
    pin_buf.extend(fine.pins_of(net).iter().map(|&v| map[v.index()]));
    pin_buf[start..].sort_unstable();
    let mut len = 0;
    for i in start..pin_buf.len() {
        if len == 0 || pin_buf[start + len - 1] != pin_buf[i] {
            pin_buf[start + len] = pin_buf[i];
            len += 1;
        }
    }
    pin_buf.truncate(start + len);
    if len < 2 {
        pin_buf.truncate(start);
        return;
    }
    net_recs.push((start as u32, len as u32, fine.net_weight(net)));
}

/// Coarse nets: map every pin set into coarse ids, drop nets that
/// collapse inside one supernode. The merge of identical pin sets happens
/// later in [`build_from_records`]; here the records are built by one
/// sequential sweep into the flat scratch buffers — no per-net
/// allocation, no hash map.
fn fill_net_records_seq(fine: &Hypergraph, map: &[u32], scratch: &mut CoarsenScratch) {
    let pin_buf = &mut scratch.pin_buf;
    let net_recs = &mut scratch.net_recs;
    pin_buf.clear();
    net_recs.clear();
    for net in fine.nets() {
        map_one_net(fine, map, net, pin_buf, net_recs);
    }
}

/// The chunked-parallel variant of [`fill_net_records_seq`]: each net
/// chunk maps into chunk-local buffers, concatenated in chunk order with
/// an offset fixup — byte-identical buffer contents for every policy.
fn fill_net_records_par(
    fine: &Hypergraph,
    map: &[u32],
    scratch: &mut CoarsenScratch,
    policy: ParallelPolicy,
) {
    let chunks = map_chunks(policy, fine.num_nets(), SYNC_CHUNK, |_, range| {
        let mut pins: Vec<u32> = Vec::new();
        let mut recs: Vec<(u32, u32, f64)> = Vec::new();
        for ni in range {
            map_one_net(fine, map, NetId::new(ni), &mut pins, &mut recs);
        }
        (pins, recs)
    });
    let pin_buf = &mut scratch.pin_buf;
    let net_recs = &mut scratch.net_recs;
    pin_buf.clear();
    net_recs.clear();
    for (pins, recs) in chunks {
        let base = pin_buf.len() as u32;
        pin_buf.extend_from_slice(&pins);
        net_recs.extend(recs.into_iter().map(|(s, l, w)| (s + base, l, w)));
    }
}

/// Merges identical pin sets (summed cost) and builds the coarse circuit
/// from the filled scratch records. The lexicographic sort makes
/// identical pin sets adjacent; the order is deterministic because the
/// record array itself is.
fn build_from_records(coarse_weight: Vec<f64>, scratch: &mut CoarsenScratch) -> Hypergraph {
    let coarse_n = coarse_weight.len();
    let pin_buf = &scratch.pin_buf;
    let net_recs = &scratch.net_recs;
    let rec_pins = |&(start, len, _): &(u32, u32, f64)| -> &[u32] {
        &pin_buf[start as usize..(start + len) as usize]
    };
    let sort_idx = &mut scratch.sort_idx;
    sort_idx.clear();
    sort_idx.extend(0..net_recs.len() as u32);
    sort_idx.sort_unstable_by(|&a, &b| {
        rec_pins(&net_recs[a as usize]).cmp(rec_pins(&net_recs[b as usize]))
    });

    let mut builder = HypergraphBuilder::new(coarse_n);
    builder
        .set_node_weights(coarse_weight)
        .expect("summed positive weights stay positive");
    let mut i = 0;
    while i < sort_idx.len() {
        let pins = rec_pins(&net_recs[sort_idx[i] as usize]);
        let mut weight = net_recs[sort_idx[i] as usize].2;
        let mut j = i + 1;
        while j < sort_idx.len() && rec_pins(&net_recs[sort_idx[j] as usize]) == pins {
            weight += net_recs[sort_idx[j] as usize].2;
            j += 1;
        }
        builder
            .add_net(weight, pins.iter().map(|&p| p as usize))
            .expect("mapped pins are in range");
        i = j;
    }
    builder.build().expect("coarse circuit is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::CutState;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(200, 220, 740).with_seed(seed)).unwrap()
    }

    #[test]
    fn coarsening_shrinks_and_conserves_weight() {
        let g = circuit(4);
        let level = coarsen(&g, 32, 1);
        assert!(level.coarse.num_nodes() < g.num_nodes());
        assert!(level.coarse.num_nodes() >= g.num_nodes() / 2);
        assert!(
            (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9,
            "node weight must be conserved"
        );
        assert_eq!(level.fine_nodes(), g.num_nodes());
    }

    #[test]
    fn matching_is_a_valid_pairing() {
        let g = circuit(5);
        let level = coarsen(&g, 32, 2);
        // Every coarse node has 1 or 2 fine constituents.
        let mut count = vec![0usize; level.coarse.num_nodes()];
        for v in g.nodes() {
            count[level.coarse_of(v).index()] += 1;
        }
        assert!(count.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn projection_is_cut_exact() {
        let g = circuit(6);
        let level = coarsen(&g, 32, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let coarse_part = Bipartition::random(level.coarse.num_nodes(), &mut rng);
            let coarse_cut = CutState::new(&level.coarse, &coarse_part).cut_cost();
            let fine_part = level.project(&coarse_part);
            let fine_cut = CutState::new(&g, &fine_part).cut_cost();
            assert!(
                (coarse_cut - fine_cut).abs() < 1e-9,
                "coarse {coarse_cut} vs fine {fine_cut}"
            );
        }
    }

    #[test]
    fn repeated_coarsening_terminates() {
        let mut g = circuit(7);
        for _ in 0..20 {
            if g.num_nodes() <= 16 {
                break;
            }
            let level = coarsen(&g, 32, 11);
            assert!(level.coarse.num_nodes() <= g.num_nodes());
            g = level.coarse;
        }
        assert!(g.num_nodes() <= 120);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = circuit(8);
        let a = coarsen(&g, 32, 5);
        let b = coarsen(&g, 32, 5);
        assert_eq!(a.coarse, b.coarse);
        let c = coarsen(&g, 32, 6);
        // Different seed, almost surely different matching.
        assert_ne!(a.coarse, c.coarse);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_scratch() {
        // One scratch threaded through a chain of levels must produce the
        // same circuits as a fresh scratch per call.
        let mut scratch = CoarsenScratch::default();
        let mut g = circuit(12);
        for level_seed in 0..4 {
            let reused = coarsen_with(&g, 32, level_seed, &mut scratch);
            let fresh = coarsen(&g, 32, level_seed);
            assert_eq!(reused.coarse, fresh.coarse, "level seed {level_seed}");
            assert_eq!(reused.map, fresh.map);
            g = reused.coarse;
        }
    }

    #[test]
    fn merged_nets_sum_their_weights() {
        // Doubled intra-pair nets dominate the connectivity scores, so
        // every visit order matches (0,1) and (2,3). The two parallel
        // cross nets then collapse into one coarse net of summed weight.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [0, 3]).unwrap();
        let g = b.build().unwrap();
        for seed in 0..4 {
            let level = coarsen(&g, 32, seed);
            assert_eq!(level.coarse.num_nodes(), 2);
            // The two supernodes are joined by exactly one surviving net
            // carrying both cross nets' weight.
            assert_eq!(level.coarse.num_nets(), 1);
            assert!((level.coarse.total_net_weight() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sync_matching_is_policy_independent() {
        let g = circuit(14);
        let baseline = coarsen_sync(&g, 32, 7, ParallelPolicy::Sequential);
        for policy in [
            ParallelPolicy::Threads(1),
            ParallelPolicy::Threads(2),
            ParallelPolicy::Threads(4),
            ParallelPolicy::Auto,
        ] {
            let level = coarsen_sync(&g, 32, 7, policy);
            assert_eq!(level.coarse, baseline.coarse, "{policy:?}");
            assert_eq!(level.map, baseline.map, "{policy:?}");
        }
    }

    #[test]
    fn sync_matching_is_a_valid_cut_exact_pairing() {
        let g = circuit(15);
        let level = coarsen_sync(&g, 32, 3, ParallelPolicy::Threads(2));
        assert!(level.coarse.num_nodes() < g.num_nodes());
        assert!(
            (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9,
            "node weight must be conserved"
        );
        let mut count = vec![0usize; level.coarse.num_nodes()];
        for v in g.nodes() {
            count[level.coarse_of(v).index()] += 1;
        }
        assert!(count.iter().all(|&c| (1..=2).contains(&c)));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let coarse_part = Bipartition::random(level.coarse.num_nodes(), &mut rng);
            let coarse_cut = CutState::new(&level.coarse, &coarse_part).cut_cost();
            let fine_cut = CutState::new(&g, &level.project(&coarse_part)).cut_cost();
            assert!((coarse_cut - fine_cut).abs() < 1e-9);
        }
    }

    #[test]
    fn sync_matching_is_deterministic_in_seed_and_reuses_scratch() {
        let g = circuit(16);
        let mut scratch = CoarsenScratch::default();
        let a = coarsen_sync_with(&g, 32, 5, ParallelPolicy::Threads(2), &mut scratch);
        let b = coarsen_sync(&g, 32, 5, ParallelPolicy::Threads(2));
        assert_eq!(a.coarse, b.coarse);
        assert_eq!(a.map, b.map);
        // Different rank seed, almost surely a different resolution order.
        let c = coarsen_sync(&g, 32, 6, ParallelPolicy::Threads(2));
        assert_ne!(a.coarse, c.coarse);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn project_checks_sizes() {
        let g = circuit(9);
        let level = coarsen(&g, 32, 1);
        let wrong = Bipartition::from_sides(vec![Side::A; level.coarse.num_nodes() + 1]);
        let _ = level.project(&wrong);
    }
}
