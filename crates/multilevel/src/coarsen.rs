//! Heavy-edge matching coarsening.

use prop_core::{Bipartition, Side};
use prop_netlist::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const UNMATCHED: u32 = u32::MAX;

/// One coarsening level: the fine circuit, its coarsened image, and the
/// node mapping between them.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    fine: Hypergraph,
    /// The coarsened circuit. Supernode weights are the summed weights of
    /// their constituents; nets internal to a supernode are dropped and
    /// identical coarse nets are merged with summed cost, which makes
    /// coarsening *cut-exact* (see [`CoarseLevel::project`]).
    pub coarse: Hypergraph,
    /// `map[fine_node] = coarse_node`.
    map: Vec<u32>,
}

impl CoarseLevel {
    /// The circuit this level coarsened from.
    pub fn fine_view(&self) -> &Hypergraph {
        &self.fine
    }

    /// The coarse image of a fine node.
    pub fn coarse_of(&self, fine: NodeId) -> NodeId {
        NodeId::new(self.map[fine.index()] as usize)
    }

    /// Projects a partition of the coarse circuit onto the fine circuit:
    /// every fine node takes its supernode's side. The projected partition
    /// has **exactly** the same cut cost, because every dropped net was
    /// internal to one supernode (hence internal to one side) and merged
    /// nets are cut simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not match the coarse circuit.
    pub fn project(&self, coarse_partition: &Bipartition) -> Bipartition {
        assert_eq!(
            coarse_partition.len(),
            self.coarse.num_nodes(),
            "partition does not match the coarse circuit"
        );
        let sides: Vec<Side> = self
            .map
            .iter()
            .map(|&c| coarse_partition.side(NodeId::new(c as usize)))
            .collect();
        Bipartition::from_sides(sides)
    }
}

/// Coarsens `fine` by one level of heavy-edge matching: each node is
/// matched with its most strongly connected unmatched neighbor
/// (connectivity = Σ `w/(q−1)` over shared nets of size ≤ `max_match_net`),
/// visiting nodes in a seeded random order. Unmatchable nodes survive as
/// singleton supernodes.
pub fn coarsen(fine: &Hypergraph, max_match_net: usize, seed: u64) -> CoarseLevel {
    let n = fine.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1357_9bdf_2468_ace0);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }

    let mut mate = vec![UNMATCHED; n];
    // Scratch accumulation of connectivity scores, epoch-marked.
    let mut score = vec![0.0f64; n];
    let mut mark = vec![u32::MAX; n];
    for (epoch, &u) in order.iter().enumerate() {
        if mate[u] != UNMATCHED {
            continue;
        }
        let epoch = epoch as u32;
        let u_id = NodeId::new(u);
        let mut best: Option<(f64, usize)> = None;
        for &net in fine.nets_of(u_id) {
            let q = fine.net_size(net);
            if !(2..=max_match_net).contains(&q) {
                continue;
            }
            let w = fine.net_weight(net) / (q as f64 - 1.0);
            for &x in fine.pins_of(net) {
                let xi = x.index();
                if xi == u || mate[xi] != UNMATCHED {
                    continue;
                }
                if mark[xi] != epoch {
                    mark[xi] = epoch;
                    score[xi] = 0.0;
                }
                score[xi] += w;
                let candidate = (score[xi], xi);
                let better = match best {
                    None => true,
                    Some((bs, bx)) => {
                        candidate.0 > bs
                            || (candidate.0 == bs && {
                                // Tie-break: lighter combined supernode,
                                // then smaller index — deterministic and
                                // weight-balancing.
                                let cw = fine.node_weight(x);
                                let bw = fine.node_weight(NodeId::new(bx));
                                cw < bw || (cw == bw && xi < bx)
                            })
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        if let Some((_, v)) = best {
            mate[u] = v as u32;
            mate[v] = u as u32;
        }
    }

    // Assign coarse ids: matched pairs share one id, singletons keep one.
    let mut map = vec![UNMATCHED; n];
    let mut coarse_weight: Vec<f64> = Vec::new();
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        let id = coarse_weight.len() as u32;
        map[v] = id;
        let mut w = fine.node_weight(NodeId::new(v));
        if mate[v] != UNMATCHED {
            let m = mate[v] as usize;
            map[m] = id;
            w += fine.node_weight(NodeId::new(m));
        }
        coarse_weight.push(w);
    }
    let coarse_n = coarse_weight.len();

    // Coarse nets: drop nets internal to a supernode, merge identical
    // pin sets with summed cost.
    let mut merged: HashMap<Vec<u32>, f64> = HashMap::new();
    let mut pins_scratch: Vec<u32> = Vec::new();
    for net in fine.nets() {
        pins_scratch.clear();
        pins_scratch.extend(fine.pins_of(net).iter().map(|&v| map[v.index()]));
        pins_scratch.sort_unstable();
        pins_scratch.dedup();
        if pins_scratch.len() < 2 {
            continue;
        }
        *merged.entry(pins_scratch.clone()).or_insert(0.0) += fine.net_weight(net);
    }
    // Deterministic net order (hash maps iterate in arbitrary order).
    let mut nets: Vec<(Vec<u32>, f64)> = merged.into_iter().collect();
    nets.sort_unstable_by(|a, b| a.0.cmp(&b.0));

    let mut builder = HypergraphBuilder::new(coarse_n);
    builder
        .set_node_weights(coarse_weight)
        .expect("summed positive weights stay positive");
    for (pins, weight) in nets {
        builder
            .add_net(weight, pins.iter().map(|&p| p as usize))
            .expect("mapped pins are in range");
    }
    let coarse = builder.build().expect("coarse circuit is well-formed");
    CoarseLevel {
        fine: fine.clone(),
        coarse,
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::CutState;
    use prop_netlist::generate::{generate, GeneratorConfig};

    fn circuit(seed: u64) -> Hypergraph {
        generate(&GeneratorConfig::new(200, 220, 740).with_seed(seed)).unwrap()
    }

    #[test]
    fn coarsening_shrinks_and_conserves_weight() {
        let g = circuit(4);
        let level = coarsen(&g, 32, 1);
        assert!(level.coarse.num_nodes() < g.num_nodes());
        assert!(level.coarse.num_nodes() >= g.num_nodes() / 2);
        assert!(
            (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9,
            "node weight must be conserved"
        );
    }

    #[test]
    fn matching_is_a_valid_pairing() {
        let g = circuit(5);
        let level = coarsen(&g, 32, 2);
        // Every coarse node has 1 or 2 fine constituents.
        let mut count = vec![0usize; level.coarse.num_nodes()];
        for v in g.nodes() {
            count[level.coarse_of(v).index()] += 1;
        }
        assert!(count.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn projection_is_cut_exact() {
        let g = circuit(6);
        let level = coarsen(&g, 32, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let coarse_part = Bipartition::random(level.coarse.num_nodes(), &mut rng);
            let coarse_cut = CutState::new(&level.coarse, &coarse_part).cut_cost();
            let fine_part = level.project(&coarse_part);
            let fine_cut = CutState::new(&g, &fine_part).cut_cost();
            assert!(
                (coarse_cut - fine_cut).abs() < 1e-9,
                "coarse {coarse_cut} vs fine {fine_cut}"
            );
        }
    }

    #[test]
    fn repeated_coarsening_terminates() {
        let mut g = circuit(7);
        for _ in 0..20 {
            if g.num_nodes() <= 16 {
                break;
            }
            let level = coarsen(&g, 32, 11);
            assert!(level.coarse.num_nodes() <= g.num_nodes());
            g = level.coarse;
        }
        assert!(g.num_nodes() <= 120);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = circuit(8);
        let a = coarsen(&g, 32, 5);
        let b = coarsen(&g, 32, 5);
        assert_eq!(a.coarse, b.coarse);
        let c = coarsen(&g, 32, 6);
        // Different seed, almost surely different matching.
        assert_ne!(a.coarse, c.coarse);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn project_checks_sizes() {
        let g = circuit(9);
        let level = coarsen(&g, 32, 1);
        let wrong = Bipartition::from_sides(vec![Side::A; level.coarse.num_nodes() + 1]);
        let _ = level.project(&wrong);
    }
}
