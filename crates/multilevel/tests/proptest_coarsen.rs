//! Property tests of the coarsening invariants on arbitrary hypergraphs.

use proptest::prelude::*;
use prop_core::{Bipartition, CutState, Side};
use prop_multilevel::coarsen::coarsen;
use prop_netlist::{Hypergraph, HypergraphBuilder, NodeId};

fn arb_graph() -> impl Strategy<Value = Hypergraph> {
    (4usize..50).prop_flat_map(|n| {
        let nets = proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 1..80);
        let weights = proptest::collection::vec(1u32..5, n);
        (nets, weights).prop_map(move |(nets, weights)| {
            let mut b = HypergraphBuilder::new(n);
            for pins in nets {
                b.add_net(1.0, pins).expect("valid pins");
            }
            b.set_node_weights(weights.into_iter().map(f64::from).collect())
                .expect("positive");
            b.build().expect("valid graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coarsening conserves total node weight, produces supernodes of
    /// 1–2 constituents, and never grows the circuit.
    #[test]
    fn coarsening_invariants(g in arb_graph(), seed in any::<u64>()) {
        let level = coarsen(&g, 32, seed);
        prop_assert!(level.coarse.num_nodes() <= g.num_nodes());
        prop_assert!(level.coarse.num_nodes() >= g.num_nodes().div_ceil(2));
        prop_assert!(
            (level.coarse.total_node_weight() - g.total_node_weight()).abs() < 1e-9
        );
        let mut constituents = vec![0usize; level.coarse.num_nodes()];
        for v in g.nodes() {
            constituents[level.coarse_of(v).index()] += 1;
        }
        prop_assert!(constituents.iter().all(|&c| (1..=2).contains(&c)));
    }

    /// Projection is cut-exact for every partition of the coarse circuit.
    #[test]
    fn projection_is_cut_exact(g in arb_graph(), seed in any::<u64>(), mask in any::<u64>()) {
        let level = coarsen(&g, 32, seed);
        let cn = level.coarse.num_nodes();
        let sides: Vec<Side> = (0..cn)
            .map(|i| if (mask >> (i % 64)) & 1 == 1 { Side::A } else { Side::B })
            .collect();
        let coarse_part = Bipartition::from_sides(sides);
        let coarse_cut = CutState::new(&level.coarse, &coarse_part).cut_cost();
        let fine_part = level.project(&coarse_part);
        let fine_cut = CutState::new(&g, &fine_part).cut_cost();
        prop_assert!((coarse_cut - fine_cut).abs() < 1e-9);
        // Every fine node lands on its supernode's side.
        for v in g.nodes() {
            prop_assert_eq!(
                fine_part.side(v),
                coarse_part.side(NodeId::new(level.coarse_of(v).index()))
            );
        }
    }
}
