//! Fixed-width table rendering and the paper's improvement metric.

/// The paper's improvement percentage: `(theirs − ours) / max(·) × 100`
/// ("cutset improvement / larger cut set"). Positive when `ours` is the
/// smaller (better) cut.
pub fn improvement_pct(ours: f64, theirs: f64) -> f64 {
    let larger = ours.max(theirs);
    if larger == 0.0 {
        0.0
    } else {
        (theirs - ours) / larger * 100.0
    }
}

/// A simple fixed-width table printer for experiment output.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header has columns.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.header.len()
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table: first column left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats a cut value: integral cuts print without decimals.
pub fn fmt_cut(cut: f64) -> String {
    if (cut - cut.round()).abs() < 1e-9 {
        format!("{}", cut.round() as i64)
    } else {
        format!("{cut:.2}")
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(pct: f64) -> String {
    format!("{pct:.1}")
}

/// Formats seconds with millisecond resolution.
pub fn fmt_secs(secs: f64) -> String {
    format!("{secs:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_convention() {
        // balu: MELO 28 vs PROP 27 → 3.6%.
        let pct = improvement_pct(27.0, 28.0);
        assert!((pct - 3.571).abs() < 0.01);
        // Negative when PROP is worse: s15850 MELO 52 vs PROP 65 → −20.0%.
        let pct = improvement_pct(65.0, 52.0);
        assert!((pct + 20.0).abs() < 0.01);
        assert_eq!(improvement_pct(0.0, 0.0), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Circuit", "FM", "PROP"]);
        t.push_row(["balu", "49", "20"]);
        t.push_row(["industry2", "1698", "242"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Circuit"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("industry2"));
        // Right alignment: the cut values end at the same column.
        assert!(lines[2].ends_with("20"));
        assert!(lines[3].ends_with("242"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn long_rows_panic() {
        let mut t = Table::new(["a"]);
        t.push_row(["x", "y"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_cut(27.0), "27");
        assert_eq!(fmt_cut(27.25), "27.25");
        assert_eq!(fmt_pct(3.571), "3.6");
        assert_eq!(fmt_secs(0.8645), "0.865");
        assert_eq!(fmt_secs(1.0), "1.000");
    }
}
