//! Timed method runners shared by the experiment binaries.

use prop_core::{BalanceConstraint, ParallelPolicy, Partitioner, Prop, PropConfig, RunResult};
use prop_fm::{FmBucket, FmTree, La};
use prop_multilevel::{MlRefiner, Multilevel, MultilevelConfig};
use prop_netlist::Hypergraph;
use prop_spectral::{Eig1, GlobalPartitioner, MeloStyle, ParaboliStyle, WindowStyle};
use std::time::Instant;

/// One method's outcome on one circuit.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodOutcome {
    /// Method display name (e.g. `"FM100"`).
    pub method: String,
    /// Best cut over all runs.
    pub cut: f64,
    /// Wall-clock seconds per run.
    pub seconds_per_run: f64,
    /// Number of runs.
    pub runs: usize,
}

fn outcome(method: impl Into<String>, result: &RunResult, secs: f64, runs: usize) -> MethodOutcome {
    MethodOutcome {
        method: method.into(),
        cut: result.cut_cost,
        seconds_per_run: secs / runs.max(1) as f64,
        runs,
    }
}

/// Runs an iterative improver for `runs` seeded runs and times it.
pub fn run_iterative(
    name: &str,
    partitioner: &dyn Partitioner,
    graph: &Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
) -> MethodOutcome {
    run_iterative_with(name, partitioner, graph, balance, runs, ParallelPolicy::Sequential)
}

/// Like [`run_iterative`], fanning the runs out over the worker threads
/// `policy` resolves to. The reported cut is bit-identical for every
/// policy; only the wall-clock time changes.
pub fn run_iterative_with(
    name: &str,
    partitioner: &dyn Partitioner,
    graph: &Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    policy: ParallelPolicy,
) -> MethodOutcome {
    let start = Instant::now();
    let result = partitioner
        .run_multi_parallel(graph, balance, runs, 0, policy)
        .expect("non-empty graph and runs >= 1");
    outcome(name, &result, start.elapsed().as_secs_f64(), runs)
}

/// Runs a one-shot global partitioner and times it.
pub fn run_global(
    name: &str,
    partitioner: &dyn GlobalPartitioner,
    graph: &Hypergraph,
    balance: BalanceConstraint,
) -> MethodOutcome {
    let start = Instant::now();
    let result = partitioner
        .partition(graph, balance)
        .expect("non-empty graph");
    outcome(name, &result, start.elapsed().as_secs_f64(), 1)
}

/// The PROP instance used throughout the experiments: the paper's
/// parameters with the calibrated probability floor (see
/// [`PropConfig::calibrated`]).
pub fn prop() -> Prop {
    Prop::new(PropConfig::calibrated())
}

/// The paper's exact parameterisation (`p_min = 0.4`), used by the
/// ablation experiment.
pub fn prop_paper() -> Prop {
    Prop::new(PropConfig::default())
}

/// FM with the bucket structure (the paper's baseline FM).
pub fn fm() -> FmBucket {
    FmBucket::default()
}

/// The standard multilevel V-cycle engine (heavy-edge coarsening with a
/// size-adaptive PROP/FM refiner) at its default knobs.
pub fn ml() -> Multilevel<MlRefiner> {
    Multilevel::standard(MultilevelConfig::default())
}

/// The deterministic intra-parallel multilevel engine: the same V-cycle
/// shape as [`ml`], but with parallel propose/resolve coarsening and
/// synchronous-round refinement inside each run, at `threads` workers.
/// The result is bit-identical for every `threads >= 1` (and differs
/// from [`ml`], which runs the classic sequential algorithms).
pub fn ml_intra(threads: usize) -> Multilevel<MlRefiner> {
    Multilevel::standard(MultilevelConfig {
        intra: ParallelPolicy::Threads(threads),
        ..MultilevelConfig::default()
    })
}

/// The multilevel engine of [`ml`] with flow-based corridor refinement
/// enabled at its default corridor size: after move-based refinement at
/// each uncoarsening level, a min-cut over a slack-bounded corridor
/// around the cut is solved exactly and accepted iff strictly better.
pub fn ml_flow() -> Multilevel<MlRefiner> {
    Multilevel::standard(MultilevelConfig {
        flow: prop_multilevel::FlowConfig {
            enabled: true,
            ..prop_multilevel::FlowConfig::default()
        },
        ..MultilevelConfig::default()
    })
}

/// FM with the tree structure (the paper's weighted-cost variant).
pub fn fm_tree() -> FmTree {
    FmTree::default()
}

/// LA-k.
pub fn la(k: usize) -> La {
    La::new(k)
}

/// EIG1.
pub fn eig1() -> Eig1 {
    Eig1::default()
}

/// MELO-style.
pub fn melo() -> MeloStyle {
    MeloStyle::default()
}

/// PARABOLI-style.
pub fn paraboli() -> ParaboliStyle {
    ParaboliStyle::default()
}

/// WINDOW-style with the given number of ordering/FM runs.
pub fn window(runs: usize) -> WindowStyle {
    WindowStyle { runs, seed: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netlist::generate::{generate, GeneratorConfig};

    #[test]
    fn iterative_and_global_runners_report_consistent_outcomes() {
        let g = generate(&GeneratorConfig::new(60, 66, 220).with_seed(5)).unwrap();
        let balance = BalanceConstraint::bisection(60);
        let fm_out = run_iterative("FM3", &fm(), &g, balance, 3);
        assert_eq!(fm_out.runs, 3);
        assert!(fm_out.cut >= 0.0);
        assert!(fm_out.seconds_per_run >= 0.0);
        let eig_out = run_global("EIG1", &eig1(), &g, balance);
        assert_eq!(eig_out.runs, 1);
        assert_eq!(eig_out.method, "EIG1");
    }

    #[test]
    fn method_constructors_have_paper_settings() {
        assert_eq!(prop().config().p_min, 0.85);
        assert_eq!(prop_paper().config().p_min, 0.4);
        assert_eq!(la(3).lookahead(), 3);
        assert_eq!(window(20).runs, 20);
    }
}
