//! Experiment harness for the DAC-96 PROP reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | Binary    | Reproduces | Protocol |
//! |-----------|------------|----------|
//! | `figure1` | Figure 1   | FM gains, LA-3 vectors, PROP 2nd-iteration gains on the worked example |
//! | `table1`  | Table 1    | node/net/pin characteristics of the 16 synthetic proxy circuits |
//! | `table2`  | Table 2    | 50-50% cutsets: FM100/40/20, LA-2, LA-3, WINDOW, PROP(20) |
//! | `table3`  | Table 3    | 45-55% cutsets: MELO, PARABOLI, EIG1, PROP(20) |
//! | `table4`  | Table 4    | CPU seconds per run for every method |
//! | `ablation`| (ours)     | PROP parameter sensitivity |
//!
//! All binaries accept `--quick` (smallest four circuits, reduced run
//! counts) and `--circuit <name>` (a single circuit). Runs are entirely
//! deterministic: circuits are seeded by name, initial partitions by the
//! run index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod methods;
pub mod report;

use prop_netlist::suite::{self, CircuitSpec};

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Restrict to the four smallest circuits and scale run counts down.
    pub quick: bool,
    /// Restrict to a single named circuit.
    pub circuit: Option<String>,
    /// Override the number of PROP/FM20/LA runs (Table-2 columns scale
    /// proportionally).
    pub runs: Option<usize>,
}

impl Options {
    /// Parses `--quick`, `--circuit <name>`, and `--runs <n>` from the
    /// process arguments. Unknown arguments abort with a usage message.
    pub fn from_args() -> Options {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--circuit" => {
                    opts.circuit = Some(args.next().unwrap_or_else(|| usage("--circuit <name>")));
                }
                "--runs" => {
                    let v = args.next().unwrap_or_else(|| usage("--runs <n>"));
                    opts.runs = Some(v.parse().unwrap_or_else(|_| usage("--runs <n>")));
                }
                other => usage(&format!("unknown argument {other:?}")),
            }
        }
        opts
    }

    /// The circuits this invocation covers.
    pub fn circuits(&self) -> Vec<CircuitSpec> {
        if let Some(name) = &self.circuit {
            match suite::by_name(name) {
                Some(spec) => vec![spec],
                None => usage(&format!(
                    "unknown circuit {name:?}; known: {}",
                    suite::table1()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            }
        } else if self.quick {
            suite::small_suite()
        } else {
            suite::table1()
        }
    }

    /// Scales a paper run count (e.g. 20) by the `--quick`/`--runs`
    /// settings.
    pub fn scaled_runs(&self, paper_runs: usize) -> usize {
        let base = match self.runs {
            Some(r) => r * paper_runs / 20,
            None => paper_runs,
        };
        let base = if self.quick { base.div_ceil(4) } else { base };
        base.max(1)
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: <bin> [--quick] [--circuit <name>] [--runs <n>]");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_cover_full_suite() {
        let o = Options::default();
        assert_eq!(o.circuits().len(), 16);
        assert_eq!(o.scaled_runs(20), 20);
        assert_eq!(o.scaled_runs(100), 100);
    }

    #[test]
    fn quick_scales_down() {
        let o = Options {
            quick: true,
            ..Options::default()
        };
        assert_eq!(o.circuits().len(), 4);
        assert_eq!(o.scaled_runs(20), 5);
        assert_eq!(o.scaled_runs(100), 25);
        // Never zero.
        assert_eq!(o.scaled_runs(1), 1);
    }

    #[test]
    fn runs_override_scales_proportionally() {
        let o = Options {
            runs: Some(10),
            ..Options::default()
        };
        assert_eq!(o.scaled_runs(20), 10);
        assert_eq!(o.scaled_runs(100), 50);
    }

    #[test]
    fn named_circuit_selection() {
        let o = Options {
            circuit: Some("balu".into()),
            ..Options::default()
        };
        let c = o.circuits();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].name, "balu");
    }
}
