//! Experiment harness for the DAC-96 PROP reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | Binary    | Reproduces | Protocol |
//! |-----------|------------|----------|
//! | `figure1` | Figure 1   | FM gains, LA-3 vectors, PROP 2nd-iteration gains on the worked example |
//! | `table1`  | Table 1    | node/net/pin characteristics of the 16 synthetic proxy circuits |
//! | `table2`  | Table 2    | 50-50% cutsets: FM100/40/20, LA-2, LA-3, WINDOW, PROP(20) |
//! | `table3`  | Table 3    | 45-55% cutsets: MELO, PARABOLI, EIG1, PROP(20) |
//! | `table4`  | Table 4    | CPU seconds per run for every method |
//! | `ablation`| (ours)     | PROP parameter sensitivity |
//!
//! All binaries accept `--quick` (smallest four circuits, reduced run
//! counts) and `--circuit <name>` (a single circuit). Runs are entirely
//! deterministic: circuits are seeded by name, initial partitions by the
//! run index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod methods;
pub mod report;

use prop_core::ParallelPolicy;
use prop_netlist::suite::{self, CircuitSpec};

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Restrict to the four smallest circuits and scale run counts down.
    pub quick: bool,
    /// Restrict to a single named circuit.
    pub circuit: Option<String>,
    /// Override the number of PROP/FM20/LA runs (Table-2 columns scale
    /// proportionally).
    pub runs: Option<usize>,
    /// Worker threads for multi-run methods: `None` keeps the sequential
    /// harness, `Some(0)` auto-detects, `Some(n)` uses exactly `n`.
    /// Results are bit-identical across all settings.
    pub threads: Option<usize>,
}

impl Options {
    /// Parses `--quick`, `--circuit <name>`, `--runs <n>`, and
    /// `--threads <n>` from the process arguments. Unknown arguments abort
    /// with a usage message.
    pub fn from_args() -> Options {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Options::parse(&args).unwrap_or_else(|message| usage(&message))
    }

    /// Parses an argument slice (without the program name). Returns a
    /// human-readable message on malformed input.
    ///
    /// # Errors
    ///
    /// Returns the message to print when a flag is unknown, a flag's value
    /// is missing, or a numeric value does not parse.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut args = args.iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--circuit" => {
                    opts.circuit =
                        Some(args.next().ok_or("--circuit requires a value: --circuit <name>")?.clone());
                }
                "--runs" => {
                    let v = args.next().ok_or("--runs requires a value: --runs <n>")?;
                    opts.runs = Some(
                        v.parse()
                            .map_err(|_| format!("--runs expects a number, got {v:?}"))?,
                    );
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads requires a value: --threads <n>")?;
                    opts.threads = Some(
                        v.parse()
                            .map_err(|_| format!("--threads expects a number, got {v:?}"))?,
                    );
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Like [`Options::parse`], but collects arguments this parser does
    /// not recognise into a leftover list instead of rejecting them, so a
    /// binary can layer its own flags on top of the shared set. A shared
    /// flag's *value* is still consumed by the shared parser; only whole
    /// unknown flags (and their values, which the caller must consume) are
    /// left over.
    ///
    /// # Errors
    ///
    /// Returns the message to print when a shared flag's value is missing
    /// or does not parse.
    pub fn parse_known(args: &[String]) -> Result<(Options, Vec<String>), String> {
        let mut known = Vec::new();
        let mut leftover = Vec::new();
        let mut args = args.iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => known.push(arg.clone()),
                "--circuit" | "--runs" | "--threads" => {
                    known.push(arg.clone());
                    if let Some(v) = args.next() {
                        known.push(v.clone());
                    }
                }
                _ => leftover.push(arg.clone()),
            }
        }
        Ok((Options::parse(&known)?, leftover))
    }

    /// The parallelism policy the `--threads` setting resolves to.
    pub fn policy(&self) -> ParallelPolicy {
        match self.threads {
            None => ParallelPolicy::Sequential,
            Some(0) => ParallelPolicy::Auto,
            Some(n) => ParallelPolicy::Threads(n),
        }
    }

    /// The circuits this invocation covers.
    pub fn circuits(&self) -> Vec<CircuitSpec> {
        if let Some(name) = &self.circuit {
            match suite::by_name(name) {
                Some(spec) => vec![spec],
                None => usage(&format!(
                    "unknown circuit {name:?}; known: {}",
                    suite::table1()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            }
        } else if self.quick {
            suite::small_suite()
        } else {
            suite::table1()
        }
    }

    /// Scales a paper run count (e.g. 20) by the `--quick`/`--runs`
    /// settings. An explicit `--runs <n>` is authoritative: the paper's
    /// column ratios still apply (`n * paper_runs / 20`), but `--quick`
    /// does not divide it further, so `--quick --runs 5` really does 5
    /// runs of a 20-run protocol — what the smoke gates rely on.
    pub fn scaled_runs(&self, paper_runs: usize) -> usize {
        match self.runs {
            Some(r) => (r * paper_runs / 20).max(1),
            None if self.quick => paper_runs.div_ceil(4).max(1),
            None => paper_runs.max(1),
        }
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: <bin> [--quick] [--circuit <name>] [--runs <n>] [--threads <n>]");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_cover_full_suite() {
        let o = Options::default();
        assert_eq!(o.circuits().len(), 16);
        assert_eq!(o.scaled_runs(20), 20);
        assert_eq!(o.scaled_runs(100), 100);
    }

    #[test]
    fn quick_scales_down() {
        let o = Options {
            quick: true,
            ..Options::default()
        };
        assert_eq!(o.circuits().len(), 4);
        assert_eq!(o.scaled_runs(20), 5);
        assert_eq!(o.scaled_runs(100), 25);
        // Never zero.
        assert_eq!(o.scaled_runs(1), 1);
    }

    #[test]
    fn runs_override_scales_proportionally() {
        let o = Options {
            runs: Some(10),
            ..Options::default()
        };
        assert_eq!(o.scaled_runs(20), 10);
        assert_eq!(o.scaled_runs(100), 50);
    }

    #[test]
    fn explicit_runs_is_not_divided_by_quick() {
        let o = Options {
            quick: true,
            runs: Some(5),
            ..Options::default()
        };
        assert_eq!(o.scaled_runs(20), 5);
        assert_eq!(o.scaled_runs(100), 25);
        // Never zero, even for tiny columns.
        assert_eq!(o.scaled_runs(1), 1);
    }

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn parse_accepts_all_flags() {
        let o = parse(&["--quick", "--circuit", "balu", "--runs", "10", "--threads", "4"])
            .unwrap();
        assert!(o.quick);
        assert_eq!(o.circuit.as_deref(), Some("balu"));
        assert_eq!(o.runs, Some(10));
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.policy(), ParallelPolicy::Threads(4));
    }

    #[test]
    fn parse_threads_policies() {
        assert_eq!(parse(&[]).unwrap().policy(), ParallelPolicy::Sequential);
        assert_eq!(
            parse(&["--threads", "0"]).unwrap().policy(),
            ParallelPolicy::Auto
        );
        assert_eq!(
            parse(&["--threads", "7"]).unwrap().policy(),
            ParallelPolicy::Threads(7)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("--frobnicate"));
        assert!(parse(&["--runs"]).unwrap_err().contains("--runs"));
        assert!(parse(&["--runs", "many"]).unwrap_err().contains("many"));
        assert!(parse(&["--threads"]).unwrap_err().contains("--threads"));
        assert!(parse(&["--threads", "x"]).unwrap_err().contains("x"));
        assert!(parse(&["--circuit"]).unwrap_err().contains("--circuit"));
    }

    #[test]
    fn parse_known_splits_shared_from_leftover() {
        let args: Vec<String> = ["--label", "x", "--quick", "--runs", "10", "--profile"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (o, leftover) = Options::parse_known(&args).unwrap();
        assert!(o.quick);
        assert_eq!(o.runs, Some(10));
        assert_eq!(leftover, vec!["--label", "x", "--profile"]);
    }

    #[test]
    fn parse_known_still_validates_shared_values() {
        let args: Vec<String> = ["--runs", "many"].iter().map(|s| s.to_string()).collect();
        assert!(Options::parse_known(&args).unwrap_err().contains("many"));
        // A shared flag missing its value is a shared-parser error, not a
        // leftover.
        let args: Vec<String> = vec!["--threads".to_string()];
        assert!(Options::parse_known(&args).unwrap_err().contains("--threads"));
    }

    #[test]
    fn parse_known_with_no_leftovers_matches_parse() {
        let args: Vec<String> = ["--circuit", "p2", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (o, leftover) = Options::parse_known(&args).unwrap();
        assert!(leftover.is_empty());
        assert_eq!(o.circuit.as_deref(), Some("p2"));
        assert_eq!(o.threads, Some(2));
    }

    #[test]
    fn named_circuit_selection() {
        let o = Options {
            circuit: Some("balu".into()),
            ..Options::default()
        };
        let c = o.circuits();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].name, "balu");
    }
}
