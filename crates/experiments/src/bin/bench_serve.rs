//! Service-overhead benchmark for the `prop-serve` daemon.
//!
//! Answers two questions about putting a socket in front of the engines:
//!
//! 1. **Latency overhead** — per circuit, the best-of-R PROP protocol is
//!    timed as a direct library call and as a loopback `submit wait=1`
//!    round trip (wire encode, queueing, worker dispatch, JSON response).
//!    Both paths must produce the identical cut *and* the identical
//!    assignment hash — the daemon is only allowed to cost time, never
//!    quality.
//! 2. **Throughput** — a batch of short jobs is submitted without
//!    waiting and then collected, reporting jobs/second through the
//!    queue + worker pool.
//!
//! Shared options: `--quick`, `--runs <n>`, `--circuit <name>`,
//! `--threads <n>` (daemon worker-pool size; 0/absent = 2). Extra:
//! `--jobs <n>` for the throughput batch size (default 16).

use prop_core::{BalanceConstraint, Partitioner};
use prop_experiments::{methods, Options};
use prop_netlist::{format, suite};
use prop_serve::{engine, server, Client, Json, ServerConfig, SubmitRequest};
use std::time::Instant;

const CIRCUITS: [&str; 2] = ["balu", "struct"];

fn serve_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: bench_serve [--quick] [--circuit <name>] [--runs <n>] [--threads <n>] \
         [--jobs <n>]"
    );
    std::process::exit(2)
}

fn parse_serve_args() -> (Options, usize) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, leftover) =
        Options::parse_known(&args).unwrap_or_else(|message| serve_usage(&message));
    let mut jobs = 16usize;
    let mut it = leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| serve_usage("--jobs requires a value: --jobs <n>"));
                jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| serve_usage(&format!("bad value {v:?} for --jobs")));
            }
            other => serve_usage(&format!("unknown argument {other:?}")),
        }
    }
    (opts, jobs)
}

fn main() {
    let (opts, batch_jobs) = parse_serve_args();
    let runs = opts.scaled_runs(10);
    let workers = match opts.threads {
        Some(n) if n >= 1 => n,
        _ => 2,
    };
    let mut circuits: Vec<&str> = CIRCUITS.to_vec();
    if let Some(only) = &opts.circuit {
        circuits.retain(|c| c == only);
        if circuits.is_empty() {
            serve_usage(&format!(
                "--circuit {only:?} is not part of the serve benchmark ({})",
                CIRCUITS.join(", ")
            ));
        }
    }

    let handle = server::start(&ServerConfig {
        workers,
        queue_cap: batch_jobs.max(64),
        ..ServerConfig::default()
    })
    .expect("bind loopback daemon");
    println!(
        "daemon on {} ({workers} workers); best-of-{runs} PROP per circuit",
        handle.addr()
    );

    let prop = methods::prop();
    for name in &circuits {
        let spec = suite::by_name(name).expect("benchmark circuit");
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let payload = format::write_hgr(&graph);

        let start = Instant::now();
        let direct = prop
            .run_multi(&graph, balance, runs, 0)
            .expect("non-empty graph");
        let direct_s = start.elapsed().as_secs_f64();
        let direct_hash = engine::assignment_hash(direct.partition.sides());

        let mut client = Client::connect(handle.addr()).expect("connect to daemon");
        let start = Instant::now();
        let response = client
            .submit(&SubmitRequest {
                engine: "prop".into(),
                runs,
                seed: 0,
                payload,
                wait: true,
                ..SubmitRequest::default()
            })
            .expect("submit round trip");
        let serve_s = start.elapsed().as_secs_f64();

        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("completed"),
            "{name}: {}",
            response.render()
        );
        let served_cut = response
            .get("cut")
            .and_then(Json::as_f64)
            .expect("cut in response");
        let served_hash = response
            .get("assignment_hash")
            .and_then(Json::as_str)
            .and_then(prop_serve::json::parse_hex64)
            .expect("assignment hash in response");
        assert_eq!(
            served_cut, direct.cut_cost,
            "{name}: daemon cut diverged from the direct run"
        );
        assert_eq!(
            served_hash, direct_hash,
            "{name}: daemon assignment diverged from the direct run"
        );

        let overhead = serve_s - direct_s;
        println!(
            "  {name}: direct {direct_s:.3}s, via daemon {serve_s:.3}s \
             (overhead {:+.1} ms, {:+.1}%), cut {} [bit-identical]",
            overhead * 1e3,
            100.0 * overhead / direct_s.max(1e-12),
            direct.cut_cost
        );
    }

    // Throughput: a batch of 1-run FM jobs through the queue.
    let spec = suite::by_name(CIRCUITS[0]).expect("benchmark circuit");
    let graph = spec.instantiate().expect("valid Table-1 spec");
    let payload = format::write_hgr(&graph);
    let mut client = Client::connect(handle.addr()).expect("connect to daemon");
    let start = Instant::now();
    let mut ids = Vec::with_capacity(batch_jobs);
    for seed in 0..batch_jobs as u64 {
        let response = client
            .submit(&SubmitRequest {
                engine: "fm".into(),
                runs: 1,
                seed,
                payload: payload.clone(),
                ..SubmitRequest::default()
            })
            .expect("submit batch job");
        let id = response
            .get("job")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("batch admission failed: {}", response.render()));
        ids.push(id);
    }
    for id in ids {
        let done = client.wait(id).expect("wait for batch job");
        assert_eq!(
            done.get("status").and_then(Json::as_str),
            Some("completed"),
            "{}",
            done.render()
        );
    }
    let batch_s = start.elapsed().as_secs_f64();
    println!(
        "  throughput: {batch_jobs} one-run FM jobs in {batch_s:.3}s \
         ({:.1} jobs/s through {workers} workers)",
        batch_jobs as f64 / batch_s.max(1e-12)
    );

    let stats = client.stats().expect("stats round trip");
    let completed = stats
        .get("stats")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("completed"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    println!("  daemon completed {completed} jobs total");
    client.shutdown().expect("shutdown round trip");
    handle.join();
}
