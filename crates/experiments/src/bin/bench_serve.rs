//! Service-overhead benchmark for the `prop-serve` daemon.
//!
//! Answers two questions about putting a socket in front of the engines:
//!
//! 1. **Latency overhead** — per circuit, the best-of-R PROP protocol is
//!    timed as a direct library call and as a loopback `submit wait=1`
//!    round trip (wire encode, queueing, worker dispatch, JSON response).
//!    Both paths must produce the identical cut *and* the identical
//!    assignment hash — the daemon is only allowed to cost time, never
//!    quality.
//! 2. **Throughput** — a batch of short jobs is submitted without
//!    waiting and then collected, reporting jobs/second through the
//!    queue + worker pool.
//!
//! Shared options: `--quick`, `--runs <n>`, `--circuit <name>`,
//! `--threads <n>` (daemon worker-pool size; 0/absent = 2). Extra:
//! `--jobs <n>` for the throughput batch size (default 16), and
//! `--cluster` to instead benchmark coordinator-sharded batch sweeps:
//! a golem3 fm seed sweep through the circuit store at 1 vs 2 worker
//! daemons (results asserted bit-identical across worker counts),
//! appending `cluster-batch`-labelled jobs/s rows to `BENCH_prop.json`.

use prop_core::{BalanceConstraint, Partitioner};
use prop_experiments::{methods, Options};
use prop_netlist::{format, suite};
use prop_serve::{
    engine, server, BatchRequest, Client, ClusterConfig, Json, ServerConfig, SubmitRequest,
    UploadRequest,
};
use std::time::Instant;

const CIRCUITS: [&str; 2] = ["balu", "struct"];

fn serve_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: bench_serve [--quick] [--circuit <name>] [--runs <n>] [--threads <n>] \
         [--jobs <n>] [--cluster]"
    );
    std::process::exit(2)
}

fn parse_serve_args() -> (Options, usize, bool) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, leftover) =
        Options::parse_known(&args).unwrap_or_else(|message| serve_usage(&message));
    let mut jobs = 16usize;
    let mut cluster = false;
    let mut it = leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| serve_usage("--jobs requires a value: --jobs <n>"));
                jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| serve_usage(&format!("bad value {v:?} for --jobs")));
            }
            "--cluster" => cluster = true,
            other => serve_usage(&format!("unknown argument {other:?}")),
        }
    }
    (opts, jobs, cluster)
}

/// The git revision of the working tree, for row provenance.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Merges the `cluster-batch` rows into `BENCH_prop.json`: previous rows
/// of that label are replaced, every other row is kept verbatim, so the
/// committed trajectory and `bench_snapshot --compare` are undisturbed.
fn append_cluster_rows(path: &str, rows: &[String]) {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("[\n]\n"));
    let mut all: Vec<String> = existing
        .lines()
        .filter(|l| l.contains("\"circuit\""))
        .map(|l| l.trim_end().trim_end_matches(',').to_string())
        .filter(|l| !l.contains("\"label\": \"cluster-batch\""))
        .collect();
    all.extend(rows.iter().cloned());
    std::fs::write(path, format!("[\n{}\n]\n", all.join(",\n"))).expect("write BENCH_prop.json");
}

/// One timed sweep: `sweep_runs` single-run fm sub-jobs over a stored
/// golem3 sharded across `workers` worker daemons. Returns (seconds,
/// winning cut, run_cuts + assignment hash for the identity check).
fn cluster_sweep(workers: usize, sweep_runs: usize, payload: &[u8]) -> (f64, f64, String) {
    let base = std::env::temp_dir().join(format!(
        "prop-bench-cluster-{}w-{}",
        workers,
        std::process::id()
    ));
    std::fs::remove_dir_all(&base).ok();
    let worker_handles: Vec<_> = (0..workers)
        .map(|w| {
            server::start(&ServerConfig {
                workers: 1,
                queue_cap: 64,
                store_dir: Some(base.join(format!("w{w}")).to_string_lossy().into_owned()),
                ..ServerConfig::default()
            })
            .expect("bind worker daemon")
        })
        .collect();
    let coordinator = server::start(&ServerConfig {
        workers: 1,
        queue_cap: 64,
        store_dir: Some(base.join("co").to_string_lossy().into_owned()),
        cluster: Some(ClusterConfig {
            workers: worker_handles.iter().map(|w| w.addr().to_string()).collect(),
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    })
    .expect("bind coordinator daemon");

    let mut client = Client::connect(coordinator.addr()).expect("connect to coordinator");
    client
        .upload(&UploadRequest {
            circuit: "golem3".into(),
            fmt: "hgr".into(),
            payload: Some(payload.to_vec()),
            path: None,
        })
        .expect("upload golem3");

    let start = Instant::now();
    let resp = client
        .batch(&BatchRequest {
            circuit_id: "golem3".into(),
            engines: vec!["fm".into()],
            runs: sweep_runs,
            seed: 0,
            chunk: 1,
            ..BatchRequest::default()
        })
        .expect("submit batch");
    let job = resp
        .get("job")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("batch admission failed: {}", resp.render()));
    let done = client.watch(job, |_| {}).expect("watch batch");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("completed"),
        "{}",
        done.render()
    );
    let cut = done.get("cut").and_then(Json::as_f64).expect("cut in done");
    let identity = format!(
        "{} {} {}",
        cut,
        done.get("run_cuts").map(Json::render).unwrap_or_default(),
        done.get("assignment_hash")
            .and_then(Json::as_str)
            .unwrap_or_default()
    );

    client.shutdown().expect("shutdown coordinator");
    coordinator.join();
    for w in worker_handles {
        Client::connect(w.addr())
            .expect("connect to worker")
            .shutdown()
            .expect("shutdown worker");
        w.join();
    }
    std::fs::remove_dir_all(&base).ok();
    (secs, cut, identity)
}

fn cluster_mode(opts: &Options) {
    let sweep_runs = opts.scaled_runs(16).max(2);
    let spec = suite::by_name("golem3").expect("golem3 suite entry");
    println!("cluster batch benchmark: golem3 via store, {sweep_runs} one-run fm sub-jobs");
    let graph = spec.instantiate().expect("valid golem3 spec");
    let payload = format::write_hgr(&graph).into_bytes();

    let threads_avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rev = git_rev();
    let mut rows = Vec::new();
    let mut identities = Vec::new();
    for workers in [1usize, 2] {
        let (secs, cut, identity) = cluster_sweep(workers, sweep_runs, &payload);
        println!(
            "  {workers} worker(s): {sweep_runs} sub-jobs in {secs:.3}s \
             ({:.2} jobs/s), cut {cut}",
            sweep_runs as f64 / secs.max(1e-12)
        );
        rows.push(format!(
            "  {{\"circuit\": \"golem3\", \"method\": \"cluster-batch\", \"runs\": {}, \
             \"threads\": {}, \"intra_threads\": 0, \"best_cut\": {}, \"secs_total\": {:.6}, \
             \"secs_per_run\": {:.6}, \"load_ms\": 0, \"parse_ms\": 0, \
             \"threads_avail\": {}, \"git_rev\": \"{}\", \"label\": \"cluster-batch\"}}",
            sweep_runs,
            workers,
            cut,
            secs,
            secs / sweep_runs as f64,
            threads_avail,
            rev
        ));
        identities.push(identity);
    }
    assert_eq!(
        identities[0], identities[1],
        "cluster sweep diverged across worker counts"
    );
    println!("  1-worker and 2-worker sweeps are bit-identical (cut + run_cuts + assignment_hash)");
    append_cluster_rows("BENCH_prop.json", &rows);
    println!("appended {} cluster-batch rows to BENCH_prop.json", rows.len());
}

fn main() {
    let (opts, batch_jobs, cluster) = parse_serve_args();
    if cluster {
        cluster_mode(&opts);
        return;
    }
    let runs = opts.scaled_runs(10);
    let workers = match opts.threads {
        Some(n) if n >= 1 => n,
        _ => 2,
    };
    let mut circuits: Vec<&str> = CIRCUITS.to_vec();
    if let Some(only) = &opts.circuit {
        circuits.retain(|c| c == only);
        if circuits.is_empty() {
            serve_usage(&format!(
                "--circuit {only:?} is not part of the serve benchmark ({})",
                CIRCUITS.join(", ")
            ));
        }
    }

    let handle = server::start(&ServerConfig {
        workers,
        queue_cap: batch_jobs.max(64),
        ..ServerConfig::default()
    })
    .expect("bind loopback daemon");
    println!(
        "daemon on {} ({workers} workers); best-of-{runs} PROP per circuit",
        handle.addr()
    );

    let prop = methods::prop();
    for name in &circuits {
        let spec = suite::by_name(name).expect("benchmark circuit");
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let payload = format::write_hgr(&graph);

        let start = Instant::now();
        let direct = prop
            .run_multi(&graph, balance, runs, 0)
            .expect("non-empty graph");
        let direct_s = start.elapsed().as_secs_f64();
        let direct_hash = engine::assignment_hash(direct.partition.sides());

        let mut client = Client::connect(handle.addr()).expect("connect to daemon");
        let start = Instant::now();
        let response = client
            .submit(&SubmitRequest {
                engine: "prop".into(),
                runs,
                seed: 0,
                payload,
                wait: true,
                ..SubmitRequest::default()
            })
            .expect("submit round trip");
        let serve_s = start.elapsed().as_secs_f64();

        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("completed"),
            "{name}: {}",
            response.render()
        );
        let served_cut = response
            .get("cut")
            .and_then(Json::as_f64)
            .expect("cut in response");
        let served_hash = response
            .get("assignment_hash")
            .and_then(Json::as_str)
            .and_then(prop_serve::json::parse_hex64)
            .expect("assignment hash in response");
        assert_eq!(
            served_cut, direct.cut_cost,
            "{name}: daemon cut diverged from the direct run"
        );
        assert_eq!(
            served_hash, direct_hash,
            "{name}: daemon assignment diverged from the direct run"
        );

        let overhead = serve_s - direct_s;
        println!(
            "  {name}: direct {direct_s:.3}s, via daemon {serve_s:.3}s \
             (overhead {:+.1} ms, {:+.1}%), cut {} [bit-identical]",
            overhead * 1e3,
            100.0 * overhead / direct_s.max(1e-12),
            direct.cut_cost
        );
    }

    // Throughput: a batch of 1-run FM jobs through the queue.
    let spec = suite::by_name(CIRCUITS[0]).expect("benchmark circuit");
    let graph = spec.instantiate().expect("valid Table-1 spec");
    let payload = format::write_hgr(&graph);
    let mut client = Client::connect(handle.addr()).expect("connect to daemon");
    let start = Instant::now();
    let mut ids = Vec::with_capacity(batch_jobs);
    for seed in 0..batch_jobs as u64 {
        let response = client
            .submit(&SubmitRequest {
                engine: "fm".into(),
                runs: 1,
                seed,
                payload: payload.clone(),
                ..SubmitRequest::default()
            })
            .expect("submit batch job");
        let id = response
            .get("job")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("batch admission failed: {}", response.render()));
        ids.push(id);
    }
    for id in ids {
        let done = client.wait(id).expect("wait for batch job");
        assert_eq!(
            done.get("status").and_then(Json::as_str),
            Some("completed"),
            "{}",
            done.render()
        );
    }
    let batch_s = start.elapsed().as_secs_f64();
    println!(
        "  throughput: {batch_jobs} one-run FM jobs in {batch_s:.3}s \
         ({:.1} jobs/s through {workers} workers)",
        batch_jobs as f64 / batch_s.max(1e-12)
    );

    let stats = client.stats().expect("stats round trip");
    let completed = stats
        .get("stats")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("completed"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    println!("  daemon completed {completed} jobs total");
    client.shutdown().expect("shutdown round trip");
    handle.join();
}
