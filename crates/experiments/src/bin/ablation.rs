//! Ablation study of PROP's design parameters (this suite's addition):
//! probability floor, refinement iterations, top-k refresh width, and the
//! probability-seeding method. Regenerates the sensitivity data behind
//! `PropConfig::calibrated` (see EXPERIMENTS.md).

use prop_core::{BalanceConstraint, GainInit, Partitioner, Prop, PropConfig};
use prop_experiments::methods;
use prop_experiments::report::{fmt_cut, Table};
use prop_experiments::Options;

fn main() {
    let mut opts = Options::from_args();
    if !opts.quick && opts.circuit.is_none() {
        // The ablation sweeps many configurations; default to the small
        // suite unless a circuit was named explicitly.
        opts.quick = true;
    }
    let circuits = opts.circuits();
    let runs = opts.scaled_runs(20).max(5);

    let variants: Vec<(String, PropConfig)> = {
        let mut v = Vec::new();
        for p_min in [0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95] {
            v.push((
                format!("p_min={p_min}"),
                PropConfig {
                    p_min,
                    ..PropConfig::default()
                },
            ));
        }
        for refine in [0usize, 1, 2, 4] {
            v.push((
                format!("refine={refine}"),
                PropConfig {
                    refine_iterations: refine,
                    ..PropConfig::calibrated()
                },
            ));
        }
        for top_k in [0usize, 1, 5, 20] {
            v.push((
                format!("top_k={top_k}"),
                PropConfig {
                    top_k_refresh: top_k,
                    ..PropConfig::calibrated()
                },
            ));
        }
        v.push((
            "init=det".into(),
            PropConfig {
                init: GainInit::Deterministic,
                ..PropConfig::calibrated()
            },
        ));
        v
    };

    println!(
        "PROP ablation — total 50-50% cuts over {} circuits, {} runs each",
        circuits.len(),
        runs
    );
    println!();
    let mut baseline = 0.0;
    for spec in &circuits {
        let graph = spec.instantiate().expect("valid spec");
        let balance = BalanceConstraint::bisection(graph.num_nodes());
        baseline += methods::run_iterative("FM20", &methods::fm(), &graph, balance, runs).cut;
    }

    let mut table = Table::new(["variant", "total cut", "vs FM20 (%)"]);
    table.push_row(["FM20 baseline", &fmt_cut(baseline), "0.0"]);
    for (name, config) in variants {
        let prop = Prop::new(config);
        let mut total = 0.0;
        for spec in &circuits {
            let graph = spec.instantiate().expect("valid spec");
            let balance = BalanceConstraint::bisection(graph.num_nodes());
            total += prop
                .run_multi(&graph, balance, runs, 0)
                .expect("non-empty graph")
                .cut_cost;
        }
        let pct = prop_experiments::report::improvement_pct(total, baseline);
        table.push_row([
            name,
            fmt_cut(total),
            prop_experiments::report::fmt_pct(pct),
        ]);
        eprintln!("  done: {} variants so far", table.num_rows() - 1);
    }
    print!("{}", table.render());
}
