//! Regenerates Table 1 of the paper: benchmark circuit characteristics.
//!
//! The circuits are deterministic synthetic proxies with exactly the
//! published node/net/pin counts (see `DESIGN.md` §5); this binary
//! instantiates each one and verifies the counts.

use prop_experiments::report::Table;
use prop_experiments::Options;

fn main() {
    let opts = Options::from_args();
    println!("Table 1 — benchmark circuit characteristics (synthetic proxies)");
    println!();
    let mut table = Table::new([
        "Test Case",
        "# Nodes",
        "# Nets",
        "# Pins",
        "p (nets/node)",
        "q (pins/net)",
        "planted cut",
    ]);
    let mut mismatches = 0;
    for spec in opts.circuits() {
        let (graph, info) = prop_netlist::generate::generate_with_info(&spec.generator_config())
            .expect("Table-1 counts are valid");
        let stats = graph.stats();
        if stats.nodes != spec.nodes || stats.nets != spec.nets || stats.pins != spec.pins {
            mismatches += 1;
        }
        table.push_row([
            spec.name.to_string(),
            stats.nodes.to_string(),
            stats.nets.to_string(),
            stats.pins.to_string(),
            format!("{:.2}", stats.avg_pins_per_node),
            format!("{:.2}", stats.avg_pins_per_net),
            info.planted_cut.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    if mismatches == 0 {
        println!("all circuit sizes match the published Table 1 exactly");
    } else {
        println!("WARNING: {mismatches} circuits deviate from the published counts");
        std::process::exit(1);
    }
}
