//! Extension experiment: the clustering pre-phase the paper's conclusion
//! anticipates ("in conjunction with a clustering initial phase \[PROP\]
//! will yield a high-quality partitioning tool").
//!
//! Compares, per circuit at 45-55% balance: flat PROP vs the multilevel
//! `ml` engine (best-of-R V-cycles over heavy-edge coarsening, PROP/FM
//! size-adaptive refinement), in both cut quality and per-run wall-clock.

use prop_core::{BalanceConstraint, Partitioner, Prop, PropConfig};
use prop_experiments::report::{fmt_cut, fmt_pct, fmt_secs, improvement_pct, Table};
use prop_experiments::Options;
use prop_multilevel::{Multilevel, MultilevelConfig};
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let prop = Prop::new(PropConfig::calibrated());
    let ml = Multilevel::standard(MultilevelConfig::default());

    println!("Extension — multilevel (clustering pre-phase) PROP vs flat PROP, 45-55%");
    println!();
    let mut table = Table::new([
        "Test Case",
        "PROP",
        "ML",
        "impr %",
        "PROP s/run",
        "ML s/run",
        "speedup",
    ]);
    let mut totals = [0.0f64; 4]; // flat cut, ml cut, flat secs, ml secs
    for spec in opts.circuits() {
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let runs = opts.scaled_runs(20);

        let start = Instant::now();
        let flat = prop
            .run_multi(&graph, balance, runs, 0)
            .expect("non-empty graph");
        let flat_secs = start.elapsed().as_secs_f64() / runs as f64;

        let start = Instant::now();
        let multi = ml
            .run_multi(&graph, balance, runs, 0)
            .expect("non-empty graph");
        let ml_secs = start.elapsed().as_secs_f64() / runs as f64;

        totals[0] += flat.cut_cost;
        totals[1] += multi.cut_cost;
        totals[2] += flat_secs;
        totals[3] += ml_secs;
        table.push_row([
            spec.name.to_string(),
            fmt_cut(flat.cut_cost),
            fmt_cut(multi.cut_cost),
            fmt_pct(improvement_pct(multi.cut_cost, flat.cut_cost)),
            fmt_secs(flat_secs),
            fmt_secs(ml_secs),
            format!("{:.1}x", flat_secs / ml_secs.max(1e-9)),
        ]);
        eprintln!("  done: {}", spec.name);
    }
    table.push_row([
        "Total".to_string(),
        fmt_cut(totals[0]),
        fmt_cut(totals[1]),
        fmt_pct(improvement_pct(totals[1], totals[0])),
        fmt_secs(totals[2]),
        fmt_secs(totals[3]),
        format!("{:.1}x", totals[2] / totals[3].max(1e-9)),
    ]);
    print!("{}", table.render());
    println!();
    println!("best-of-R for both engines (same run count); positive impr % means");
    println!("the clustering pre-phase found the better cut.");
}
