//! Regenerates Figure 1 of the paper: the worked example showing why
//! PROP's probabilistic gains separate nodes 1, 2, and 3 while FM and
//! LA-3 cannot.

use prop_core::example::{
    figure1, paper_node, EXPECTED_FM_GAINS, EXPECTED_SECOND_ITERATION_GAINS, V1_NODES,
};
use prop_experiments::report::Table;

fn main() {
    let fig = figure1();
    let fm = fig.fm_gains();
    let prob = fig.second_iteration_gains();

    println!("Figure 1 — FM and PROP gains on the worked example");
    println!();
    let mut table = Table::new(["node", "FM gain", "paper FM", "PROP gain", "paper PROP"]);
    for paper in 1..=V1_NODES {
        let id = paper_node(paper).index();
        table.push_row([
            format!("{paper}"),
            format!("{}", fm[id]),
            format!("{}", EXPECTED_FM_GAINS[paper - 1]),
            format!("{:.4}", prob[id]),
            format!("{:.4}", EXPECTED_SECOND_ITERATION_GAINS[paper - 1]),
        ]);
    }
    print!("{}", table.render());
    println!();

    let mut mismatches = 0;
    for paper in 1..=V1_NODES {
        let id = paper_node(paper).index();
        if (fm[id] - EXPECTED_FM_GAINS[paper - 1]).abs() > 1e-9 {
            mismatches += 1;
        }
        if (prob[id] - EXPECTED_SECOND_ITERATION_GAINS[paper - 1]).abs() > 1e-9 {
            mismatches += 1;
        }
    }
    let best = (0..V1_NODES)
        .max_by(|&a, &b| prob[a].partial_cmp(&prob[b]).expect("finite gains"))
        .expect("non-empty");
    println!(
        "FM ties nodes 1-3 at gain 2; PROP ranks node {} first (g = {:.2}),",
        best + 1,
        prob[best]
    );
    println!("matching the paper's conclusion that node 3 is the best move.");
    println!();
    if mismatches == 0 {
        println!("all {} printed gains match the paper exactly", 2 * V1_NODES);
    } else {
        println!("WARNING: {mismatches} gains deviate from the paper");
        std::process::exit(1);
    }
}
