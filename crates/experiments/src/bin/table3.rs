//! Regenerates Table 3 of the paper: cutset sizes under the 45-55%
//! balance criterion for MELO, PARABOLI, EIG1, and PROP (20 runs).

use prop_core::BalanceConstraint;
use prop_experiments::methods;
use prop_experiments::report::{fmt_cut, fmt_pct, improvement_pct, Table};
use prop_experiments::Options;

fn main() {
    let opts = Options::from_args();
    let melo = methods::melo();
    let paraboli = methods::paraboli();
    let eig1 = methods::eig1();
    let prop = methods::prop();

    println!("Table 3 — 45-55% balance cutsets");
    println!();
    let mut table = Table::new(["Test Case", "MELO", "Paraboli", "EIG1", "PROP"]);
    let mut totals = [0.0f64; 4];
    for spec in opts.circuits() {
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let runs = opts.scaled_runs(20);
        let outcomes = [
            methods::run_global("MELO", &melo, &graph, balance),
            methods::run_global("Paraboli", &paraboli, &graph, balance),
            methods::run_global("EIG1", &eig1, &graph, balance),
            methods::run_iterative("PROP", &prop, &graph, balance, runs),
        ];
        let mut row = vec![spec.name.to_string()];
        for (t, o) in totals.iter_mut().zip(&outcomes) {
            *t += o.cut;
            row.push(fmt_cut(o.cut));
        }
        table.push_row(row);
        eprintln!("  done: {}", spec.name);
    }
    let mut total_row = vec!["Total".to_string()];
    total_row.extend(totals.iter().map(|&t| fmt_cut(t)));
    table.push_row(total_row);
    print!("{}", table.render());

    println!();
    println!("PROP improvement over each method (paper convention, totals):");
    let prop_total = totals[3];
    for (i, name) in ["MELO", "Paraboli", "EIG1"].iter().enumerate() {
        println!(
            "  vs {:<9} {:>6}%   (paper: MELO 19.9, Paraboli 15.0, EIG1 57.1)",
            name,
            fmt_pct(improvement_pct(prop_total, totals[i]))
        );
    }
}
