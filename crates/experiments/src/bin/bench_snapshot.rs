//! Benchmark snapshot for the parallel multi-start harness.
//!
//! Runs the best-of-20 protocol for PROP and FM-bucket on a fixed subset
//! of the Table-1 proxy circuits, once sequentially and once on every
//! available core, and writes the timings to `BENCH_prop.json` in the
//! current directory. Because the parallel harness is bit-identical to
//! the sequential one, the `best_cut` column doubles as a correctness
//! check: it must agree between the two thread settings of each
//! circuit/method pair.
//!
//! Options: `--quick` (fewer runs), `--runs <n>`, `--threads <n>`
//! (override the "max" thread count; 0 = auto-detect).

use prop_core::{BalanceConstraint, ParallelPolicy, Partitioner};
use prop_experiments::{methods, Options};
use prop_netlist::suite;
use std::time::Instant;

/// The fixed circuits of the snapshot, smallest to largest.
const CIRCUITS: [&str; 3] = ["balu", "struct", "p2"];

struct Record {
    circuit: String,
    method: String,
    runs: usize,
    threads: usize,
    best_cut: f64,
    secs_total: f64,
}

fn measure(
    circuit: &str,
    method: &str,
    partitioner: &dyn Partitioner,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    threads: usize,
) -> Record {
    let policy = if threads <= 1 {
        ParallelPolicy::Sequential
    } else {
        ParallelPolicy::Threads(threads)
    };
    let start = Instant::now();
    let result = partitioner
        .run_multi_parallel(graph, balance, runs, 0, policy)
        .expect("non-empty graph and runs >= 1");
    let secs_total = start.elapsed().as_secs_f64();
    // Oracle cross-check (outside the timed region): the reported best cut
    // must equal a naive from-scratch recount of the winning partition.
    let recount = prop_verify::oracle::naive_cut(graph, &result.partition);
    assert_eq!(
        result.cut_cost, recount,
        "{circuit}/{method}: reported cut diverged from the oracle recount"
    );
    Record {
        circuit: circuit.to_string(),
        method: method.to_string(),
        runs,
        threads,
        best_cut: result.cut_cost,
        secs_total,
    }
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let secs_per_run = r.secs_total / r.runs.max(1) as f64;
        out.push_str(&format!(
            "  {{\"circuit\": \"{}\", \"method\": \"{}\", \"runs\": {}, \"threads\": {}, \
             \"best_cut\": {}, \"secs_total\": {:.6}, \"secs_per_run\": {:.6}}}{}\n",
            r.circuit,
            r.method,
            r.runs,
            r.threads,
            r.best_cut,
            r.secs_total,
            secs_per_run,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let opts = Options::from_args();
    let runs = opts.scaled_runs(20);
    let max_threads = match opts.threads {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let prop = methods::prop();
    let fm = methods::fm();

    let mut records = Vec::new();
    for name in CIRCUITS {
        let spec = suite::by_name(name).expect("fixed snapshot circuit");
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        for (method, partitioner) in
            [("PROP", &prop as &dyn Partitioner), ("FM-bucket", &fm as &dyn Partitioner)]
        {
            for threads in [1, max_threads] {
                let rec = measure(name, method, partitioner, &graph, balance, runs, threads);
                eprintln!(
                    "  {} {} runs={} threads={}: cut={} {:.3}s",
                    rec.circuit, rec.method, rec.runs, rec.threads, rec.best_cut, rec.secs_total
                );
                records.push(rec);
            }
        }
    }

    // Cross-check determinism and report the headline speedup.
    for pair in records.chunks(2) {
        let [seq, par] = pair else { continue };
        assert_eq!(
            seq.best_cut, par.best_cut,
            "parallel harness diverged on {}/{}",
            seq.circuit, seq.method
        );
    }
    if let Some(seq) = records
        .iter()
        .rev()
        .find(|r| r.circuit == *CIRCUITS.last().unwrap() && r.method == "PROP" && r.threads == 1)
    {
        if let Some(par) = records
            .iter()
            .rev()
            .find(|r| r.circuit == seq.circuit && r.method == "PROP" && r.threads == max_threads)
        {
            if max_threads > 1 {
                println!(
                    "PROP on {} with {} threads: {:.2}x speedup",
                    seq.circuit,
                    max_threads,
                    seq.secs_total / par.secs_total.max(1e-12)
                );
            }
        }
    }

    let path = "BENCH_prop.json";
    std::fs::write(path, render_json(&records)).expect("write benchmark snapshot");
    println!("wrote {path} ({} records)", records.len());
}
