//! Benchmark snapshot for the PROP engine and multi-start harness.
//!
//! Runs the best-of-20 protocol for PROP and FM-bucket on a fixed subset
//! of the Table-1 proxy circuits, once sequentially and once on every
//! available core, and writes the timings to `BENCH_prop.json` in the
//! current directory. Because the parallel harness is bit-identical to
//! the sequential one, the `best_cut` column doubles as a correctness
//! check: it must agree between the two thread settings of each
//! circuit/method pair, and every reported cut is recounted by the naive
//! oracle.
//!
//! Every row carries provenance: the machine's available parallelism, the
//! git revision of the working tree, an optional free-form label, and
//! `intra_threads` (the intra-run V-cycle workers of the ML engine; `0`
//! for classic/sequential rows). Rows written by older versions of this
//! binary are backfilled with explicit defaults when a labelled run
//! merges into an existing file, so the schema stays uniform. For the ML
//! engine the snapshot adds an intra-parallel pair — `intra_threads` 1
//! and max — whose cuts must match (worker-count invariance).
//!
//! Shared options: `--quick` (fewer runs), `--runs <n>`, `--threads <n>`
//! (override the "max" thread count; 0 = auto-detect). Snapshot-specific
//! options:
//!
//! * `--large` — add the ~100k-node `golem3` circuit to the suite
//!   (PROP-only at 1 and max threads; FM at the same settings).
//! * `--method <name>` — restrict to one engine (`PROP`, `FM-bucket`,
//!   `ML`, or `ML+flow`), e.g. to append a single method's rows under a
//!   new label without re-running the whole suite.
//! * `--label <s>` — tag the rows and *append* them to an existing
//!   `BENCH_prop.json` instead of overwriting it, so a trajectory of
//!   snapshots accumulates in one file.
//! * `--profile` — single-threaded per-phase timing: prints each PROP
//!   phase's share of runtime plus work counters, and the multilevel
//!   overlay phases when profiling `ML`. Requires the binary to be built
//!   with `--features prof`; rows are not written in this mode (the
//!   instrumentation itself skews the timings).
//! * `--compare <path>` — regression gate: instead of writing anything,
//!   compare against the single-thread rows of a committed snapshot and
//!   exit non-zero on a >2x `secs_per_run` regression or (at matching run
//!   counts) a changed `best_cut`.
//! * `--kway` — recursive k-way benchmark instead of bipartitioning:
//!   for each circuit run the k-way driver over the multilevel V-cycle at
//!   `k = 4` and `k = 8`, once with one intra-run worker and once with
//!   the machine's worker count, emit `ML-k4`/`ML-k8` rows whose
//!   `best_cut` is the hyperedge cut, and fail unless each worker pair is
//!   bit-identical and the cut matches the independent k-way oracle.
//!   `--large` extends the set with golem3.
//! * `--io` — loader benchmark instead of partitioning: for each circuit,
//!   time hgr text parse+build against the `.hgb` snapshot load (mmap
//!   open + validation, after which the zero-copy view is queryable),
//!   emit `method: "load"` rows carrying `parse_ms`/`load_ms`, and fail
//!   unless the golem-tier circuits load at least 10x faster from the
//!   snapshot. `--large` extends the set with golem3 and golem4.

use prop_core::{BalanceConstraint, KwayConfig, ParallelPolicy, Partitioner};
use prop_experiments::{methods, Options};
use prop_netlist::{format, hgb, suite};
use std::time::Instant;

/// The fixed circuits of the snapshot, smallest to largest.
const CIRCUITS: [&str; 3] = ["balu", "struct", "p2"];

/// The large-circuit extension behind `--large`.
const LARGE_CIRCUITS: [&str; 1] = ["golem3"];

/// The extra circuits the `--io --large` loader benchmark covers beyond
/// [`LARGE_CIRCUITS`] (partitioning golem4 at snapshot run counts is a
/// separate exercise; loading it is cheap).
const IO_LARGE_CIRCUITS: [&str; 1] = ["golem4"];

/// Minimum speedup of the mmap `.hgb` load over text parse+build that
/// `--io` requires on the golem-tier circuits (the point of the binary
/// format; small Table-1 circuits are too quick to time reliably).
const IO_SPEEDUP_FLOOR: f64 = 10.0;

/// Maximum tolerated single-thread `secs_per_run` ratio vs the committed
/// snapshot before `--compare` fails.
const REGRESSION_FACTOR: f64 = 2.0;

struct Record {
    circuit: String,
    method: String,
    runs: usize,
    threads: usize,
    /// Intra-run V-cycle workers (`ml` engine): `0` marks the classic
    /// sequential engine, `n >= 1` the deterministic intra-parallel one.
    intra_threads: usize,
    best_cut: f64,
    secs_total: f64,
    /// Wall-clock milliseconds to load the circuit from its `.hgb`
    /// snapshot: mmap open + structural parse + deep validation, after
    /// which the zero-copy CSR view is fully queryable without a single
    /// allocation. `0` on partitioning rows, which receive the graph
    /// pre-built.
    load_ms: f64,
    /// Wall-clock milliseconds to parse+build the same circuit from hgr
    /// text. `0` on partitioning rows.
    parse_ms: f64,
}

impl Record {
    fn secs_per_run(&self) -> f64 {
        self.secs_total / self.runs.max(1) as f64
    }
}

/// Snapshot-specific flags layered on top of the shared [`Options`].
struct SnapshotOptions {
    label: Option<String>,
    profile: bool,
    large: bool,
    compare: Option<String>,
    method: Option<String>,
    io: bool,
    kway: bool,
}

fn snapshot_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: bench_snapshot [--quick] [--circuit <name>] [--runs <n>] [--threads <n>] \
         [--large] [--method <name>] [--label <s>] [--profile] [--compare <path>] [--io] [--kway]"
    );
    std::process::exit(2)
}

fn parse_snapshot_args() -> (Options, SnapshotOptions) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, leftover) =
        Options::parse_known(&args).unwrap_or_else(|message| snapshot_usage(&message));
    let mut extra = SnapshotOptions {
        label: None,
        profile: false,
        large: false,
        compare: None,
        method: None,
        io: false,
        kway: false,
    };
    let mut it = leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| snapshot_usage("--label requires a value: --label <s>"));
                extra.label = Some(v.clone());
            }
            "--profile" => extra.profile = true,
            "--large" => extra.large = true,
            "--io" => extra.io = true,
            "--kway" => extra.kway = true,
            "--compare" => {
                let v = it.next().unwrap_or_else(|| {
                    snapshot_usage("--compare requires a value: --compare <path>")
                });
                extra.compare = Some(v.clone());
            }
            "--method" => {
                let v = it.next().unwrap_or_else(|| {
                    snapshot_usage("--method requires a value: --method <name>")
                });
                extra.method = Some(v.clone());
            }
            other => snapshot_usage(&format!("unknown argument {other:?}")),
        }
    }
    (opts, extra)
}

#[allow(clippy::too_many_arguments)] // a flat row-measurement call site
fn measure(
    circuit: &str,
    method: &str,
    partitioner: &dyn Partitioner,
    graph: &prop_netlist::Hypergraph,
    balance: BalanceConstraint,
    runs: usize,
    threads: usize,
    intra_threads: usize,
) -> Record {
    let policy = if threads <= 1 {
        ParallelPolicy::Sequential
    } else {
        ParallelPolicy::Threads(threads)
    };
    let start = Instant::now();
    let result = partitioner
        .run_multi_parallel(graph, balance, runs, 0, policy)
        .expect("non-empty graph and runs >= 1");
    let secs_total = start.elapsed().as_secs_f64();
    // Oracle cross-check (outside the timed region): the reported best cut
    // must equal a naive from-scratch recount of the winning partition.
    let recount = prop_verify::oracle::naive_cut(graph, &result.partition);
    assert_eq!(
        result.cut_cost, recount,
        "{circuit}/{method}: reported cut diverged from the oracle recount"
    );
    Record {
        circuit: circuit.to_string(),
        method: method.to_string(),
        runs,
        threads,
        intra_threads,
        best_cut: result.cut_cost,
        secs_total,
        load_ms: 0.0,
        parse_ms: 0.0,
    }
}

/// The git revision of the working tree, for row provenance.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn render_rows(records: &[Record], threads_avail: usize, rev: &str, label: &str) -> Vec<String> {
    records
        .iter()
        .map(|r| {
            format!(
                "  {{\"circuit\": \"{}\", \"method\": \"{}\", \"runs\": {}, \"threads\": {}, \
                 \"intra_threads\": {}, \"best_cut\": {}, \"secs_total\": {:.6}, \
                 \"secs_per_run\": {:.6}, \"load_ms\": {:.3}, \"parse_ms\": {:.3}, \
                 \"threads_avail\": {}, \"git_rev\": \"{}\", \"label\": \"{}\"}}",
                r.circuit,
                r.method,
                r.runs,
                r.threads,
                r.intra_threads,
                r.best_cut,
                r.secs_total,
                r.secs_per_run(),
                r.load_ms,
                r.parse_ms,
                threads_avail,
                rev,
                label
            )
        })
        .collect()
}

/// The identity of a snapshot row for append-mode deduplication.
fn row_key(line: &str) -> Option<(String, String, String, String, String)> {
    Some((
        field(line, "label")?.to_string(),
        field(line, "circuit")?.to_string(),
        field(line, "method")?.to_string(),
        field(line, "threads")?.to_string(),
        field(line, "intra_threads").unwrap_or("0").to_string(),
    ))
}

/// Backfills provenance fields that predate them: rows written before
/// `threads_avail`/`git_rev`/`label`/`intra_threads` existed get explicit
/// defaults, so every row of a merged snapshot carries the full schema
/// (`threads_avail: 0` / `git_rev: "unknown"` mark the provenance as
/// genuinely unrecorded, not as measured-on-this-machine).
fn normalize_row(line: &str) -> String {
    let mut row = line.trim_end().trim_end_matches(',').trim_end().to_string();
    for (key, default) in [
        ("intra_threads", "0"),
        ("load_ms", "0"),
        ("parse_ms", "0"),
        ("threads_avail", "0"),
        ("git_rev", "\"unknown\""),
        ("label", "\"\""),
    ] {
        if field(&row, key).is_none() && row.ends_with('}') {
            row.truncate(row.len() - 1);
            row.push_str(&format!(", \"{key}\": {default}}}"));
        }
    }
    row
}

/// Merges new rows into an existing snapshot body: any old row with the
/// same (label, circuit, method, threads, intra_threads) key as a new row
/// is dropped, so re-running a labelled snapshot updates its trajectory
/// point in place instead of accumulating duplicates. Rows from other
/// labels are kept, normalized to the full field schema.
fn merge_rows(existing: &str, rows: &[String]) -> Vec<String> {
    let new_keys: Vec<_> = rows.iter().filter_map(|r| row_key(r)).collect();
    let mut merged: Vec<String> = existing
        .lines()
        .filter(|line| line.contains("\"circuit\""))
        .map(normalize_row)
        .filter(|line| row_key(line).is_none_or(|key| !new_keys.contains(&key)))
        .collect();
    merged.extend(rows.iter().cloned());
    merged
}

/// Writes the snapshot: fresh file by default, merged into an existing
/// JSON array (deduplicating by row key) when a label marks the rows as
/// a trajectory point.
fn write_snapshot(path: &str, rows: &[String], append: bool) {
    let all = if append {
        match std::fs::read_to_string(path) {
            Ok(existing) => merge_rows(&existing, rows),
            Err(_) => rows.to_vec(),
        }
    } else {
        rows.to_vec()
    };
    let body = format!("[\n{}\n]\n", all.join(",\n"));
    std::fs::write(path, body).expect("write benchmark snapshot");
}

/// A baseline row parsed back out of a committed `BENCH_prop.json`.
struct BaselineRow {
    circuit: String,
    method: String,
    runs: usize,
    threads: usize,
    intra_threads: usize,
    best_cut: f64,
    secs_per_run: f64,
}

/// Extracts `"key": value` from one rendered row. The file is this
/// binary's own output format, so a line-based scan suffices — no JSON
/// parser dependency.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse_baseline(path: &str) -> Vec<BaselineRow> {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| snapshot_usage(&format!("cannot read {path:?}: {e}")));
    body.lines()
        .filter(|line| line.contains("\"circuit\""))
        .filter_map(|line| {
            Some(BaselineRow {
                circuit: field(line, "circuit")?.to_string(),
                method: field(line, "method")?.to_string(),
                runs: field(line, "runs")?.parse().ok()?,
                threads: field(line, "threads")?.parse().ok()?,
                intra_threads: field(line, "intra_threads").unwrap_or("0").parse().ok()?,
                best_cut: field(line, "best_cut")?.parse().ok()?,
                secs_per_run: field(line, "secs_per_run")?.parse().ok()?,
            })
        })
        .collect()
}

/// The `--compare` gate: single-thread rows against the committed
/// baseline. Returns the number of violations (printed as they are found).
fn compare_against(baseline: &[BaselineRow], records: &[Record]) -> usize {
    let mut violations = 0;
    // Loader rows have no baseline semantics (no cut, machine-bound
    // timings); the speedup floor inside `--io` is their gate.
    for r in records.iter().filter(|r| r.threads == 1 && r.method != "load") {
        // The latest matching baseline row wins (an appended trajectory
        // lists newest rows last). Intra-parallel rows only compare
        // against baselines at the same intra worker count — the intra
        // engine is a different algorithm with its own cut and timing.
        let Some(base) = baseline.iter().rev().find(|b| {
            b.circuit == r.circuit
                && b.method == r.method
                && b.threads == 1
                && b.intra_threads == r.intra_threads
        }) else {
            println!("  {}/{}: no baseline row, skipping", r.circuit, r.method);
            continue;
        };
        let ratio = r.secs_per_run() / base.secs_per_run.max(1e-12);
        if ratio > REGRESSION_FACTOR {
            println!(
                "  FAIL {}/{}: {:.4}s per run vs baseline {:.4}s ({ratio:.2}x > {REGRESSION_FACTOR}x)",
                r.circuit,
                r.method,
                r.secs_per_run(),
                base.secs_per_run
            );
            violations += 1;
        } else if base.runs == r.runs && base.best_cut != r.best_cut {
            println!(
                "  FAIL {}/{}: best_cut {} vs baseline {} at identical run count {}",
                r.circuit, r.method, r.best_cut, base.best_cut, r.runs
            );
            violations += 1;
        } else {
            println!(
                "  ok   {}/{}: {:.4}s per run ({ratio:.2}x of baseline), cut {}",
                r.circuit,
                r.method,
                r.secs_per_run(),
                r.best_cut
            );
        }
    }
    violations
}

/// `--profile` mode: single-threaded runs per circuit, phase breakdown
/// from the thread-local counters. Profiles PROP by default; with
/// `--method ML` profiles the multilevel engine instead, adding the
/// V-cycle overlay phases (coarsen/initial/project/refine, level count).
fn profile(circuits: &[&str], runs: usize, method: &str, partitioner: &dyn Partitioner) {
    if !prop_core::prof::enabled() {
        snapshot_usage(
            "--profile needs the instrumented build: \
             cargo run --release -p prop-experiments --features prof --bin bench_snapshot",
        );
    }
    for name in circuits {
        let spec = suite::by_name(name).expect("snapshot circuit");
        let graph = spec.instantiate().expect("valid spec");
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        prop_core::prof::reset();
        let rec = measure(name, method, partitioner, &graph, balance, runs, 1, 0);
        let s = prop_core::prof::snapshot();
        let total = s.total_ns().max(1) as f64;
        let pct = |ns: u64| 100.0 * ns as f64 / total;
        println!(
            "{name}: cut={} {:.3}s total ({} runs)",
            rec.best_cut, rec.secs_total, rec.runs
        );
        if s.ml_total_ns() > 0 {
            let ml_total = s.ml_total_ns().max(1) as f64;
            let ml_pct = |ns: u64| 100.0 * ns as f64 / ml_total;
            println!(
                "  ml: coarsen {:6.2}%  initial {:6.2}%  project {:6.2}%  refine {:6.2}%  \
                 ({} levels, {:.3}s instrumented)",
                ml_pct(s.ml_coarsen_ns),
                ml_pct(s.ml_initial_ns),
                ml_pct(s.ml_project_ns),
                ml_pct(s.ml_refine_ns),
                s.ml_levels,
                ml_total / 1e9
            );
        }
        println!(
            "  seed {:6.2}%  refine {:6.2}%  select {:6.2}%  apply {:6.2}%  refresh {:6.2}%",
            pct(s.seed_ns),
            pct(s.refine_ns),
            pct(s.select_ns),
            pct(s.apply_ns),
            pct(s.refresh_ns)
        );
        println!(
            "  moves {}  net_recomputes {}  gain_recomputes {}  ({:.1} net / {:.1} gain per move)",
            s.moves,
            s.net_recomputes,
            s.gain_recomputes,
            s.net_recomputes as f64 / s.moves.max(1) as f64,
            s.gain_recomputes as f64 / s.moves.max(1) as f64
        );
    }
}

/// `--io` mode: the loader benchmark. Each circuit is rendered to hgr
/// text and written as a `.hgb` snapshot in a scratch dir; the row then
/// times text parse+build against the mmap `.hgb` load (open + deep
/// validate + materialize) on identical content — the two graphs are
/// asserted equal before either timing is trusted. Golem-tier circuits
/// must clear [`IO_SPEEDUP_FLOOR`].
fn run_io(circuits: &[&str], threads_avail: usize, label: Option<&str>) {
    let dir = std::env::temp_dir().join(format!("prop-bench-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut records = Vec::new();
    let mut violations = 0usize;
    for name in circuits {
        let spec = suite::by_name(name).expect("snapshot circuit");
        let graph = spec.instantiate().expect("valid spec");
        let text = format::write_hgr(&graph);
        let path = dir.join(format!("{name}.hgb"));
        hgb::write_hgb_file(&graph, &path).expect("write snapshot");

        // Best of three for each side: a single-core box under load can
        // stretch any one measurement severalfold, and the floor below is
        // a property of the code, not of scheduler noise.
        let mut parse_ms = f64::INFINITY;
        let mut parsed = None;
        for _ in 0..3 {
            let start = Instant::now();
            let graph = format::parse_hgr(&text).expect("hgr reparse");
            parse_ms = parse_ms.min(start.elapsed().as_secs_f64() * 1e3);
            parsed = Some(graph);
        }
        let parsed = parsed.expect("three parses ran");

        // The snapshot load: open (mmap) + structural parse + deep
        // validation. At this point the circuit is fully queryable through
        // the zero-copy CSR view without having allocated anything — that
        // is the claim of the binary format, and the apples-to-apples
        // counterpart of "text parse+build to a queryable graph" above.
        let mut load_ms = f64::INFINITY;
        let mut file = hgb::HgbFile::open(&path).expect("open snapshot");
        for _ in 0..3 {
            let start = Instant::now();
            let reopened = hgb::HgbFile::open(&path).expect("open snapshot");
            let view = reopened.view().expect("structural parse");
            view.validate().expect("deep validation");
            load_ms = load_ms.min(start.elapsed().as_secs_f64() * 1e3);
            file = reopened;
        }
        let view = file.view().expect("structural parse");

        // Untimed correctness anchor: the two paths materialize the same
        // graph.
        let loaded = view.to_hypergraph().expect("materialize");
        assert_eq!(parsed, loaded, "{name}: text and .hgb materialize differently");
        let speedup = parse_ms / load_ms.max(1e-6);
        println!(
            "  {name}: parse {parse_ms:.1}ms, {} load {load_ms:.1}ms ({speedup:.1}x, {} bytes)",
            file.mode(),
            file.bytes().len()
        );
        if name.starts_with("golem") && speedup < IO_SPEEDUP_FLOOR {
            eprintln!("  FAIL {name}: {speedup:.1}x < required {IO_SPEEDUP_FLOOR}x");
            violations += 1;
        }
        records.push(Record {
            circuit: name.to_string(),
            method: "load".to_string(),
            runs: 1,
            threads: 1,
            intra_threads: 0,
            best_cut: 0.0,
            secs_total: (parse_ms + load_ms) / 1e3,
            load_ms,
            parse_ms,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    let rows = render_rows(&records, threads_avail, &git_rev(), label.unwrap_or(""));
    write_snapshot("BENCH_prop.json", &rows, label.is_some());
    println!("wrote BENCH_prop.json ({} loader records)", rows.len());
    if violations > 0 {
        eprintln!("{violations} loader speedup violation(s)");
        std::process::exit(1);
    }
}

/// `--kway` mode: the recursive k-way benchmark. For each circuit the
/// multilevel V-cycle drives the recursive bisection at `k` = 4 and 8,
/// once per intra-run worker count in `{1, max}`. Each worker pair must
/// be bit-identical (same assignment hash, so same cut, connectivity,
/// and part weights), and every reported cut is recounted by the
/// independent k-way oracle before the row is trusted.
fn run_kway(circuits: &[&str], runs: usize, max_threads: usize, threads_avail: usize,
            label: Option<&str>) {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut records = Vec::new();
    for name in circuits {
        let spec = suite::by_name(name).expect("snapshot circuit");
        let graph = spec.instantiate().expect("valid spec");
        for k in [4usize, 8] {
            let mut pair_hashes = Vec::new();
            // Even on a single-core box the second row runs with two
            // intra workers: worker-count invariance is a determinism
            // property, not a speedup claim.
            for intra in [1, max_threads.max(2)] {
                let engine = methods::ml_intra(intra);
                let config = KwayConfig {
                    runs,
                    ..KwayConfig::new(k)
                };
                let start = Instant::now();
                let report =
                    prop_core::partition_kway(&graph, &engine, &config).expect("k-way succeeds");
                let secs_total = start.elapsed().as_secs_f64();
                let cut = report.partition.cut_cost(&graph);
                let recount =
                    prop_verify::kway::kway_cut(&graph, report.partition.assignment(), k as u32);
                assert_eq!(
                    cut, recount,
                    "{name}/ML-k{k}: reported cut diverged from the k-way oracle"
                );
                let mut h = DefaultHasher::new();
                report.partition.assignment().hash(&mut h);
                pair_hashes.push(h.finish());
                eprintln!(
                    "  {name} ML-k{k} runs={runs} intra_threads={intra}: cut={cut} \
                     lambda={} {secs_total:.3}s",
                    report.partition.connectivity_cost(&graph)
                );
                records.push(Record {
                    circuit: name.to_string(),
                    method: format!("ML-k{k}"),
                    runs,
                    threads: 1,
                    intra_threads: intra,
                    best_cut: cut,
                    secs_total,
                    load_ms: 0.0,
                    parse_ms: 0.0,
                });
            }
            assert!(
                pair_hashes.windows(2).all(|w| w[0] == w[1]),
                "{name}/ML-k{k}: assignment differs across intra worker counts"
            );
        }
    }
    let rows = render_rows(&records, threads_avail, &git_rev(), label.unwrap_or(""));
    write_snapshot("BENCH_prop.json", &rows, label.is_some());
    println!("wrote BENCH_prop.json ({} k-way records)", rows.len());
}

fn main() {
    let (opts, extra) = parse_snapshot_args();
    let runs = opts.scaled_runs(20);
    let threads_avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = match opts.threads {
        Some(n) if n >= 1 => n,
        _ => threads_avail,
    };
    let mut circuits: Vec<&str> = CIRCUITS.to_vec();
    if extra.large {
        circuits.extend(LARGE_CIRCUITS);
    }
    if extra.large && extra.io {
        circuits.extend(IO_LARGE_CIRCUITS);
    }
    if let Some(only) = &opts.circuit {
        circuits.retain(|c| c == only);
        if circuits.is_empty() {
            snapshot_usage(&format!(
                "--circuit {only:?} is not part of the snapshot suite ({}; --large adds {})",
                CIRCUITS.join(", "),
                LARGE_CIRCUITS.join(", ")
            ));
        }
    }

    if extra.io {
        run_io(&circuits, threads_avail, extra.label.as_deref());
        return;
    }

    if extra.kway {
        run_kway(
            &circuits,
            opts.scaled_runs(5),
            max_threads,
            threads_avail,
            extra.label.as_deref(),
        );
        return;
    }

    let prop = methods::prop();
    let fm = methods::fm();
    let ml = methods::ml();
    let ml_flow = methods::ml_flow();
    let mut engines: Vec<(&str, &dyn Partitioner)> = vec![
        ("PROP", &prop as &dyn Partitioner),
        ("FM-bucket", &fm as &dyn Partitioner),
        ("ML", &ml as &dyn Partitioner),
        ("ML+flow", &ml_flow as &dyn Partitioner),
    ];
    if let Some(only) = &extra.method {
        engines.retain(|(name, _)| name == only);
        if engines.is_empty() {
            snapshot_usage(&format!(
                "--method {only:?} is not a snapshot engine (PROP, FM-bucket, ML, ML+flow)"
            ));
        }
    }

    if extra.profile {
        let (method, partitioner) = engines[0];
        profile(&circuits, runs, method, partitioner);
        return;
    }

    let mut records = Vec::new();
    for name in &circuits {
        let spec = suite::by_name(name).expect("fixed snapshot circuit");
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance = BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        for (method, partitioner) in engines.iter().copied() {
            for threads in [1, max_threads] {
                let rec = measure(name, method, partitioner, &graph, balance, runs, threads, 0);
                eprintln!(
                    "  {} {} runs={} threads={}: cut={} {:.3}s",
                    rec.circuit, rec.method, rec.runs, rec.threads, rec.best_cut, rec.secs_total
                );
                records.push(rec);
            }
        }
        // Intra-parallel ML rows: runs stay sequential (threads=1); the
        // V-cycle itself parallelizes. The pair is also the determinism
        // gate — the chunk check below asserts equal cuts per pair.
        if engines.iter().any(|(m, _)| *m == "ML") {
            for intra in [1, max_threads] {
                let engine = methods::ml_intra(intra);
                let rec = measure(name, "ML", &engine, &graph, balance, runs, 1, intra);
                eprintln!(
                    "  {} {} runs={} intra_threads={}: cut={} {:.3}s",
                    rec.circuit, rec.method, rec.runs, rec.intra_threads, rec.best_cut,
                    rec.secs_total
                );
                records.push(rec);
            }
        }
    }

    // Cross-check determinism and report the headline speedup. Records
    // arrive in pairs — (threads=1, threads=max) per engine, then
    // (intra=1, intra=max) for ML — and each pair must agree on the cut:
    // the across-run harness because fan-out is bit-identical, the intra
    // pair because the intra-parallel V-cycle is worker-count-invariant.
    for pair in records.chunks(2) {
        let [seq, par] = pair else { continue };
        assert_eq!(
            seq.best_cut, par.best_cut,
            "parallel harness diverged on {}/{} (intra_threads {}/{})",
            seq.circuit, seq.method, seq.intra_threads, par.intra_threads
        );
    }
    if max_threads > 1 {
        if let Some(seq) = records
            .iter()
            .rev()
            .find(|r| r.method == "PROP" && r.threads == 1)
        {
            if let Some(par) = records
                .iter()
                .rev()
                .find(|r| r.circuit == seq.circuit && r.method == "PROP" && r.threads == max_threads)
            {
                println!(
                    "PROP on {} with {} threads: {:.2}x speedup",
                    seq.circuit,
                    max_threads,
                    seq.secs_total / par.secs_total.max(1e-12)
                );
            }
        }
    }

    if let Some(path) = &extra.compare {
        println!("comparing against {path} (single-thread rows):");
        let violations = compare_against(&parse_baseline(path), &records);
        if violations > 0 {
            eprintln!("{violations} benchmark regression(s) vs {path}");
            std::process::exit(1);
        }
        return;
    }

    let path = "BENCH_prop.json";
    let rows = render_rows(
        &records,
        threads_avail,
        &git_rev(),
        extra.label.as_deref().unwrap_or(""),
    );
    write_snapshot(path, &rows, extra.label.is_some());
    println!("wrote {path} ({} new records)", rows.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, circuit: &str, method: &str, threads: usize, cut: f64) -> String {
        let rendered = render_rows(
            &[Record {
                circuit: circuit.to_string(),
                method: method.to_string(),
                runs: 4,
                threads,
                intra_threads: 0,
                best_cut: cut,
                secs_total: 1.0,
                load_ms: 0.0,
                parse_ms: 0.0,
            }],
            8,
            "deadbeef",
            label,
        );
        rendered.into_iter().next().unwrap()
    }

    #[test]
    fn field_extracts_values_from_rendered_rows() {
        let line = row("v1", "balu", "PROP", 1, 27.0);
        assert_eq!(field(&line, "circuit"), Some("balu"));
        assert_eq!(field(&line, "method"), Some("PROP"));
        assert_eq!(field(&line, "threads"), Some("1"));
        assert_eq!(field(&line, "label"), Some("v1"));
        assert_eq!(field(&line, "missing"), None);
    }

    #[test]
    fn merge_replaces_rows_with_the_same_key() {
        let old = format!("[\n{},\n{}\n]\n", row("v1", "balu", "PROP", 1, 27.0),
            row("v1", "p2", "PROP", 1, 150.0));
        // Re-running the v1/balu/PROP/1 point must replace the stale row,
        // not duplicate it; the untouched p2 row survives.
        let fresh = vec![row("v1", "balu", "PROP", 1, 25.0)];
        let merged = merge_rows(&old, &fresh);
        assert_eq!(merged.len(), 2);
        assert!(merged[0].contains("\"circuit\": \"p2\""));
        assert!(merged[1].contains("\"best_cut\": 25"));
        let dupes = merged
            .iter()
            .filter(|l| l.contains("\"circuit\": \"balu\""))
            .count();
        assert_eq!(dupes, 1);
    }

    #[test]
    fn merge_keys_distinguish_label_method_and_threads() {
        let old = format!(
            "[\n{},\n{},\n{}\n]\n",
            row("v1", "balu", "PROP", 1, 27.0),
            row("v2", "balu", "PROP", 1, 27.0),
            row("v1", "balu", "FM-bucket", 1, 30.0),
        );
        let fresh = vec![row("v1", "balu", "PROP", 8, 27.0)];
        // Different threads: nothing replaced, row appended.
        let merged = merge_rows(&old, &fresh);
        assert_eq!(merged.len(), 4);
        // Same key but different label: only the v1 row is replaced.
        let merged = merge_rows(&old, &[row("v1", "balu", "PROP", 1, 20.0)]);
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().any(|l| l.contains("\"label\": \"v2\"")));
        assert!(merged.iter().any(|l| l.contains("\"best_cut\": 20")));
    }

    #[test]
    fn merge_backfills_legacy_rows_with_provenance_defaults() {
        // A row from before the provenance fields existed.
        let legacy = "  {\"circuit\": \"balu\", \"method\": \"PROP\", \"runs\": 20, \
                      \"threads\": 1, \"best_cut\": 18, \"secs_total\": 0.3, \
                      \"secs_per_run\": 0.015},";
        let merged = merge_rows(legacy, &[row("v1", "p2", "PROP", 1, 150.0)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(field(&merged[0], "intra_threads"), Some("0"));
        assert_eq!(field(&merged[0], "load_ms"), Some("0"));
        assert_eq!(field(&merged[0], "parse_ms"), Some("0"));
        assert_eq!(field(&merged[0], "threads_avail"), Some("0"));
        assert_eq!(field(&merged[0], "git_rev"), Some("unknown"));
        assert_eq!(field(&merged[0], "label"), Some(""));
        // The backfill is idempotent: normalizing a full-schema row is a
        // no-op.
        assert_eq!(normalize_row(&merged[0]), merged[0]);
        // And a legacy row now participates in keyed deduplication.
        let merged = merge_rows(legacy, &[row("", "balu", "PROP", 1, 17.0)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(field(&merged[0], "best_cut"), Some("17"));
    }

    #[test]
    fn merge_tolerates_garbage_and_preserves_bracketless_lines() {
        let old = "[\nnot a row\n]\n";
        let merged = merge_rows(old, &[row("v1", "balu", "PROP", 1, 1.0)]);
        // Non-row lines are dropped (they never contained records), and
        // the new rows always land.
        assert_eq!(merged.len(), 1);
    }
}
