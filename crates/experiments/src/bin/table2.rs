//! Regenerates Table 2 of the paper: cutset sizes under the 50-50%
//! balance criterion for FM (100/40/20 runs), LA-2, LA-3, WINDOW, and
//! PROP (20 runs), with PROP's improvement percentages.

use prop_core::BalanceConstraint;
use prop_experiments::methods::{self, MethodOutcome};
use prop_experiments::report::{fmt_cut, fmt_pct, improvement_pct, Table};
use prop_experiments::Options;

fn main() {
    let opts = Options::from_args();
    let fm = methods::fm();
    let la2 = methods::la(2);
    let la3 = methods::la(3);
    let prop = methods::prop();

    let columns = [
        ("FM100", 100usize),
        ("FM40", 40),
        ("FM20", 20),
        ("LA-2", 20),
        ("LA-3", 20),
        ("WINDOW", 20),
        ("PROP", 20),
    ];
    println!("Table 2 — 50-50% balance cutsets");
    println!();
    let mut header: Vec<String> = vec!["Test Case".into()];
    header.extend(columns.iter().map(|&(n, _)| n.to_string()));
    let mut table = Table::new(header);

    let mut totals = vec![0.0f64; columns.len()];
    for spec in opts.circuits() {
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let balance = BalanceConstraint::bisection(graph.num_nodes());
        let mut row = vec![spec.name.to_string()];
        let mut outcomes: Vec<MethodOutcome> = Vec::new();
        for &(name, paper_runs) in &columns {
            let runs = opts.scaled_runs(paper_runs);
            let outcome = match name {
                "FM100" | "FM40" | "FM20" => {
                    methods::run_iterative(name, &fm, &graph, balance, runs)
                }
                "LA-2" => methods::run_iterative(name, &la2, &graph, balance, runs),
                "LA-3" => methods::run_iterative(name, &la3, &graph, balance, runs),
                "WINDOW" => methods::run_global(name, &methods::window(runs), &graph, balance),
                "PROP" => methods::run_iterative(name, &prop, &graph, balance, runs),
                _ => unreachable!("column list is fixed"),
            };
            row.push(fmt_cut(outcome.cut));
            outcomes.push(outcome);
        }
        for (t, o) in totals.iter_mut().zip(&outcomes) {
            *t += o.cut;
        }
        table.push_row(row);
        eprintln!("  done: {}", spec.name);
    }
    let mut total_row = vec!["Total Cuts".to_string()];
    total_row.extend(totals.iter().map(|&t| fmt_cut(t)));
    table.push_row(total_row);
    print!("{}", table.render());

    println!();
    println!("PROP improvement over each method (paper convention, totals):");
    let prop_total = totals[columns.len() - 1];
    for (i, &(name, _)) in columns.iter().enumerate().take(columns.len() - 1) {
        println!(
            "  vs {:<7} {:>6}%   (paper: FM100 22.3, FM40 26.9, FM20 30.0, LA-2 27.3, LA-3 16.6, WINDOW 25.9)",
            name,
            fmt_pct(improvement_pct(prop_total, totals[i]))
        );
    }
}
