//! Regenerates Table 4 of the paper: CPU seconds per run for every
//! compared method, plus the total-time and speed-ratio summaries the
//! paper's §4 discusses.

use prop_core::BalanceConstraint;
use prop_experiments::methods;
use prop_experiments::report::{fmt_secs, Table};
use prop_experiments::Options;

fn main() {
    let opts = Options::from_args();
    let fm = methods::fm();
    let fm_tree = methods::fm_tree();
    let la2 = methods::la(2);
    let la3 = methods::la(3);
    let prop = methods::prop();
    let eig1 = methods::eig1();
    let paraboli = methods::paraboli();
    let melo = methods::melo();

    // Per-run timing probes: a handful of runs per iterative method is
    // enough for a stable per-run figure. `--threads` fans the probe runs
    // out (per-run seconds then reflect the parallel harness).
    let probe_runs = if opts.quick { 2 } else { 3 };
    let policy = opts.policy();

    println!("Table 4 — seconds per run (iterative) / per invocation (global)");
    println!();
    let mut table = Table::new([
        "Test Case",
        "FM-bucket",
        "FM-tree",
        "LA-2",
        "LA-3",
        "PROP",
        "EIG1",
        "Paraboli",
        "MELO",
        "WINDOW",
    ]);
    // Accumulate the paper's total-time protocol: per-run times scaled by
    // the number of runs each method is given in Tables 2-3.
    let mut totals = [0.0f64; 9];
    let run_scale = [100.0, 100.0, 40.0, 20.0, 20.0, 1.0, 1.0, 1.0, 1.0];
    for spec in opts.circuits() {
        let graph = spec.instantiate().expect("valid Table-1 spec");
        let b5050 = BalanceConstraint::bisection(graph.num_nodes());
        let b4555 =
            BalanceConstraint::new(0.45, 0.55, graph.num_nodes()).expect("valid ratios");
        let outcomes = [
            methods::run_iterative_with("FM-bucket", &fm, &graph, b5050, probe_runs, policy),
            methods::run_iterative_with("FM-tree", &fm_tree, &graph, b5050, probe_runs, policy),
            methods::run_iterative_with("LA-2", &la2, &graph, b5050, probe_runs, policy),
            methods::run_iterative_with("LA-3", &la3, &graph, b5050, probe_runs, policy),
            // The paper's Table-4 PROP column is the 45-55% run time.
            methods::run_iterative_with("PROP", &prop, &graph, b4555, probe_runs, policy),
            methods::run_global("EIG1", &eig1, &graph, b4555),
            methods::run_global("Paraboli", &paraboli, &graph, b4555),
            methods::run_global("MELO", &melo, &graph, b4555),
            methods::run_global("WINDOW", &methods::window(opts.scaled_runs(20)), &graph, b5050),
        ];
        let mut row = vec![spec.name.to_string()];
        for ((t, o), scale) in totals.iter_mut().zip(&outcomes).zip(run_scale) {
            *t += o.seconds_per_run * scale;
            row.push(fmt_secs(o.seconds_per_run));
        }
        table.push_row(row);
        eprintln!("  done: {}", spec.name);
    }
    let mut total_row = vec!["Total (paper runs)".to_string()];
    total_row.extend(totals.iter().map(|&t| fmt_secs(t)));
    table.push_row(total_row);
    print!("{}", table.render());

    println!();
    println!("totals scale per-run times by the paper's run counts:");
    println!("  FM x100, LA-2 x40, LA-3 x20, PROP x20; global methods x1");
    let prop_total = totals[4].max(1e-12); // PROP x20 runs
    let prop_per_run = prop_total / 20.0;
    let fm_per_run = (totals[0] / 100.0).max(1e-12);
    println!();
    println!("speed ratios (paper: PROP 4.6x slower than FM per run,");
    println!("  3.15x faster than FM100-tree total, 3.9x faster than PARABOLI,");
    println!("  2.2x faster than LA-3 and MELO):");
    println!("  PROP/FM-bucket per-run ratio: {:.1}x", prop_per_run / fm_per_run);
    println!("  FM100-tree / PROP20 total:    {:.2}x", totals[1] / prop_total);
    println!("  Paraboli / PROP20 total:      {:.2}x", totals[6] / prop_total);
    println!("  LA-3(20) / PROP20 total:      {:.2}x", totals[3] / prop_total);
    println!("  MELO / PROP20 total:          {:.2}x", totals[7] / prop_total);
}
