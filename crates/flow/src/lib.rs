//! Flow-based cut refinement for hypergraph bipartitions.
//!
//! Move-based refiners (FM, PROP) improve a cut one node at a time and
//! stop at the first local minimum the move order runs into. This crate
//! adds the orthogonal, *globally optimal* local step of Heuer, Sanders &
//! Schlag's flow-based refinement: around the current cut it grows a
//! size-bounded **corridor** of nodes, expands the corridor's hypergraph
//! into a directed flow network (Lawler's construction, under which the
//! network's minimum cut equals the minimum hypergraph cut over all
//! bipartitions of the corridor), solves max-flow with a from-scratch
//! Dinic kernel, and adopts the min-cut-induced bipartition iff it is
//! balance-feasible and strictly improves the from-scratch recounted cut.
//!
//! The three layers are usable independently:
//!
//! * [`FlowNetwork`] / [`MaxFlow`] — a std-only Dinic (BFS level graph +
//!   blocking flow) solver over `f64` capacities. Every answer carries a
//!   checkable certificate: [`FlowNetwork::check_min_cut`] verifies
//!   conservation, capacity, and that the returned cut's capacity equals
//!   the flow value (max-flow = min-cut witness), so a wrong answer
//!   cannot slip through silently.
//! * [`lawler`] — the hypergraph → flow-network expansion restricted to a
//!   corridor, with the two frontiers contracted into source and sink.
//! * [`corridor`] / [`refine`] — corridor growth bounded by the balance
//!   slack (any reassignment of the corridor stays feasible by
//!   construction) and the accept-if-strictly-better refinement pass.
//!
//! The pass is deterministic — a pure function of the graph, partition,
//! balance, and [`FlowConfig`]; it draws no randomness — and polls the
//! thread-local cancellation slot at every augmentation-round boundary,
//! so a cancelled pass returns with the incoming (feasible) partition
//! untouched.
//!
//! ```
//! use prop_flow::FlowNetwork;
//!
//! // A diamond: s=0, t=3, two disjoint 2-hop paths of capacity 3 and 5.
//! let mut net = FlowNetwork::new(4);
//! net.add_edge(0, 1, 3.0);
//! net.add_edge(1, 3, 3.0);
//! net.add_edge(0, 2, 5.0);
//! net.add_edge(2, 3, 5.0);
//! let flow = net.max_flow(0, 3).expect("not cancelled");
//! assert_eq!(flow.value, 8.0);
//! let cut = net.min_cut_source_side(0);
//! net.check_min_cut(0, 3, flow.value, &cut).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corridor;
mod dinic;
pub mod lawler;
mod refine;

pub use corridor::{grow_corridor, Corridor};
pub use dinic::{FlowEdge, FlowNetwork, MaxFlow};
pub use lawler::CorridorNetwork;
pub use refine::{refine, FlowConfig, FlowPassStats};
