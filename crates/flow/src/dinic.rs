//! The Dinic max-flow solver and its self-verifying cut certificate.

use prop_core::cancel;

/// Residual capacities at or below this threshold count as saturated.
/// Capacities are net weights (integral in practice — unit fine costs
/// stay integral through coarsening — but `f64` by type), so the guard
/// only matters for fractional-weight circuits, where it stops rounding
/// residue from producing near-zero augmenting paths.
const EPS: f64 = 1e-9;

/// Sentinel level for nodes unreached by the BFS phase.
const UNREACHED: u32 = u32::MAX;

/// One directed arc of a [`FlowNetwork`], as seen by certificate checkers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FlowEdge {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Original capacity (possibly `f64::INFINITY`).
    pub capacity: f64,
    /// Flow currently assigned by the solver, in `[0, capacity]`.
    pub flow: f64,
}

/// Outcome of a [`FlowNetwork::max_flow`] run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MaxFlow {
    /// The maximum flow value (= minimum cut capacity).
    pub value: f64,
    /// Augmenting paths pushed across all blocking-flow phases.
    pub augments: u64,
    /// BFS level-graph phases run (each strictly increases the
    /// source→sink level, so this is at most the node count).
    pub rounds: u64,
}

/// A directed flow network with residual bookkeeping.
///
/// Arcs are stored as skew pairs: [`add_edge`](FlowNetwork::add_edge)
/// appends the forward arc at an even index and its zero-capacity
/// residual twin at the following odd index, so `e ^ 1` is always the
/// reverse of `e`.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    to: Vec<u32>,
    /// Remaining residual capacity per arc.
    cap: Vec<f64>,
    /// Original capacity per arc (zero for residual twins).
    orig: Vec<f64>,
    /// Outgoing arc ids per node (forward arcs and residual twins).
    adj: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// An empty network over `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            orig: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Appends an isolated node and returns its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of directed arcs added via [`add_edge`](Self::add_edge).
    pub fn num_edges(&self) -> usize {
        self.to.len() / 2
    }

    /// Adds a directed arc `u → v` of capacity `cap` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative
    /// or NaN.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        assert!(u < self.adj.len() && v < self.adj.len(), "endpoint out of range");
        assert!(cap >= 0.0, "capacity must be non-negative and not NaN");
        let id = self.to.len();
        self.to.push(v as u32);
        self.cap.push(cap);
        self.orig.push(cap);
        self.adj[u].push(id as u32);
        self.to.push(u as u32);
        self.cap.push(0.0);
        self.orig.push(0.0);
        self.adj[v].push(id as u32 + 1);
        id
    }

    /// The forward arcs with their current flow assignment
    /// (`flow = capacity − residual`).
    pub fn edges(&self) -> Vec<FlowEdge> {
        (0..self.to.len())
            .step_by(2)
            .map(|e| FlowEdge {
                from: self.to[e + 1] as usize,
                to: self.to[e] as usize,
                capacity: self.orig[e],
                flow: if self.orig[e].is_finite() {
                    self.orig[e] - self.cap[e]
                } else {
                    // Infinite arcs track the pushed flow on the twin.
                    self.cap[e + 1]
                },
            })
            .collect()
    }

    /// Runs Dinic from `s` to `t`, mutating the residual capacities.
    ///
    /// Returns `None` when the thread-local cancellation slot trips — the
    /// poll sits at every augmentation-round (BFS phase) boundary — in
    /// which case the partial residual state must not be used for cuts.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> Option<MaxFlow> {
        assert!(s < self.num_nodes() && t < self.num_nodes() && s != t);
        let n = self.num_nodes();
        let mut level = vec![UNREACHED; n];
        let mut iter = vec![0u32; n];
        let mut queue = Vec::with_capacity(n);
        let mut result = MaxFlow {
            value: 0.0,
            augments: 0,
            rounds: 0,
        };
        loop {
            if cancel::requested() {
                return None;
            }
            if !self.bfs_levels(s, t, &mut level, &mut queue) {
                return Some(result);
            }
            result.rounds += 1;
            iter.fill(0);
            while let Some(pushed) = self.augment(s, t, &level, &mut iter) {
                result.value += pushed;
                result.augments += 1;
            }
        }
    }

    /// Builds the residual level graph; `true` iff `t` is reachable.
    fn bfs_levels(&self, s: usize, t: usize, level: &mut [u32], queue: &mut Vec<u32>) -> bool {
        level.fill(UNREACHED);
        level[s] = 0;
        queue.clear();
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            for &e in &self.adj[v] {
                let u = self.to[e as usize] as usize;
                if self.cap[e as usize] > EPS && level[u] == UNREACHED {
                    level[u] = level[v] + 1;
                    queue.push(u as u32);
                }
            }
        }
        level[t] != UNREACHED
    }

    /// Finds one augmenting path in the level graph (advancing the
    /// per-node arc cursors), pushes its bottleneck, and returns it.
    /// Iterative — corridor networks can be deep enough to overflow a
    /// recursive DFS.
    fn augment(&mut self, s: usize, t: usize, level: &[u32], iter: &mut [u32]) -> Option<f64> {
        let mut path: Vec<u32> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                let bottleneck = path
                    .iter()
                    .map(|&e| self.cap[e as usize])
                    .fold(f64::INFINITY, f64::min);
                debug_assert!(bottleneck > EPS && bottleneck.is_finite());
                for &e in &path {
                    self.cap[e as usize] -= bottleneck;
                    self.cap[e as usize ^ 1] += bottleneck;
                }
                return Some(bottleneck);
            }
            let mut advanced = false;
            while (iter[v] as usize) < self.adj[v].len() {
                let e = self.adj[v][iter[v] as usize] as usize;
                let u = self.to[e] as usize;
                if self.cap[e] > EPS && level[u] == level[v] + 1 {
                    path.push(e as u32);
                    v = u;
                    advanced = true;
                    break;
                }
                iter[v] += 1;
            }
            if !advanced {
                let e = path.pop()?;
                v = self.to[e as usize ^ 1] as usize;
                iter[v] += 1;
            }
        }
    }

    /// The source side of a minimum cut: nodes reachable from `s` in the
    /// residual graph. Call after [`max_flow`](Self::max_flow) returned
    /// `Some` — this is the *smallest* source side among all min cuts.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.num_nodes()];
        let mut queue = vec![s as u32];
        side[s] = true;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            for &e in &self.adj[v] {
                let u = self.to[e as usize] as usize;
                if self.cap[e as usize] > EPS && !side[u] {
                    side[u] = true;
                    queue.push(u as u32);
                }
            }
        }
        side
    }

    /// The source side of the *other* extreme minimum cut: everything
    /// that cannot reach `t` in the residual graph — the **largest**
    /// source side. Together with
    /// [`min_cut_source_side`](Self::min_cut_source_side) this brackets
    /// the lattice of min cuts, which is what the most-balanced-cut
    /// tie-break chooses between.
    pub fn min_cut_sink_side_complement(&self, t: usize) -> Vec<bool> {
        let mut reaches_t = vec![false; self.num_nodes()];
        let mut queue = vec![t as u32];
        reaches_t[t] = true;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            // u → v is residual iff the twin of an arc v → u has capacity.
            for &e in &self.adj[v] {
                let u = self.to[e as usize] as usize;
                if self.cap[e as usize ^ 1] > EPS && !reaches_t[u] {
                    reaches_t[u] = true;
                    queue.push(u as u32);
                }
            }
        }
        reaches_t.iter().map(|&r| !r).collect()
    }

    /// Verifies the max-flow = min-cut certificate of the current
    /// residual state against `value` and the cut `source_side`:
    ///
    /// 1. **Capacity** — every arc's flow lies in `[0, capacity]`.
    /// 2. **Conservation** — every node except `s`/`t` has zero net flow,
    ///    `s` emits `value`, `t` absorbs it.
    /// 3. **Cut = flow** — the total capacity of arcs crossing
    ///    `source_side → sink side` equals `value` (finite arcs only; an
    ///    infinite arc in the cut is an immediate failure). By weak
    ///    duality any cut's capacity bounds any flow from above, so
    ///    equality proves both sides optimal.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated property.
    pub fn check_min_cut(
        &self,
        s: usize,
        t: usize,
        value: f64,
        source_side: &[bool],
    ) -> Result<(), String> {
        if source_side.len() != self.num_nodes() {
            return Err("cut side vector length mismatch".into());
        }
        if !source_side[s] || source_side[t] {
            return Err("cut must separate source from sink".into());
        }
        let tol = 1e-6 * value.abs().max(1.0);
        let mut excess = vec![0.0f64; self.num_nodes()];
        let mut cut_capacity = 0.0f64;
        for edge in self.edges() {
            if edge.flow < -tol || edge.flow > edge.capacity + tol {
                return Err(format!(
                    "arc {}→{} flow {} outside [0, {}]",
                    edge.from, edge.to, edge.flow, edge.capacity
                ));
            }
            excess[edge.from] -= edge.flow;
            excess[edge.to] += edge.flow;
            if source_side[edge.from] && !source_side[edge.to] {
                if !edge.capacity.is_finite() {
                    return Err(format!(
                        "infinite-capacity arc {}→{} crosses the cut",
                        edge.from, edge.to
                    ));
                }
                cut_capacity += edge.capacity;
            }
        }
        for (v, &e) in excess.iter().enumerate() {
            let want = if v == s {
                -value
            } else if v == t {
                value
            } else {
                0.0
            };
            if (e - want).abs() > tol {
                return Err(format!("node {v} violates conservation: excess {e}, want {want}"));
            }
        }
        if (cut_capacity - value).abs() > tol {
            return Err(format!(
                "cut capacity {cut_capacity} does not witness flow value {value}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved(net: &mut FlowNetwork, s: usize, t: usize) -> MaxFlow {
        let flow = net.max_flow(s, t).expect("not cancelled");
        for side in [net.min_cut_source_side(s), net.min_cut_sink_side_complement(t)] {
            net.check_min_cut(s, t, flow.value, &side).unwrap();
        }
        flow
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 4.0);
        assert_eq!(solved(&mut net, 0, 1).value, 4.0);
        assert_eq!(net.num_edges(), 1);
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0);
        let flow = solved(&mut net, 0, 2);
        assert_eq!(flow.value, 0.0);
        assert_eq!(flow.rounds, 0);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert_eq!(solved(&mut net, 0, 5).value, 23.0);
    }

    #[test]
    fn bottleneck_forces_residual_rerouting() {
        // Flow must cancel along the cross edge to reach the optimum 2.0.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert_eq!(solved(&mut net, 0, 3).value, 2.0);
    }

    #[test]
    fn infinite_arcs_never_enter_the_cut() {
        // s → a (inf), a → b (3), b → t (inf): the only finite cut is {a→b}.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, f64::INFINITY);
        net.add_edge(1, 2, 3.0);
        net.add_edge(2, 3, f64::INFINITY);
        let flow = solved(&mut net, 0, 3);
        assert_eq!(flow.value, 3.0);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn extreme_cuts_bracket_the_lattice() {
        // A path with two equal bottlenecks: the small cut sits right
        // after s, the large one right before t.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 5.0);
        net.add_edge(2, 3, 2.0);
        let flow = solved(&mut net, 0, 3);
        assert_eq!(flow.value, 2.0);
        assert_eq!(net.min_cut_source_side(0), vec![true, false, false, false]);
        assert_eq!(
            net.min_cut_sink_side_complement(3),
            vec![true, true, true, false]
        );
    }

    #[test]
    fn certificate_rejects_wrong_claims() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 4.0);
        let flow = net.max_flow(0, 1).unwrap();
        let side = net.min_cut_source_side(0);
        assert!(net.check_min_cut(0, 1, flow.value + 1.0, &side).is_err());
        assert!(net.check_min_cut(0, 1, flow.value, &[true, true]).is_err());
        assert!(net.check_min_cut(0, 1, flow.value, &[true]).is_err());
    }

    #[test]
    fn cancellation_aborts_between_rounds() {
        let token = prop_core::CancelToken::new();
        token.cancel();
        let aborted = cancel::scope(&token, || {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 1.0);
            net.max_flow(0, 1)
        });
        assert_eq!(aborted, None);
    }
}
