//! Corridor growth around the current cut, bounded by the balance slack.
//!
//! A *corridor* is the set of nodes the flow pass is allowed to
//! reassign. It is grown by BFS from the cut boundary, one side at a
//! time, under the invariant that makes the pass safe: **the corridor on
//! side `S` never outweighs the slack of the opposite side** — so even if
//! the min cut flips *every* corridor-`S` node across, the opposite side
//! stays within its balance bound. Any flow-induced bipartition of a
//! corridor grown here is therefore balance-feasible by construction
//! (the pass still re-verifies from scratch before accepting).
//!
//! Growth is deterministic: seeds and per-layer candidates are visited in
//! ascending node-id order, so the corridor is a pure function of the
//! graph, the partition, the balance, and the size cap.

use prop_core::{BalanceConstraint, Bipartition, CutState, Side, SideWeights};
use prop_netlist::{Hypergraph, NodeId};

/// Nets with more pins than this are not traversed when growing the
/// corridor: their pins are barely localized around the cut, and walking
/// them would balloon the frontier. (They still enter the flow network if
/// a corridor node pins them — exclusion here only shapes *growth*.)
const GROW_MAX_NET: usize = 512;

/// A size- and slack-bounded node corridor around the cut.
#[derive(Clone, Debug)]
pub struct Corridor {
    /// Corridor nodes in the (deterministic) order they were admitted.
    pub nodes: Vec<NodeId>,
    /// Position of each graph node in `nodes`, or `u32::MAX`.
    position: Vec<u32>,
    /// Corridor node count per side.
    pub side_count: [usize; 2],
    /// Corridor node weight per side.
    pub side_weight: [f64; 2],
}

impl Corridor {
    /// Position of `node` inside [`nodes`](Corridor::nodes), if admitted.
    #[inline]
    pub fn position(&self, node: NodeId) -> Option<usize> {
        let p = self.position[node.index()];
        (p != u32::MAX).then_some(p as usize)
    }

    /// Whether `node` is part of the corridor.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.position[node.index()] != u32::MAX
    }

    /// Number of corridor nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the corridor is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds a corridor from an explicit node list (positions follow the
    /// list order) — the constructor unit tests and external callers use
    /// to pin down expansion behavior without growth heuristics.
    ///
    /// # Panics
    ///
    /// Panics if a node repeats or is out of range.
    pub fn from_nodes(graph: &Hypergraph, partition: &Bipartition, nodes: Vec<NodeId>) -> Corridor {
        let mut corridor = Corridor {
            nodes: Vec::new(),
            position: vec![u32::MAX; graph.num_nodes()],
            side_count: [0, 0],
            side_weight: [0.0, 0.0],
        };
        for node in nodes {
            assert!(
                corridor.position[node.index()] == u32::MAX,
                "duplicate corridor node {node}"
            );
            admit(
                &mut corridor,
                node,
                partition.side(node),
                graph.node_weight(node),
            );
        }
        corridor
    }
}

/// The admission budget of one side's corridor: how much node weight (or
/// how many nodes, for count constraints) may flip to the *other* side
/// without breaking its balance bound.
struct Budget {
    /// Remaining weight budget (`f64::INFINITY` for count constraints).
    weight: f64,
    /// Remaining node-count budget (`usize::MAX` for weighted ones).
    count: usize,
    /// Remaining cap from the corridor-size knob.
    cap: usize,
}

impl Budget {
    fn admits(&self, node_weight: f64) -> bool {
        self.cap > 0 && self.count > 0 && node_weight <= self.weight + 1e-9
    }

    fn charge(&mut self, node_weight: f64) {
        self.cap -= 1;
        self.count -= 1;
        self.weight -= node_weight;
    }
}

/// Grows the corridor around the current cut of `partition`.
///
/// `max_per_side` caps the corridor node count on each side (the
/// CLI-exposed corridor-size knob); the balance slack caps its weight.
/// Returns `None` when the cut has no boundary (nothing to refine) or
/// the slack admits no node at all.
pub fn grow_corridor(
    graph: &Hypergraph,
    partition: &Bipartition,
    cut: &CutState,
    balance: BalanceConstraint,
    max_per_side: usize,
) -> Option<Corridor> {
    let n = graph.num_nodes();
    if cut.cut_nets() == 0 {
        return None;
    }
    let weights = SideWeights::new(graph, partition);
    let budget = |side: Side| -> Budget {
        let other = side.other();
        if balance.is_weighted() {
            Budget {
                weight: balance.max_part_weight() - weights.get(other),
                count: usize::MAX,
                cap: max_per_side,
            }
        } else {
            Budget {
                weight: f64::INFINITY,
                count: balance.max_part().saturating_sub(partition.count(other)),
                cap: max_per_side,
            }
        }
    };
    let mut budgets = [budget(Side::A), budget(Side::B)];

    // Seeds: every node pinned by a cut net, in ascending id order.
    let mut seeded = vec![false; n];
    for net in 0..graph.num_nets() {
        let net = prop_netlist::NetId::new(net);
        if cut.is_cut(net) {
            for &pin in graph.pins_of(net) {
                seeded[pin.index()] = true;
            }
        }
    }

    let mut corridor = Corridor {
        nodes: Vec::new(),
        position: vec![u32::MAX; n],
        side_count: [0, 0],
        side_weight: [0.0, 0.0],
    };
    let mut visited = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();
    for v in 0..n {
        if !seeded[v] {
            continue;
        }
        visited[v] = true;
        let node = NodeId::new(v);
        let side = partition.side(node);
        let w = graph.node_weight(node);
        if budgets[side.index()].admits(w) {
            budgets[side.index()].charge(w);
            admit(&mut corridor, node, side, w);
            frontier.push(v as u32);
        }
    }
    if corridor.is_empty() {
        return None;
    }

    // BFS layers: only admitted nodes expand, candidates are deduped and
    // visited in ascending id order, and a node that does not fit its
    // side's remaining budget is skipped (not a growth barrier — a
    // lighter later candidate may still fit).
    while !frontier.is_empty() {
        let mut candidates: Vec<u32> = Vec::new();
        for &v in &frontier {
            let node = NodeId::new(v as usize);
            for &net in graph.nets_of(node) {
                let pins = graph.pins_of(net);
                if pins.len() > GROW_MAX_NET {
                    continue;
                }
                for &pin in pins {
                    if !visited[pin.index()] {
                        visited[pin.index()] = true;
                        candidates.push(pin.index() as u32);
                    }
                }
            }
        }
        candidates.sort_unstable();
        frontier.clear();
        for &v in &candidates {
            let node = NodeId::new(v as usize);
            let side = partition.side(node);
            let w = graph.node_weight(node);
            if budgets[side.index()].admits(w) {
                budgets[side.index()].charge(w);
                admit(&mut corridor, node, side, w);
                frontier.push(v);
            }
        }
    }
    Some(corridor)
}

fn admit(corridor: &mut Corridor, node: NodeId, side: Side, weight: f64) {
    corridor.position[node.index()] = corridor.nodes.len() as u32;
    corridor.nodes.push(node);
    corridor.side_count[side.index()] += 1;
    corridor.side_weight[side.index()] += weight;
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::cut_cost;
    use prop_netlist::HypergraphBuilder;

    /// A path of 6 unit nodes cut between 2 and 3.
    fn path_graph() -> (Hypergraph, Bipartition) {
        let mut b = HypergraphBuilder::new(6);
        for i in 0..5 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        let g = b.build().unwrap();
        let sides = vec![Side::A, Side::A, Side::A, Side::B, Side::B, Side::B];
        let p = Bipartition::from_sides(sides);
        (g, p)
    }

    #[test]
    fn corridor_grows_outward_from_the_boundary() {
        let (g, p) = path_graph();
        let cut = CutState::new(&g, &p);
        assert_eq!(cut_cost(&g, &p), 1.0);
        let balance = BalanceConstraint::new(0.3, 0.7, 6).unwrap();
        // max_part = 4, so each side's corridor admits 4 - 3 = 1 node:
        // exactly the two boundary nodes.
        let c = grow_corridor(&g, &p, &cut, balance, 100).unwrap();
        assert_eq!(c.nodes, vec![NodeId::new(2), NodeId::new(3)]);
        assert_eq!(c.side_count, [1, 1]);
        assert_eq!(c.position(NodeId::new(2)), Some(0));
        assert_eq!(c.position(NodeId::new(3)), Some(1));
        assert!(!c.contains(NodeId::new(0)));
        assert!(!c.is_empty());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn corridor_count_never_exceeds_the_count_slack() {
        let (g, p) = path_graph();
        let cut = CutState::new(&g, &p);
        // Generous ratios: max_part = 5, slack 2 per side. BFS reaches
        // nodes 1..=4 (layer 2 from each boundary).
        let balance = BalanceConstraint::new(0.2, 0.9, 6).unwrap();
        let c = grow_corridor(&g, &p, &cut, balance, 100).unwrap();
        let slack = balance.max_part() - 3;
        assert!(c.side_count[0] <= slack);
        assert!(c.side_count[1] <= slack);
        assert_eq!(c.side_count, [2, 2]);
    }

    #[test]
    fn corridor_weight_never_exceeds_the_weighted_slack() {
        let mut b = HypergraphBuilder::new(6);
        for i in 0..5 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        b.set_node_weights(vec![1.0, 2.0, 1.0, 1.0, 2.0, 1.0]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![
            Side::A,
            Side::A,
            Side::A,
            Side::B,
            Side::B,
            Side::B,
        ]);
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::weighted(0.25, 0.75, &g).unwrap();
        let c = grow_corridor(&g, &p, &cut, balance, 100).unwrap();
        let w = SideWeights::new(&g, &p);
        for side in [Side::A, Side::B] {
            let slack = balance.max_part_weight() - w.get(side.other());
            assert!(
                c.side_weight[side.index()] <= slack + 1e-9,
                "side {side:?}: corridor weight {} over slack {slack}",
                c.side_weight[side.index()]
            );
        }
    }

    #[test]
    fn size_cap_limits_each_side() {
        let (g, p) = path_graph();
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::new(0.2, 0.9, 6).unwrap();
        let c = grow_corridor(&g, &p, &cut, balance, 1).unwrap();
        assert_eq!(c.side_count, [1, 1]);
    }

    #[test]
    fn uncut_partition_has_no_corridor() {
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::new(0.25, 0.75, 4).unwrap();
        assert!(grow_corridor(&g, &p, &cut, balance, 10).is_none());
    }

    #[test]
    fn exhausted_slack_yields_no_corridor() {
        // Exact bisection of 6 nodes: max_part = 3, both sides full, so
        // no node may be admitted on either side.
        let (g, p) = path_graph();
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::bisection(6);
        assert!(grow_corridor(&g, &p, &cut, balance, 10).is_none());
    }
}
