//! The corridor-flow refinement pass: grow → expand → max-flow → accept.
//!
//! Each round grows a corridor around the current cut, solves the
//! corridor's min-cut exactly via max-flow on the Lawler expansion, and
//! adopts the induced bipartition iff it is balance-feasible and
//! *strictly* improves the from-scratch recounted cut. Among the two
//! extreme minimum cuts of the min-cut lattice (smallest and largest
//! source side) it prefers the most balanced one; monotone strict
//! improvement bounds the rounds, and an explicit round cap bounds the
//! cost when the corridor oscillates without converging.

use crate::corridor::grow_corridor;
use crate::lawler::CorridorNetwork;
use prop_core::{prof, BalanceConstraint, Bipartition, CutState, Side, SideWeights};
use prop_netlist::Hypergraph;

/// Hard cap on grow→flow→accept rounds per pass. Each accepted round
/// strictly lowers the cut, so this only trims pathological corridors
/// that keep finding 1-net improvements on huge boundaries.
const MAX_ROUNDS: usize = 8;

/// Tuning knobs of the flow refinement pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowConfig {
    /// Master switch; `false` leaves the host engine byte-identical.
    pub enabled: bool,
    /// Cap on corridor nodes admitted per side (the balance slack may
    /// bind earlier).
    pub corridor_nodes: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            enabled: false,
            corridor_nodes: 3000,
        }
    }
}

/// What a [`refine`] pass did, for profiling and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowPassStats {
    /// Corridors grown (= min-cut rounds attempted).
    pub corridors: u64,
    /// Augmenting paths pushed across all rounds.
    pub augments: u64,
    /// Rounds whose induced bipartition was accepted.
    pub accepted: u64,
    /// Cut cost of the partition when the pass returned (recounted).
    pub cut_cost: f64,
    /// Whether the pass stopped on a cancellation request. The incoming
    /// partition is left untouched by the interrupted round.
    pub cancelled: bool,
}

/// Runs corridor-flow rounds on `partition` until no strict improvement
/// is found, the round cap trips, or cancellation is requested.
///
/// The incoming partition is assumed feasible; every accepted candidate
/// is re-verified feasible and strictly better under a from-scratch cut
/// recount, so the pass can only improve the partition. The kernel's
/// min-cut certificate is checked on every round (panics on violation —
/// a wrong max-flow answer is a bug, not a quality regression).
pub fn refine(
    graph: &Hypergraph,
    partition: &mut Bipartition,
    balance: BalanceConstraint,
    config: &FlowConfig,
) -> FlowPassStats {
    let mut stats = FlowPassStats {
        cut_cost: CutState::new(graph, partition).cut_cost(),
        ..FlowPassStats::default()
    };
    if !config.enabled {
        return stats;
    }
    for _ in 0..MAX_ROUNDS {
        let cut = CutState::new(graph, partition);
        if cut.cut_nets() == 0 {
            break;
        }
        let Some(corridor) = grow_corridor(graph, partition, &cut, balance, config.corridor_nodes)
        else {
            break;
        };
        stats.corridors += 1;
        let built = CorridorNetwork::build(graph, partition.sides(), &cut, &corridor);
        if built.free_nets == 0 {
            prof::count_flow_round(0, false);
            break;
        }
        let mut network = built.network.clone();
        let Some(flow) = network.max_flow(built.source, built.sink) else {
            stats.cancelled = true;
            break;
        };
        stats.augments += flow.augments;
        // Self-verify the kernel before trusting its cut.
        let small = network.min_cut_source_side(built.source);
        network
            .check_min_cut(built.source, built.sink, flow.value, &small)
            .expect("max-flow certificate violated on the source-side cut");
        let large = network.min_cut_sink_side_complement(built.sink);
        network
            .check_min_cut(built.source, built.sink, flow.value, &large)
            .expect("max-flow certificate violated on the sink-side cut");

        // Evaluate both extreme min cuts; among feasible strict
        // improvers take (cut, imbalance, candidate order) — the
        // most-balanced-cut tie-break.
        let mut best: Option<(f64, f64, Bipartition)> = None;
        for side_vec in [&small, &large] {
            let assigned = built.corridor_sides(side_vec);
            let mut sides = partition.sides().to_vec();
            for (i, &node) in corridor.nodes.iter().enumerate() {
                sides[node.index()] = assigned[i];
            }
            let candidate = Bipartition::from_sides(sides);
            let cand_cut = CutState::new(graph, &candidate).cut_cost();
            if cand_cut >= stats.cut_cost {
                continue;
            }
            let weights = SideWeights::new(graph, &candidate);
            let counts = [candidate.count(Side::A), candidate.count(Side::B)];
            let w = [weights.get(Side::A), weights.get(Side::B)];
            if !balance.is_feasible(counts, w) {
                continue;
            }
            let imbalance = if balance.is_weighted() {
                (w[0] - w[1]).abs()
            } else {
                (counts[0] as f64 - counts[1] as f64).abs()
            };
            let better = match &best {
                None => true,
                Some((bc, bi, _)) => {
                    cand_cut < *bc || (cand_cut == *bc && imbalance < *bi)
                }
            };
            if better {
                best = Some((cand_cut, imbalance, candidate));
            }
        }
        match best {
            Some((cand_cut, _, candidate)) => {
                *partition = candidate;
                stats.cut_cost = cand_cut;
                stats.accepted += 1;
                prof::count_flow_round(flow.augments, true);
            }
            None => {
                prof::count_flow_round(flow.augments, false);
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_core::{cancel, cut_cost, CancelToken};
    use prop_netlist::HypergraphBuilder;

    /// Two 3-cliques bridged by one net, node 2 misplaced: cut 2 → 1.
    fn bridged_triangles() -> (Hypergraph, Bipartition) {
        let mut b = HypergraphBuilder::new(6);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [0, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        b.add_net(1.0, [3, 4]).unwrap();
        b.add_net(1.0, [4, 5]).unwrap();
        b.add_net(1.0, [3, 5]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![
            Side::A,
            Side::A,
            Side::B,
            Side::B,
            Side::B,
            Side::B,
        ]);
        (g, p)
    }

    #[test]
    fn disabled_pass_is_a_no_op() {
        let (g, mut p) = bridged_triangles();
        let before = p.sides().to_vec();
        let stats = refine(&g, &mut p, BalanceConstraint::new(0.3, 0.7, 6).unwrap(), &FlowConfig::default());
        assert_eq!(p.sides(), &before[..]);
        assert_eq!(stats.corridors, 0);
        assert_eq!(stats.cut_cost, 2.0);
    }

    #[test]
    fn flow_recovers_the_bridge_cut() {
        let (g, mut p) = bridged_triangles();
        let balance = BalanceConstraint::new(0.3, 0.7, 6).unwrap();
        let config = FlowConfig {
            enabled: true,
            corridor_nodes: 100,
        };
        let stats = refine(&g, &mut p, balance, &config);
        assert_eq!(stats.cut_cost, 1.0);
        assert_eq!(cut_cost(&g, &p), 1.0);
        assert!(stats.accepted >= 1);
        assert!(!stats.cancelled);
        // 3/3 split survives the balance bound.
        assert_eq!(p.count(Side::A), 3);
    }

    #[test]
    fn accepted_cuts_never_violate_balance() {
        // Exact bisection of a 2/4 start: only side B has slack (one
        // node), so the corridor is just node 2 and the pass may move it
        // across to the feasible 3/3 bridge cut — and no further.
        let (g, mut p) = bridged_triangles();
        let balance = BalanceConstraint::bisection(6);
        let config = FlowConfig {
            enabled: true,
            corridor_nodes: 100,
        };
        let stats = refine(&g, &mut p, balance, &config);
        assert_eq!(stats.cut_cost, 1.0);
        let counts = [p.count(Side::A), p.count(Side::B)];
        assert_eq!(counts, [3, 3]);
        let w = SideWeights::new(&g, &p);
        assert!(balance.is_feasible(counts, [w.get(Side::A), w.get(Side::B)]));
    }

    #[test]
    fn bisection_with_no_slack_grows_no_corridor() {
        // Start at an exact 3/3 bisection: zero slack on both sides.
        let (g, _) = bridged_triangles();
        let mut p = Bipartition::from_sides(vec![
            Side::A,
            Side::A,
            Side::A,
            Side::B,
            Side::B,
            Side::B,
        ]);
        let stats = refine(
            &g,
            &mut p,
            BalanceConstraint::bisection(6),
            &FlowConfig {
                enabled: true,
                corridor_nodes: 100,
            },
        );
        assert_eq!(stats.corridors, 0);
        assert_eq!(stats.cut_cost, 1.0);
    }

    #[test]
    fn cancellation_leaves_the_partition_untouched() {
        let (g, mut p) = bridged_triangles();
        let before = p.sides().to_vec();
        let token = CancelToken::new();
        token.cancel();
        let stats = cancel::scope(&token, || {
            refine(
                &g,
                &mut p,
                BalanceConstraint::new(0.3, 0.7, 6).unwrap(),
                &FlowConfig {
                    enabled: true,
                    corridor_nodes: 100,
                },
            )
        });
        assert!(stats.cancelled);
        assert_eq!(p.sides(), &before[..]);
        assert_eq!(cut_cost(&g, &p), 2.0);
    }
}
