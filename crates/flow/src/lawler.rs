//! Lawler's hypergraph → flow-network expansion over a corridor.
//!
//! For every *free* net — one whose fate the corridor can still decide —
//! the expansion adds a node pair `e_in → e_out` joined by an arc whose
//! capacity is the net's weight, and connects every distinct endpoint
//! `v` of the net through infinite arcs `v → e_in` and `e_out → v`. Any
//! source→sink path must then cross some net's finite bridge arc, so a
//! minimum cut of the network selects a minimum-weight set of nets to
//! leave cut — exactly the minimum hypergraph cut over all corridor
//! bipartitions.
//!
//! Pins outside the corridor are contracted into the terminals: an
//! outside pin on side A *is* the source, an outside pin on side B *is*
//! the sink. A net with outside pins on both sides is permanently cut no
//! matter how the corridor flips ([`CorridorNetwork::locked_weight`]),
//! and a net whose pins collapse to a single endpoint (single-pin and
//! duplicate-pin nets included) can never be cut; neither enters the
//! network.

use crate::corridor::Corridor;
use crate::dinic::FlowNetwork;
use prop_core::{CutState, Side};
use prop_netlist::Hypergraph;

/// The flow network of a corridor, terminals contracted.
#[derive(Clone, Debug)]
pub struct CorridorNetwork {
    /// The expanded network: node 0 = source, node 1 = sink, node `2+i` =
    /// corridor position `i`, then an `(e_in, e_out)` pair per free net.
    pub network: FlowNetwork,
    /// Source node index (always 0).
    pub source: usize,
    /// Sink node index (always 1).
    pub sink: usize,
    /// Number of corridor nodes (block `2..2+corridor_len`).
    pub corridor_len: usize,
    /// Number of free nets expanded into the network.
    pub free_nets: usize,
    /// Total weight of nets touching the corridor that stay cut under
    /// every corridor bipartition (outside pins on both sides).
    pub locked_weight: f64,
    /// Current cut weight of all nets touching the corridor. The best cut
    /// reachable by this corridor is `locked_weight + max_flow`, so a
    /// corridor improves the partition iff that sum is strictly below
    /// this.
    pub region_cut_weight: f64,
}

/// First two node slots of the expansion.
const SOURCE: usize = 0;
const SINK: usize = 1;

impl CorridorNetwork {
    /// Expands the nets touching `corridor` into a flow network, using
    /// `cut` (consistent with `sides`) to price the current region cut.
    pub fn build(
        graph: &Hypergraph,
        sides: &[Side],
        cut: &CutState,
        corridor: &Corridor,
    ) -> CorridorNetwork {
        let k = corridor.nodes.len();
        let mut network = FlowNetwork::new(2 + k);
        let mut free_nets = 0usize;
        let mut locked_weight = 0.0f64;
        let mut region_cut_weight = 0.0f64;
        let mut seen = vec![false; graph.num_nets()];
        let mut endpoints: Vec<usize> = Vec::new();
        for &node in &corridor.nodes {
            for &net in graph.nets_of(node) {
                if seen[net.index()] {
                    continue;
                }
                seen[net.index()] = true;
                let weight = graph.net_weight(net);
                if cut.is_cut(net) {
                    region_cut_weight += weight;
                }
                endpoints.clear();
                let mut outside = [false; 2];
                for &pin in graph.pins_of(net) {
                    match corridor.position(pin) {
                        Some(p) => endpoints.push(2 + p),
                        None => outside[sides[pin.index()].index()] = true,
                    }
                }
                if outside[Side::A.index()] && outside[Side::B.index()] {
                    // Permanently cut: no corridor assignment frees it.
                    locked_weight += weight;
                    continue;
                }
                if outside[Side::A.index()] {
                    endpoints.push(SOURCE);
                }
                if outside[Side::B.index()] {
                    endpoints.push(SINK);
                }
                endpoints.sort_unstable();
                endpoints.dedup();
                if endpoints.len() < 2 {
                    // Single-pin nets, duplicate-pin nets collapsing to
                    // one node, and nets internal to one terminal can
                    // never be cut.
                    continue;
                }
                let e_in = network.add_node();
                let e_out = network.add_node();
                network.add_edge(e_in, e_out, weight);
                for &v in &endpoints {
                    network.add_edge(v, e_in, f64::INFINITY);
                    network.add_edge(e_out, v, f64::INFINITY);
                }
                free_nets += 1;
            }
        }
        CorridorNetwork {
            network,
            source: SOURCE,
            sink: SINK,
            corridor_len: k,
            free_nets,
            locked_weight,
            region_cut_weight,
        }
    }

    /// Maps a network-node cut side vector back to corridor assignments:
    /// element `i` is the side of corridor position `i`.
    pub fn corridor_sides(&self, source_side: &[bool]) -> Vec<Side> {
        (0..self.corridor_len)
            .map(|i| if source_side[2 + i] { Side::A } else { Side::B })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::grow_corridor;
    use prop_core::{BalanceConstraint, Bipartition};
    use prop_netlist::{HypergraphBuilder, NodeId};

    fn full_corridor(graph: &Hypergraph, partition: &Bipartition) -> (CutState, Corridor) {
        let cut = CutState::new(graph, partition);
        let nodes = (0..graph.num_nodes()).map(NodeId::new).collect();
        let c = Corridor::from_nodes(graph, partition, nodes);
        (cut, c)
    }

    #[test]
    fn expansion_counts_on_a_hand_built_hypergraph() {
        // 4 nodes, 3 nets: (0,1), (1,2), (2,3); cut between 1 and 2.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(2.0, [1, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let (cut, c) = full_corridor(&g, &p);
        let net = CorridorNetwork::build(&g, p.sides(), &cut, &c);
        // All three nets free: nodes = 2 terminals + 4 corridor + 3*2 net
        // nodes; arcs = per net 1 bridge + 2 per endpoint (all 2-pin).
        assert_eq!(net.free_nets, 3);
        assert_eq!(net.corridor_len, 4);
        assert_eq!(net.network.num_nodes(), 2 + 4 + 6);
        assert_eq!(net.network.num_edges(), 3 * (1 + 2 * 2));
        assert_eq!(net.locked_weight, 0.0);
        assert_eq!(net.region_cut_weight, 2.0);
    }

    #[test]
    fn outside_pins_contract_into_terminals() {
        // Path 0-1-2-3-4-5 cut between 2|3; corridor = {2, 3} only.
        let mut b = HypergraphBuilder::new(6);
        for i in 0..5 {
            b.add_net(1.0, [i, i + 1]).unwrap();
        }
        let g = b.build().unwrap();
        let sides = vec![Side::A, Side::A, Side::A, Side::B, Side::B, Side::B];
        let p = Bipartition::from_sides(sides);
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::new(0.3, 0.7, 6).unwrap();
        let c = grow_corridor(&g, &p, &cut, balance, 100).unwrap();
        assert_eq!(c.nodes, vec![NodeId::new(2), NodeId::new(3)]);
        let net = CorridorNetwork::build(&g, p.sides(), &cut, &c);
        // Net (0,1) has no corridor pin: not scanned. Net (1,2): pin 1
        // contracts to source; (2,3) both in corridor; (3,4): pin 4
        // contracts to sink; (4,5) unscanned.
        assert_eq!(net.free_nets, 3);
        assert_eq!(net.network.num_nodes(), 2 + 2 + 6);
        assert_eq!(net.locked_weight, 0.0);
        assert_eq!(net.region_cut_weight, 1.0);
        // The min cut can't beat 1.0 here (the path must be severed).
        let mut flowed = net.network.clone();
        let flow = flowed.max_flow(net.source, net.sink).unwrap();
        assert_eq!(flow.value, 1.0);
    }

    #[test]
    fn single_pin_and_duplicate_pin_nets_are_skipped() {
        let mut b = HypergraphBuilder::new(3);
        b.add_net(1.0, [0]).unwrap();
        b.add_net(1.0, [1, 1, 1]).unwrap();
        b.add_net(1.0, [0, 1, 1, 2]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B]);
        let (cut, c) = full_corridor(&g, &p);
        let net = CorridorNetwork::build(&g, p.sides(), &cut, &c);
        // Only the mixed net survives, with duplicates collapsed to its
        // three distinct endpoints.
        assert_eq!(net.free_nets, 1);
        assert_eq!(net.network.num_edges(), 1 + 2 * 3);
    }

    #[test]
    fn nets_locked_by_both_outside_sides_never_expand() {
        // A net pinning the corridor plus both outside sides is locked.
        let mut b = HypergraphBuilder::new(4);
        b.add_net(3.0, [0, 1, 3]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        let g = b.build().unwrap();
        let p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B, Side::B]);
        let cut = CutState::new(&g, &p);
        let corridor =
            Corridor::from_nodes(&g, &p, vec![NodeId::new(1), NodeId::new(2)]);
        let net = CorridorNetwork::build(&g, p.sides(), &cut, &corridor);
        assert_eq!(net.locked_weight, 3.0);
        assert_eq!(net.free_nets, 1);
        assert_eq!(net.region_cut_weight, 4.0);
    }

    #[test]
    fn min_cut_of_the_expansion_is_the_min_hypergraph_cut() {
        // Two triangles bridged by one net; optimal bisection cuts only
        // the bridge (weight 1) instead of the current 3-net cut.
        let mut b = HypergraphBuilder::new(6);
        b.add_net(1.0, [0, 1]).unwrap();
        b.add_net(1.0, [1, 2]).unwrap();
        b.add_net(1.0, [0, 2]).unwrap();
        b.add_net(1.0, [2, 3]).unwrap(); // bridge
        b.add_net(1.0, [3, 4]).unwrap();
        b.add_net(1.0, [4, 5]).unwrap();
        b.add_net(1.0, [3, 5]).unwrap();
        let g = b.build().unwrap();
        // Misplaced: node 2 on the wrong side cuts both its triangle
        // nets (the bridge is internal to B) → cut = 2.
        let p = Bipartition::from_sides(vec![
            Side::A,
            Side::A,
            Side::B,
            Side::B,
            Side::B,
            Side::B,
        ]);
        assert_eq!(prop_core::cut_cost(&g, &p), 2.0);
        // Corridor {1,2,3,4}: node 0 anchors the source, node 5 the sink.
        let cut = CutState::new(&g, &p);
        let c = Corridor::from_nodes(
            &g,
            &p,
            (1..5).map(NodeId::new).collect(),
        );
        let net = CorridorNetwork::build(&g, p.sides(), &cut, &c);
        let mut flowed = net.network.clone();
        let flow = flowed.max_flow(net.source, net.sink).unwrap();
        assert_eq!(flow.value + net.locked_weight, 1.0, "flow finds the bridge cut");
        let side = flowed.min_cut_source_side(net.source);
        flowed
            .check_min_cut(net.source, net.sink, flow.value, &side)
            .unwrap();
        let assigned = net.corridor_sides(&side);
        // The induced bipartition puts the triangles back together.
        let mut sides = p.sides().to_vec();
        for (i, &node) in c.nodes.iter().enumerate() {
            sides[node.index()] = assigned[i];
        }
        let fixed = Bipartition::from_sides(sides);
        assert_eq!(prop_core::cut_cost(&g, &fixed), 1.0);
    }
}
