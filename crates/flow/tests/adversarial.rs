//! Corridor and refinement invariants on adversarial netlists.
//!
//! `generate_adversarial` produces the degenerate shapes real parsers
//! let through — single-pin nets, duplicate pins, isolated nodes,
//! fractional net weights — and the flow pass must hold its invariants
//! on all of them: the corridor never outgrows the balance slack, the
//! Lawler expansion never embeds a net that cannot be cut, and the pass
//! never worsens a feasible partition.

use prop_core::{
    cut_cost, BalanceConstraint, Bipartition, CutState, Side, SideWeights,
};
use prop_flow::{grow_corridor, refine, CorridorNetwork, FlowConfig};
use prop_netlist::generate::generate_adversarial;
use prop_netlist::NodeId;

/// A deterministic roughly-alternating partition.
fn parity_partition(n: usize) -> Bipartition {
    Bipartition::from_sides(
        (0..n)
            .map(|v| if v % 2 == 0 { Side::A } else { Side::B })
            .collect(),
    )
}

#[test]
fn corridor_respects_the_slack_on_adversarial_graphs() {
    for seed in 0..60 {
        let g = generate_adversarial(seed).unwrap();
        let n = g.num_nodes();
        let p = parity_partition(n);
        let cut = CutState::new(&g, &p);
        for (lo, hi) in [(0.3, 0.7), (0.45, 0.55), (0.1, 0.9)] {
            let balance = BalanceConstraint::new(lo, hi, n).unwrap();
            let Some(c) = grow_corridor(&g, &p, &cut, balance, 8) else {
                continue;
            };
            assert!(!c.is_empty());
            assert!(c.side_count[0] <= 8 && c.side_count[1] <= 8, "seed {seed}");
            // Count slack: flipping all of side S onto the other side
            // must keep that side within max_part.
            for side in [Side::A, Side::B] {
                let slack = balance.max_part() - p.count(side.other());
                assert!(
                    c.side_count[side.index()] <= slack,
                    "seed {seed}: corridor {} nodes on {side:?}, slack {slack}",
                    c.side_count[side.index()],
                );
            }
            // Positions are a consistent indexing of `nodes`.
            for (i, &node) in c.nodes.iter().enumerate() {
                assert_eq!(c.position(node), Some(i));
            }
        }
    }
}

#[test]
fn expansion_never_embeds_uncuttable_nets() {
    for seed in 0..60 {
        let g = generate_adversarial(seed).unwrap();
        let n = g.num_nodes();
        let p = parity_partition(n);
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::new(0.2, 0.8, n).unwrap();
        let Some(c) = grow_corridor(&g, &p, &cut, balance, 16) else {
            continue;
        };
        let built = CorridorNetwork::build(&g, p.sides(), &cut, &c);
        // Single-pin nets and nets whose pins collapse to one endpoint
        // must not appear: every free net added exactly one finite
        // bridge arc plus >= 2 endpoint pairs, all infinite.
        let edges = built.network.edges();
        let finite = edges.iter().filter(|e| e.capacity.is_finite()).count();
        assert_eq!(finite, built.free_nets, "seed {seed}");
        assert!(edges.len() >= built.free_nets * (1 + 2 * 2) || built.free_nets == 0);
        // The region's locked weight can never exceed its cut weight.
        assert!(
            built.locked_weight <= built.region_cut_weight + 1e-9,
            "seed {seed}: locked {} > region cut {}",
            built.locked_weight,
            built.region_cut_weight,
        );
    }
}

#[test]
fn refine_never_worsens_a_feasible_partition() {
    let config = FlowConfig {
        enabled: true,
        corridor_nodes: 16,
    };
    let mut exercised = 0;
    for seed in 0..60 {
        let g = generate_adversarial(seed).unwrap();
        let n = g.num_nodes();
        let mut p = parity_partition(n);
        let balance = BalanceConstraint::new(0.3, 0.7, n).unwrap();
        let w = SideWeights::new(&g, &p);
        if !balance.is_feasible(
            [p.count(Side::A), p.count(Side::B)],
            [w.get(Side::A), w.get(Side::B)],
        ) {
            continue;
        }
        let before = cut_cost(&g, &p);
        let stats = refine(&g, &mut p, balance, &config);
        let after = cut_cost(&g, &p);
        assert_eq!(stats.cut_cost, after, "seed {seed}");
        assert!(after <= before, "seed {seed}: {after} > {before}");
        let w = SideWeights::new(&g, &p);
        assert!(
            balance.is_feasible(
                [p.count(Side::A), p.count(Side::B)],
                [w.get(Side::A), w.get(Side::B)],
            ),
            "seed {seed}: refinement broke feasibility"
        );
        if stats.accepted > 0 {
            exercised += 1;
            assert!(after < before, "seed {seed}: accepted without improving");
        }
        // Re-running from the improved partition must be a no-op or a
        // further improvement — never a regression.
        let again = refine(&g, &mut p, balance, &config);
        assert!(again.cut_cost <= after, "seed {seed}");
    }
    assert!(exercised > 0, "no adversarial seed exercised an accept");
}

#[test]
fn isolated_nodes_stay_out_of_the_corridor() {
    // Adversarial graphs leave up to 3 trailing nodes isolated; they pin
    // no nets, so no corridor may ever contain them.
    for seed in 0..60 {
        let g = generate_adversarial(seed).unwrap();
        let n = g.num_nodes();
        let p = parity_partition(n);
        let cut = CutState::new(&g, &p);
        let balance = BalanceConstraint::new(0.1, 0.9, n).unwrap();
        let Some(c) = grow_corridor(&g, &p, &cut, balance, usize::MAX) else {
            continue;
        };
        for v in 0..n {
            if g.nets_of(NodeId::new(v)).is_empty() {
                assert!(!c.contains(NodeId::new(v)), "seed {seed}: isolated node {v}");
            }
        }
    }
}
