//! The `prop` binary: thin wrapper over the testable library half.

use prop_cli::{parse_args, run, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(e.code);
        }
    };
    if let Err(e) = run(command) {
        eprintln!("error: {e}");
        std::process::exit(e.code);
    }
}
